package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/randvar"
	"repro/internal/wal"
)

// Server hosts one Engine over TCP. Safe for concurrent connections.
//
// Ingest is sharded: INSERT/INSERTBATCH go through core.Engine.IngestBatch,
// which serializes per stream-shard group rather than globally, so clients
// feeding different streams push tuples in parallel. Control-plane commands
// (STREAM, QUERY, CLOSE, disconnect-driven drops, checkpoints) quiesce the
// engine with Engine.Exclusive and then take s.mu, which guards the query
// registry and connection table. Lock order is therefore
// Exclusive (ctl + all shards) → s.mu; no path takes engine locks while
// holding s.mu.
//
// With durability enabled (see NewDurable), every state-changing command is
// journaled: ingest journals inside the engine's sequencing critical
// section (the commit hook of IngestBatch), so WAL order provably equals
// engine sequence order even with concurrent writers, and replay is
// deterministic. Under fsync=always the WAL uses group commit — the append
// happens inside the critical section, the fsync wait outside it — so
// concurrent committers and whole batches share fsyncs.
type Server struct {
	engine *core.Engine
	logger *log.Logger

	mu       sync.Mutex
	ln       net.Listener
	queries  map[string]*registeredQuery
	conns    map[uint64]net.Conn
	closed   bool
	connWG   sync.WaitGroup
	nextConn uint64

	// Durability (nil wal pointer disables). wal is an atomic pointer so
	// the ingest commit hook — which runs under engine shard locks, never
	// s.mu — can journal without inverting the lock order. sinceCk counts
	// WAL records since the last checkpoint; ck/ckEvery are set once
	// before Serve and read-only afterwards.
	wal     atomic.Pointer[wal.Log]
	ck      *checkpoint.Manager
	ckEvery int
	sinceCk atomic.Int64
}

type registeredQuery struct {
	id      string
	sqlText string
	query   *core.Query
	// owner is the connection results are delivered to; nil for detached
	// queries (recovered after a crash, until a client ATTACHes).
	owner *conn
}

// New returns a server over the given engine. logger may be nil (logging
// disabled). Durability is off; use NewDurable to honor Config.DataDir.
func New(engine *core.Engine, logger *log.Logger) (*Server, error) {
	if engine == nil {
		return nil, errors.New("server: nil engine")
	}
	return &Server{
		engine:  engine,
		logger:  logger,
		queries: make(map[string]*registeredQuery),
		conns:   make(map[uint64]net.Conn),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:7433"; port 0 picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. Call after Listen.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes the listener, waits for connections to
// finish, and finalizes durability (final checkpoint, WAL sync+close).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.connWG.Wait()
	if derr := s.finalizeDurable(); err == nil {
		err = derr
	}
	return err
}

// Shutdown is the graceful-stop used on SIGINT/SIGTERM: it stops
// accepting, closes every live connection (in-flight commands finish —
// command dispatch is synchronous — but idle readers unblock), drains the
// handler goroutines, writes a final checkpoint, and fsyncs and closes the
// WAL.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for _, nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.connWG.Wait()
	if derr := s.finalizeDurable(); err == nil {
		err = derr
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// conn is one client connection. Writes are serialized by wmu because the
// handler goroutine (command responses) and insert paths of other
// connections (DATA pushes) both write.
type conn struct {
	id  uint64
	c   net.Conn
	wmu sync.Mutex
	w   *bufio.Writer
}

func (c *conn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	s.mu.Lock()
	s.nextConn++
	c := &conn{id: s.nextConn, c: nc, w: bufio.NewWriter(nc)}
	s.conns[c.id] = nc
	s.mu.Unlock()
	mConnsOpened.Inc()
	gConnsActive.Inc()
	s.logf("conn %d: open from %s", c.id, nc.RemoteAddr())
	defer func() {
		s.dropConnQueries(c)
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
		gConnsActive.Dec()
	}()
	scanner := bufio.NewScanner(nc)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		quit, err := s.dispatch(c, line)
		if err != nil {
			mCmdErrs.Inc()
			if werr := c.writeLine("ERR " + err.Error()); werr != nil {
				s.logf("conn %d: write: %v", c.id, werr)
				return
			}
			continue
		}
		if quit {
			return
		}
	}
	s.logf("conn %d: closed", c.id)
}

// dispatch executes one request line; returns quit=true for QUIT.
func (s *Server) dispatch(c *conn, line string) (bool, error) {
	cmd := line
	rest := ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	verb := strings.ToUpper(cmd)
	countCmd(verb)
	defer timeCmd(time.Now())
	switch verb {
	case "PING":
		return false, c.writeLine("OK pong")
	case "QUIT":
		_ = c.writeLine("OK bye")
		return true, nil
	case "STREAM":
		return false, s.cmdStream(c, rest)
	case "QUERY":
		return false, s.cmdQuery(c, rest)
	case "INSERT":
		return false, s.cmdInsert(c, rest)
	case "INSERTBATCH":
		return false, s.cmdInsertBatch(c, rest)
	case "STATS":
		return false, s.cmdStats(c, rest)
	case "METRICS":
		return false, s.cmdMetrics(c, rest)
	case "EXPLAIN":
		return false, s.cmdExplain(c, rest)
	case "ATTACH":
		return false, s.cmdAttach(c, rest)
	case "CLOSE":
		return false, s.cmdClose(c, rest)
	}
	return false, fmt.Errorf("unknown command %q", cmd)
}

// applyStream registers a stream from a STREAM command payload. Caller
// holds Exclusive (or is the single-threaded replay loop).
func (s *Server) applyStream(rest string) (string, error) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", errors.New("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return "", err
	}
	if err := s.engine.RegisterStream(schema); err != nil {
		return "", err
	}
	s.logf("stream %s registered (%d columns)", schema.Name, schema.Arity())
	return schema.Name, nil
}

func (s *Server) cmdStream(c *conn, rest string) error {
	release := s.engine.Exclusive()
	name, err := s.applyStream(rest)
	var lsn uint64
	if err == nil {
		lsn, err = s.journal(wal.RecStream, rest)
	}
	release()
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return c.writeLine("OK stream " + name)
}

// applyQueryLocked compiles, binds, and registers a query. The
// duplicate-id check runs before compilation so a rejected registration
// consumes no engine sequence number (WAL replay must see identical seq
// evolution). Caller holds s.mu plus Exclusive (or is the single-threaded
// replay loop).
func (s *Server) applyQueryLocked(id, sqlText string, owner *conn) error {
	if id == "" || sqlText == "" {
		return errors.New("usage: QUERY <id> <sql>")
	}
	if _, dup := s.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	q, err := s.engine.Compile(sqlText)
	if err != nil {
		return err
	}
	if err := s.engine.Bind(id, q); err != nil {
		return err
	}
	s.queries[id] = &registeredQuery{id: id, sqlText: sqlText, query: q, owner: owner}
	s.logf("query %s registered: %s", id, sqlText)
	return nil
}

func (s *Server) cmdQuery(c *conn, rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return errors.New("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	release := s.engine.Exclusive()
	s.mu.Lock()
	err := s.applyQueryLocked(id, sqlText, c)
	var lsn uint64
	if err == nil {
		lsn, err = s.journal(wal.RecQuery, id+" "+sqlText)
	}
	s.mu.Unlock()
	release()
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return c.writeLine("OK query " + id)
}

// parseInsertRows parses an ingest payload: "<stream> <field> ..." for a
// single tuple, or — with batch set — "<stream> <field> ... | <field> ..."
// where "|" separates tuples. Field specs never contain spaces or bare
// "|", so the framing is unambiguous.
func parseInsertRows(rest string, batch bool) (string, []core.IngestRow, error) {
	usage := "usage: INSERT <stream> <field> ..."
	if batch {
		usage = "usage: INSERTBATCH <stream> <field> ... [| <field> ...]"
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", nil, errors.New(usage)
	}
	streamName := fields[0]
	var rows []core.IngestRow
	cur := make([]randvar.Field, 0, len(fields)-1)
	for _, tok := range fields[1:] {
		if batch && tok == "|" {
			if len(cur) == 0 {
				return "", nil, errors.New("empty tuple in batch")
			}
			rows = append(rows, core.IngestRow{Fields: cur})
			cur = make([]randvar.Field, 0, cap(cur))
			continue
		}
		f, err := ParseFieldSpec(tok)
		if err != nil {
			return "", nil, err
		}
		cur = append(cur, f)
	}
	if len(cur) == 0 {
		return "", nil, errors.New("empty tuple in batch")
	}
	rows = append(rows, core.IngestRow{Fields: cur})
	return streamName, rows, nil
}

// ingest applies a parsed batch through the engine, journaling the raw
// payload inside the engine's sequencing critical section (so WAL order
// equals engine sequence order). A journal failure aborts the batch with
// the engine untouched. The returned lsn is 0 when journaling is off.
func (s *Server) ingest(typ wal.RecordType, payload, streamName string, rows []core.IngestRow) ([]core.QueryResults, uint64, error) {
	var lsn uint64
	commit := func() error {
		var err error
		lsn, err = s.journal(typ, payload)
		return err
	}
	results, err := s.engine.IngestBatch(streamName, rows, commit)
	return results, lsn, err
}

// deliverResults routes engine results to owning connections: delivery
// closures are built under s.mu (owner lookup) and written outside it.
// emitted counts results produced (delivered or discarded for detached
// queries); the error aggregates per-query push failures, sorted for
// deterministic messages.
func (s *Server) deliverResults(results []core.QueryResults) (int, error) {
	type delivery struct {
		owner *conn
		line  string
	}
	var (
		items    []delivery
		pushErrs []string
		emitted  int
	)
	s.mu.Lock()
	for _, qr := range results {
		if qr.Err != nil {
			pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", qr.ID, qr.Err))
		}
		rq := s.queries[qr.ID]
		for _, r := range qr.Results {
			if rq == nil || rq.owner == nil {
				emitted++
				continue
			}
			payload, merr := json.Marshal(EncodeResult(r))
			if merr != nil {
				pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", qr.ID, merr))
				continue
			}
			items = append(items, delivery{rq.owner, "DATA " + qr.ID + " " + string(payload)})
			emitted++
		}
	}
	s.mu.Unlock()
	for _, it := range items {
		if err := it.owner.writeLine(it.line); err != nil {
			s.logf("deliver: %v", err)
			continue
		}
		mDataLines.Inc()
	}
	if len(pushErrs) > 0 {
		sort.Strings(pushErrs)
		return emitted, errors.New(strings.Join(pushErrs, "; "))
	}
	return emitted, nil
}

func (s *Server) cmdInsert(c *conn, rest string) error {
	streamName, rows, err := parseInsertRows(rest, false)
	if err != nil {
		return err
	}
	results, lsn, err := s.ingest(wal.RecInsert, rest, streamName, rows)
	if err != nil {
		return err
	}
	// Durable before externalized: the fsync wait runs outside the shard
	// locks (group commit), and DATA lines go out only after it.
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	emitted, pushErr := s.deliverResults(results)
	s.maybeCheckpoint()
	if pushErr != nil {
		return pushErr
	}
	return c.writeLine(fmt.Sprintf("OK inserted results=%d", emitted))
}

func (s *Server) cmdInsertBatch(c *conn, rest string) error {
	streamName, rows, err := parseInsertRows(rest, true)
	if err != nil {
		return err
	}
	results, lsn, err := s.ingest(wal.RecInsertBatch, rest, streamName, rows)
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	emitted, pushErr := s.deliverResults(results)
	s.maybeCheckpoint()
	if pushErr != nil {
		return pushErr
	}
	return c.writeLine(fmt.Sprintf("OK inserted tuples=%d results=%d", len(rows), emitted))
}

func (s *Server) cmdStats(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	st := rq.query.Stats()
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return c.writeLine("OK " + string(payload))
}

// cmdExplain returns the compiled plan as a quoted string (the protocol is
// line-based; clients unquote to recover the multi-line plan).
func (s *Server) cmdExplain(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	rq, ok := s.queries[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	return c.writeLine("OK " + strconv.Quote(rq.query.Explain()))
}

// cmdAttach takes delivery ownership of a detached query — one recovered
// from a checkpoint/WAL after a crash, whose results would otherwise be
// computed but not delivered. Ownership is transport state, not engine
// state, so ATTACH is not journaled.
func (s *Server) cmdAttach(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	s.mu.Lock()
	defer s.mu.Unlock()
	rq, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	if rq.owner != nil && rq.owner != c {
		return fmt.Errorf("query %q is owned by another connection", id)
	}
	rq.owner = c
	return c.writeLine("OK attached " + id)
}

// applyCloseLocked drops a query from the registry and its engine shards.
// Caller holds s.mu plus Exclusive (or is the single-threaded replay loop).
func (s *Server) applyCloseLocked(id string) error {
	if _, ok := s.queries[id]; !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	delete(s.queries, id)
	s.engine.Unbind(id)
	return nil
}

func (s *Server) cmdClose(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	release := s.engine.Exclusive()
	s.mu.Lock()
	err := s.applyCloseLocked(id)
	var lsn uint64
	if err == nil {
		lsn, err = s.journal(wal.RecClose, id)
	}
	s.mu.Unlock()
	release()
	if err != nil {
		return err
	}
	if err := s.waitDurable(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return c.writeLine("OK closed " + id)
}

// dropConnQueries removes queries owned by a departing connection,
// journaling each removal so WAL replay reproduces the registry exactly.
func (s *Server) dropConnQueries(c *conn) {
	release := s.engine.Exclusive()
	s.mu.Lock()
	var dropped []string
	for id, rq := range s.queries {
		if rq.owner == c {
			dropped = append(dropped, id)
		}
	}
	sort.Strings(dropped)
	var lastLSN uint64
	for _, id := range dropped {
		delete(s.queries, id)
		s.engine.Unbind(id)
		lsn, err := s.journal(wal.RecClose, id)
		if err != nil {
			s.logf("journal close %s: %v", id, err)
			continue
		}
		if lsn > 0 {
			lastLSN = lsn
		}
	}
	s.mu.Unlock()
	release()
	if err := s.waitDurable(lastLSN); err != nil {
		s.logf("drop queries: %v", err)
	}
	if len(dropped) > 0 {
		s.maybeCheckpoint()
	}
}
