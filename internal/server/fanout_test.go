package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fanoutConn is a raw protocol connection with request/response helpers.
type fanoutConn struct {
	c  net.Conn
	r  *bufio.Scanner
	w  *bufio.Writer
	id int
}

func dialFanout(t *testing.T, addr string, id int) *fanoutConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(120 * time.Second))
	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &fanoutConn{c: nc, r: sc, w: bufio.NewWriter(nc), id: id}
}

// roundTrip sends one request and collects lines until the OK/ERR reply,
// returning any DATA lines seen on the way (same-conn DATA precede OK).
func (fc *fanoutConn) roundTrip(t *testing.T, req string) []string {
	t.Helper()
	if _, err := fc.w.WriteString(req + "\n"); err != nil {
		t.Fatalf("conn %d: send %q: %v", fc.id, req, err)
	}
	if err := fc.w.Flush(); err != nil {
		t.Fatalf("conn %d: flush %q: %v", fc.id, req, err)
	}
	var data []string
	for fc.r.Scan() {
		line := fc.r.Text()
		if strings.HasPrefix(line, "OK") {
			return data
		}
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("conn %d: %q: %s", fc.id, req, line)
		}
		data = append(data, line)
	}
	t.Fatalf("conn %d: EOF waiting for reply to %q: %v", fc.id, req, fc.r.Err())
	return nil
}

// dataMean extracts fields.a.mean from a "DATA q1 {...}" line.
func dataMean(t *testing.T, line string) float64 {
	t.Helper()
	if !strings.HasPrefix(line, "DATA q1 ") {
		t.Fatalf("unexpected line %q", line)
	}
	var payload struct {
		Fields map[string]struct {
			Mean float64 `json:"mean"`
		} `json:"fields"`
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(line[len("DATA q1 "):]), &payload); err != nil {
		t.Fatalf("bad DATA payload %q: %v", line, err)
	}
	return payload.Fields["a"].Mean
}

// TestFanoutAliasing pushes 10k+ distinct tuples through the render-once
// path with 8 concurrent subscribers plus the owner and verifies EVERY
// value on every connection: shared frames must never alias, reorder, or
// drop a result. Run under -race this also proves the refcounted frame
// hand-off is race-free.
func TestFanoutAliasing(t *testing.T) {
	eng, err := core.NewEngine(core.Config{Method: core.AccuracyNone, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Outbox big enough that no subscriber is dropped as slow while the
	// test is still wiring itself up.
	srv.SetOptions(Options{OutboxLines: 20_000})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	const (
		total   = 10_240
		chunk   = 256
		numSubs = 8
	)
	owner := dialFanout(t, addr.String(), -1)
	owner.roundTrip(t, "STREAM s val")
	owner.roundTrip(t, "QUERY q1 SELECT AVG(val) AS a FROM s WINDOW 1 ROWS")

	subs := make([]*fanoutConn, numSubs)
	for i := range subs {
		subs[i] = dialFanout(t, addr.String(), i)
		subs[i].roundTrip(t, "SUBSCRIBE q1")
	}

	// Each subscriber drains its connection concurrently with the inserts,
	// recording the means it observes in order.
	type subResult struct {
		id    int
		means []float64
		err   error
	}
	done := make(chan subResult, numSubs)
	for _, sub := range subs {
		go func(sub *fanoutConn) {
			res := subResult{id: sub.id, means: make([]float64, 0, total)}
			for len(res.means) < total && sub.r.Scan() {
				line := sub.r.Text()
				if !strings.HasPrefix(line, "DATA q1 ") {
					res.err = fmt.Errorf("conn %d: unexpected line %q", sub.id, line)
					break
				}
				var payload struct {
					Fields map[string]struct {
						Mean float64 `json:"mean"`
					} `json:"fields"`
				}
				if err := json.Unmarshal([]byte(line[len("DATA q1 "):]), &payload); err != nil {
					res.err = fmt.Errorf("conn %d: bad payload %q: %v", sub.id, line, err)
					break
				}
				res.means = append(res.means, payload.Fields["a"].Mean)
			}
			if res.err == nil && len(res.means) < total {
				res.err = fmt.Errorf("conn %d: stream ended after %d lines: %v", sub.id, len(res.means), sub.r.Err())
			}
			done <- res
		}(sub)
	}

	// The owner inserts every value and — as query owner — receives each
	// DATA line synchronously before the batch's OK.
	next := 0.0
	for lo := 0; lo < total; lo += chunk {
		parts := make([]string, 0, chunk)
		for v := lo; v < lo+chunk; v++ {
			parts = append(parts, fmt.Sprintf("%d", v))
		}
		data := owner.roundTrip(t, "INSERTBATCH s "+strings.Join(parts, " | "))
		if len(data) != chunk {
			t.Fatalf("owner: batch at %d yielded %d DATA lines, want %d", lo, len(data), chunk)
		}
		for _, line := range data {
			if got := dataMean(t, line); got != next {
				t.Fatalf("owner: mean = %v, want %v", got, next)
			}
			next++
		}
	}

	for i := 0; i < numSubs; i++ {
		res := <-done
		if res.err != nil {
			t.Fatal(res.err)
		}
		for j, got := range res.means {
			if want := float64(j); got != want {
				t.Fatalf("subscriber %d: value %d = %v, want %v", res.id, j, got, want)
			}
		}
	}

	// Close the raw conns before the deferred srv.Close: Close waits for
	// the server-side handlers, which otherwise idle until IdleTimeout.
	owner.c.Close()
	for _, sub := range subs {
		sub.c.Close()
	}
}
