package server

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// renderTestResults builds Results covering every branch of the wire
// encoding: sorted multi-column field maps, Point/Normal/Histogram
// distributions, accuracy intervals and bins, prob_n, prob_interval,
// unsure, and time.
func renderTestResults(t testing.TB) []core.Result {
	t.Helper()
	schema, err := stream.NewSchema("s",
		stream.Column{Name: "zeta"},
		stream.Column{Name: "alpha", Probabilistic: true},
		stream.Column{Name: "mid", Probabilistic: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := dist.NewNormal(3.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := dist.HistogramFromCounts([]float64{0, 1.5, 3, 4.5}, []int{4, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := dist.NewNormal(3.5e-7, 2.5e21)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fields []randvar.Field, prob float64, probN int, seq uint64, tm int64) *stream.Tuple {
		tp, err := stream.NewTuple(schema, fields)
		if err != nil {
			t.Fatal(err)
		}
		tp.Prob, tp.ProbN, tp.Seq, tp.Time = prob, probN, seq, tm
		return tp
	}
	plain := mk([]randvar.Field{
		randvar.Det(1), {Dist: nd, N: 25}, {Dist: dist.Point{V: -2.5}, N: 3},
	}, 1, 0, 7, 0)
	decorated := mk([]randvar.Field{
		randvar.Det(0), {Dist: hist, N: 13}, {Dist: tiny, N: 4},
	}, 0.625, 9, 123456, 1_700_000_321)
	return []core.Result{
		{Tuple: plain},
		{
			Tuple: decorated,
			Fields: map[string]*accuracy.Info{
				"alpha": {
					N:        13,
					Level:    0.9,
					Mean:     accuracy.Interval{Lo: 1.25, Hi: 2.75, Level: 0.9},
					Variance: accuracy.Interval{Lo: 0.5, Hi: 1.5, Level: 0.9},
					Bins: []accuracy.BinInterval{
						{Bucket: 0, Lo: 0, Hi: 1.5, Estimate: 0.25,
							Interval: accuracy.Interval{Lo: 0.1, Hi: 0.4, Level: 0.9}},
						{Bucket: 1, Lo: 1.5, Hi: 3, Estimate: 0.75,
							Interval: accuracy.Interval{Lo: 0.6, Hi: 0.9, Level: 0.9}},
					},
				},
				"mid": {
					N:        4,
					Level:    0.9,
					Mean:     accuracy.Interval{Lo: -1e-7, Hi: 9.999e-7, Level: 0.9},
					Variance: accuracy.Interval{Lo: 1e21, Hi: 3e21, Level: 0.9},
				},
			},
			TupleProb: &accuracy.Interval{Lo: 0.5, Hi: 0.75, Level: 0.9},
			Unsure:    true,
		},
	}
}

// TestRenderMatchesJSON pins the render-once path to the legacy encoder:
// appendResult must be byte-identical to json.Marshal(EncodeResult(r)).
func TestRenderMatchesJSON(t *testing.T) {
	for i, r := range renderTestResults(t) {
		want, err := json.Marshal(EncodeResult(r))
		if err != nil {
			t.Fatalf("result %d: marshal: %v", i, err)
		}
		got, err := appendResult(nil, r)
		if err != nil {
			t.Fatalf("result %d: appendResult: %v", i, err)
		}
		if string(got) != string(want) {
			t.Errorf("result %d:\nappend: %s\n  json: %s", i, got, want)
		}
		line, err := appendDataLine(nil, "q1", r)
		if err != nil {
			t.Fatal(err)
		}
		if wantLine := "DATA q1 " + string(want); string(line) != wantLine {
			t.Errorf("result %d line:\nappend: %s\n  want: %s", i, line, wantLine)
		}
	}
}

// TestRenderZeroAlloc pins the steady-state push path at zero allocations
// per rendered DATA line (satellite 3's testing.AllocsPerRun gate).
func TestRenderZeroAlloc(t *testing.T) {
	r := renderTestResults(t)[0]
	f := newFrame()
	defer f.release()
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		f.buf, err = appendDataLine(f.buf[:0], "q1", r)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("appendDataLine allocates %v times per line, want 0", allocs)
	}
}

// TestIngestReplyFormat pins the strconv reply builder to the fmt strings
// it replaced — WAL replay reproduces these bytes to rebuild dedup state.
func TestIngestReplyFormat(t *testing.T) {
	for _, c := range []struct{ tuples, emitted int }{{0, 0}, {1, 3}, {250, 12345}} {
		if got, want := ingestReply(true, c.tuples, c.emitted, nil),
			fmt.Sprintf("OK inserted tuples=%d results=%d", c.tuples, c.emitted); got != want {
			t.Errorf("batch reply = %q, want %q", got, want)
		}
		if got, want := ingestReply(false, c.tuples, c.emitted, nil),
			fmt.Sprintf("OK inserted results=%d", c.emitted); got != want {
			t.Errorf("reply = %q, want %q", got, want)
		}
	}
	if got := ingestReply(false, 0, 0, fmt.Errorf("query q1: boom")); got != "ERR query q1: boom" {
		t.Errorf("error reply = %q", got)
	}
}

// TestFrameRefcount exercises the pool discipline: a frame fanned out to n
// recipients survives n-1 releases and recycles on the last.
func TestFrameRefcount(t *testing.T) {
	f := newFrame()
	f.buf = append(f.buf, "DATA q {}"...)
	f.refs.Store(3)
	f.release()
	f.release()
	if string(f.buf) != "DATA q {}" {
		t.Fatal("frame mutated while references remain")
	}
	f.release() // last reference; frame returns to the pool
	g := newFrame()
	g.buf = append(g.buf, 'x')
	g.release()
	// Oversized frames are dropped, not pooled.
	h := newFrame()
	h.buf = append(h.buf, make([]byte, maxPooledFrame+1)...)
	h.release()
}
