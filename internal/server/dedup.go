package server

import (
	"strings"
	"sync"
)

// Idempotent ingest (ISSUE 5, tentpole part 2). A client may tag INSERT /
// INSERTBATCH with a trailing "@<id>" token. The server remembers, per id,
// the reply it produced and the WAL position that made the ingest durable;
// a retry of the same id re-waits durability and replays the remembered
// reply instead of re-applying the tuples. The token is part of the WAL
// payload, so crash recovery rebuilds the same dedup window from replay and
// a retry that straddles a crash still applies exactly once.
//
// The window is a bounded FIFO: when full, the oldest id is evicted and a
// retry arriving after eviction re-executes. Clients therefore bound their
// retry horizon (a handful of attempts over seconds) well inside the window.

// dedupEntry remembers one idempotent request's outcome.
type dedupEntry struct {
	// reply is the full protocol reply line ("OK inserted ..." or
	// "ERR <push errors>") the original attempt computed.
	reply string
	// lsn is the WAL position of the journaled record; a retry waits for it
	// to be durable before answering (the original attempt may have crashed
	// or failed between append and fsync).
	lsn uint64
}

type dedupWindow struct {
	mu    sync.Mutex
	max   int
	order []string // FIFO of ids, oldest first
	byID  map[string]dedupEntry
}

func newDedupWindow(max int) *dedupWindow {
	if max < 0 {
		max = 0
	}
	return &dedupWindow{max: max, byID: make(map[string]dedupEntry, max)}
}

func (d *dedupWindow) get(id string) (dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.byID[id]
	return e, ok
}

func (d *dedupWindow) put(id string, e dedupEntry) {
	if d.max == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byID[id]; !dup {
		for len(d.order) >= d.max {
			delete(d.byID, d.order[0])
			d.order = d.order[1:]
		}
		d.order = append(d.order, id)
	}
	d.byID[id] = e
}

func (d *dedupWindow) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byID)
}

// splitReqID strips a trailing " @<id>" request-id token from an ingest
// payload. Returns the payload unchanged and "" when no token is present.
// Field specs never start with '@', so the framing is unambiguous.
func splitReqID(rest string) (payload, reqID string) {
	idx := strings.LastIndexByte(rest, ' ')
	if idx < 0 || idx+2 > len(rest) || rest[idx+1] != '@' {
		return rest, ""
	}
	id := rest[idx+2:]
	if id == "" {
		return rest, ""
	}
	return strings.TrimSpace(rest[:idx]), id
}
