package server

import (
	"bufio"
	"encoding/json"
	"io"
	"testing"
)

// BenchmarkFanout16 measures the serving-path cost of delivering one query
// result to 16 subscribers. "legacy" is the pre-columnar path: every
// recipient pays its own json.Marshal(EncodeResult) plus string assembly.
// "renderonce" is the shipping path: one strconv render into a pooled
// frame, 16 zero-copy writes of the same bytes. Both write through bufio
// to io.Discard so only encode + copy cost is measured.
func BenchmarkFanout16(b *testing.B) {
	r := renderTestResults(b)[0]
	const subs = 16
	sinks := make([]*bufio.Writer, subs)
	for i := range sinks {
		sinks[i] = bufio.NewWriter(io.Discard)
	}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, w := range sinks {
				payload, err := json.Marshal(EncodeResult(r))
				if err != nil {
					b.Fatal(err)
				}
				line := "DATA q1 " + string(payload)
				if _, err := w.WriteString(line); err != nil {
					b.Fatal(err)
				}
				if err := w.WriteByte('\n'); err != nil {
					b.Fatal(err)
				}
				w.Flush()
			}
		}
	})
	b.Run("renderonce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := newFrame()
			var err error
			if f.buf, err = appendDataLine(f.buf, "q1", r); err != nil {
				b.Fatal(err)
			}
			f.refs.Store(subs)
			for _, w := range sinks {
				if _, err := w.Write(f.buf); err != nil {
					b.Fatal(err)
				}
				if err := w.WriteByte('\n'); err != nil {
					b.Fatal(err)
				}
				w.Flush()
				f.release()
			}
		}
	})
}
