package server

// Replication-epoch (fencing) state. The epoch is a monotonic term: it
// starts at 1 and is bumped exactly once per failover, by the promoted
// follower, which journals the transition as a RecEpoch WAL record before
// accepting its first write. Every record of the new epoch therefore sits
// strictly after the RecEpoch boundary, which gives fencing its teeth:
//
//   - a deposed primary that diverged past the boundary can be told the
//     exact LSN to truncate back to (SafeJoinLSN), and
//   - any node that observes a higher epoch than its own knows it has been
//     superseded and must stop accepting writes (Fence) until it rejoins.
//
// The epoch survives crashes because it rides the ordinary durability
// paths: RecEpoch records replay like any other, and checkpoints carry the
// epoch plus the transition history (WAL truncation may drop the RecEpoch
// records themselves once a checkpoint covers them).

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/checkpoint"
	"repro/internal/wal"
)

// errFencedStaleEpoch rejects writes on a deposed primary. The sentinel
// substring "fenced: stale epoch" is load-bearing: cluster.Client and the
// router match it (alongside "read-only replica") to fail writes over to
// the current primary.
var errFencedStaleEpoch = errors.New("fenced: stale epoch: a newer primary was promoted; writes must go to it")

// FencedRejectHook, when non-nil, runs once per write rejected with the
// stale-epoch sentinel. The cluster package points it at its
// asdb_fenced_rejects_total counter from an init function — registering
// the counter there (not here) keeps a single-node server's METRICS key
// set unchanged. Set it before any server serves traffic.
var FencedRejectHook func()

// EpochAdoptHook, when non-nil, observes every epoch transition this node
// adopts — its own promotion, a replayed or replicated RecEpoch record, or
// checkpointed state restored at recovery. The cluster package points it
// at its asdb_cluster_epoch gauge from an init function, for the same
// reason as FencedRejectHook: a follower that stands down and adopts the
// winner's epoch through the shipped WAL must move the gauge too, not
// just nodes that promote.
var EpochAdoptHook func(epoch uint64)

// Epoch returns the current replication epoch (term); 1 until a failover
// bumps it.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Fenced reports whether this node was superseded by a newer epoch and is
// rejecting writes with the stale-epoch sentinel.
func (s *Server) Fenced() bool { return s.fenced.Load() }

// Fence marks this node as a deposed primary: a peer presented epoch
// higher (greater than our own), so every write from here on would diverge
// from the cluster's history and is rejected until the node rejoins as a
// follower. Idempotent.
func (s *Server) Fence(higher uint64) {
	if !s.fenced.Swap(true) {
		s.logf("fenced: observed epoch %d > own %d; rejecting writes", higher, s.Epoch())
	}
}

// BumpEpoch advances the epoch by one and journals the transition durably.
func (s *Server) BumpEpoch() (uint64, error) {
	return s.BumpEpochTo(s.epoch.Load() + 1)
}

// BumpEpochTo journals a transition to an explicit higher epoch. Promotion
// calls it after the follower apply loop has stopped and before the server
// starts accepting writes, so the RecEpoch record is the exact boundary
// between the old history and the new. The cluster layer picks epochs so
// that no two replicas of a shard can ever journal the same one — equal
// epochs can never fence each other, so distinctness is what makes
// concurrent promotions safe. Returns the new epoch.
func (s *Server) BumpEpochTo(next uint64) (uint64, error) {
	if cur := s.epoch.Load(); next <= cur {
		return 0, fmt.Errorf("server: epoch bump to %d not above current %d", next, cur)
	}
	lsn, err := s.journal(wal.RecEpoch, strconv.FormatUint(next, 10))
	if err != nil {
		return 0, err
	}
	if err := s.waitDurable(lsn); err != nil {
		return 0, err
	}
	s.adoptEpoch(next, lsn)
	s.logf("promoted: epoch %d begins at lsn %d", next, lsn)
	return next, nil
}

// adoptEpoch records a term transition observed at startLSN — from
// BumpEpoch, WAL replay, or a replicated RecEpoch record. Lower or equal
// epochs are ignored (transitions are monotonic). Adopting a new epoch
// clears the fence: the node has caught up with the history that
// superseded it.
func (s *Server) adoptEpoch(epoch, startLSN uint64) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if epoch <= s.epoch.Load() {
		return
	}
	s.epochHist = append(s.epochHist, checkpoint.EpochBound{Epoch: epoch, Start: startLSN})
	s.epoch.Store(epoch)
	s.fenced.Store(false)
	if EpochAdoptHook != nil {
		EpochAdoptHook(epoch)
	}
}

// restoreEpoch installs checkpointed epoch state during recovery; RecEpoch
// records in the replayed WAL suffix then advance it via adoptEpoch.
func (s *Server) restoreEpoch(epoch uint64, hist []checkpoint.EpochBound) {
	if epoch <= 1 {
		return
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.epochHist = append([]checkpoint.EpochBound(nil), hist...)
	s.epoch.Store(epoch)
	if EpochAdoptHook != nil {
		EpochAdoptHook(epoch)
	}
}

// epochSnapshot returns the current epoch and a copy of the transition
// history, for embedding in checkpoints.
func (s *Server) epochSnapshot() (uint64, []checkpoint.EpochBound) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epoch.Load(), append([]checkpoint.EpochBound(nil), s.epochHist...)
}

// SafeJoinLSN bounds what a follower reporting (followerEpoch,
// lastApplied) may keep of its log: records below the start of the first
// epoch newer than the follower's are shared history; everything at or
// past that boundary may have diverged and must be truncated. With no
// newer epoch on record the follower's whole prefix is safe.
func (s *Server) SafeJoinLSN(followerEpoch, lastApplied uint64) uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	safe := lastApplied
	for _, b := range s.epochHist {
		if b.Epoch > followerEpoch && b.Start > 0 && b.Start-1 < safe {
			safe = b.Start - 1
		}
	}
	return safe
}

// applyEpochRecord is the shared RecEpoch apply path (recovery replay and
// replicated apply): parse the decimal term and adopt it at the record's
// LSN.
func (s *Server) applyEpochRecord(rec wal.Record) error {
	epoch, err := strconv.ParseUint(string(rec.Payload), 10, 64)
	if err != nil {
		return fmt.Errorf("lsn %d (EPOCH): %w", rec.LSN, err)
	}
	s.adoptEpoch(epoch, rec.LSN)
	return nil
}

// SetFollowerCountFn injects the live-follower counter the cluster's ship
// server maintains, surfaced by ROLE.
func (s *Server) SetFollowerCountFn(fn func() int) { s.roleFollowers.Store(&fn) }

// SetReplLagFn injects the replication-lag reader the cluster's follower
// maintains (primary frontier minus last applied LSN), surfaced by ROLE.
func (s *Server) SetReplLagFn(fn func() int64) { s.roleLag.Store(&fn) }

// SetReplAddrFn injects the address of this node's replication (WAL-ship)
// listener, surfaced by ROLE as the optional repl= field. Failover managers
// on surviving followers use it to re-point their replication loops at a
// freshly promoted primary.
func (s *Server) SetReplAddrFn(fn func() string) { s.roleRepl.Store(&fn) }

// cmdRole reports failover-relevant state on one line: role
// (primary | follower | fenced), current epoch, live follower count,
// newest local LSN, and replication lag in records. Allowed on every node
// in every state — it is how operators and the router observe a failover
// without scraping metrics.
func (s *Server) cmdRole(c *conn, rest string) error {
	if rest != "" {
		return errors.New("usage: ROLE")
	}
	role := "primary"
	switch {
	case s.fenced.Load():
		role = "fenced"
	case s.readOnly.Load():
		role = "follower"
	}
	var lastLSN uint64
	if w := s.wal.Load(); w != nil {
		lastLSN = w.LastLSN()
	}
	followers := 0
	if fn := s.roleFollowers.Load(); fn != nil {
		followers = (*fn)()
	}
	var lag int64
	if fn := s.roleLag.Load(); fn != nil {
		lag = (*fn)()
	}
	reply := fmt.Sprintf("OK role=%s epoch=%d followers=%d last_lsn=%d lag_records=%d",
		role, s.Epoch(), followers, lastLSN, lag)
	// The repl= field is appended (not inserted) so pre-existing parsers
	// keyed on the first five fields keep working.
	if fn := s.roleRepl.Load(); fn != nil {
		if addr := (*fn)(); addr != "" {
			reply += " repl=" + addr
		}
	}
	return c.writeLine(reply)
}
