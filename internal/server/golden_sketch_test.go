package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestGoldenSketchSession is the sketch-backend counterpart of
// TestGoldenSession: one scripted connection creates a BACKEND SKETCH
// query, ingests 100k tuples through the normal wire path (bulk, outside
// the recorded transcript — the golden file records the session, not 100
// thousand OK lines), then exercises STATS/EXPLAIN/DATA against the warm
// sketch. The whole exchange is byte-compared against
// testdata/golden_sketch_session.txt; regenerate with the shared -update
// flag:
//
//	go test ./internal/server/ -run TestGoldenSketchSession -update
//
// Queries are owned by their creating connection (dropConnQueries), so the
// session stays on a single connection throughout. The same transcript
// must fall out at -workers 8: sketch emission depends only on WAL order,
// never on worker scheduling.

const sketchGoldenTuples = 100_000

// sketchGoldenCreate is recorded: stream + sketch query creation and the
// cold-plan EXPLAIN.
var sketchGoldenCreate = []string{
	"PING",
	"STREAM readings sensor temp:dist",
	"QUERY qs SELECT COUNT(temp) AS c, AVG(temp) AS a, SUM(temp) AS s FROM readings WINDOW 64 ROWS BACKEND SKETCH",
	"EXPLAIN qs",
}

// sketchGoldenServe is recorded after the bulk ingest. The sketch window
// (64 rows, 4-row blocks) seals a block every 4th push; 100k warm-up
// tuples land exactly on a block boundary, so the 4th insert below is the
// one that emits DATA to the owning connection.
var sketchGoldenServe = []string{
	"INSERT readings 100001 N(58,4,25)",
	"INSERT readings 100002 N(44,9,16)",
	"INSERT readings 100003 N(71,16,9)",
	"INSERT readings 100004 S(55;52;58;61)",
	"STATS qs",
	"EXPLAIN qs",
	"METRICS qs",
	"STATS nosuch",
	"QUIT",
}

func TestGoldenSketchSession(t *testing.T) {
	runGoldenSketchSession(t, 1)
}

func TestGoldenSketchSessionWorkers8(t *testing.T) {
	runGoldenSketchSession(t, 8)
}

func runGoldenSketchSession(t *testing.T, workers int) {
	eng, err := core.NewEngine(core.Config{
		Seed:        7,
		Method:      core.AccuracyAnalytical,
		Level:       0.9,
		Workers:     workers,
		DataDir:     t.TempDir(),
		FsyncPolicy: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDurable(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	tc := dialServer(t, addr.String())
	defer tc.c.Close()

	var transcript strings.Builder
	transcript.WriteString("## create\n")
	playGoldenScript(t, &transcript, tc, sketchGoldenCreate)

	// Bulk ingest on the same (owning) connection: each INSERTBATCH reply
	// drains its DATA frames through tclient.cmd, so the ~25k warm-up
	// frames flow through the full serving path without entering the
	// transcript.
	fmt.Fprintf(&transcript, "## bulk ingest: %d tuples (unrecorded)\n", sketchGoldenTuples)
	bulkIngestSketchGolden(t, tc)

	transcript.WriteString("## serve\n")
	playGoldenScript(t, &transcript, tc, sketchGoldenServe)

	got := transcript.String()
	goldenPath := filepath.Join("testdata", "golden_sketch_session.txt")
	// -update regenerates from the workers=1 run only; the workers=8 run
	// always compares, so a scheduling-dependent divergence cannot be
	// recorded into the golden file.
	if *updateGolden && workers == 1 {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden transcript (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("sketch session transcript diverged from %s (regenerate with -update if intentional)\n%s",
			goldenPath, transcriptDiff(string(want), got))
	}
}

// playGoldenScript drives one script segment over an existing connection
// and appends the recorded exchange (requests prefixed >>, replies
// verbatim) to the transcript.
func playGoldenScript(t *testing.T, transcript *strings.Builder, tc *tclient, script []string) {
	t.Helper()
	for _, req := range script {
		fmt.Fprintf(transcript, ">> %s\n", req)
		reply, data := tc.cmd(req)
		for _, d := range data {
			transcript.WriteString(normalizeGoldenLine(t, req, d))
			transcript.WriteByte('\n')
		}
		transcript.WriteString(normalizeGoldenLine(t, req, reply))
		transcript.WriteByte('\n')
	}
}

// bulkIngestSketchGolden streams sketchGoldenTuples deterministic tuples in
// 250-tuple INSERTBATCH frames. Values cycle through a fixed grid of
// Gaussian parameters so the final window state is reproducible by
// construction, not by seed.
func bulkIngestSketchGolden(t *testing.T, tc *tclient) {
	t.Helper()
	const per = 250
	var sb strings.Builder
	for base := 0; base < sketchGoldenTuples; base += per {
		sb.Reset()
		sb.WriteString("INSERTBATCH readings ")
		for i := base; i < base+per; i++ {
			if i > base {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%d N(%d,%d,%d)", i+1, 30+i%47, (1+i%5)*(1+i%5), 9+i%24)
		}
		tc.mustOK(sb.String())
	}
}
