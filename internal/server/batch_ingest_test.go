package server

// Tests for the batched + sharded ingest path: INSERTBATCH equivalence
// with single INSERTs, cross-worker determinism of the batch path, torn
// mid-batch crash recovery (a server batch is one WAL frame, so a torn
// batch disappears atomically), concurrent multi-stream ingest, and the
// recovery-metrics gate (replay must not pollute steady-state counters).

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// crashBatchCmd builds one INSERTBATCH over the same tuple sequence
// crashInsertCmd(lo..hi-1) produces one at a time.
func crashBatchCmd(lo, hi int) string {
	parts := []string{"INSERTBATCH", "temps"}
	for i := lo; i < hi; i++ {
		if i > lo {
			parts = append(parts, "|")
		}
		parts = append(parts, fmt.Sprintf("%d", i), fmt.Sprintf("N(%d.5,2.25,%d)", 10+i, 20+i))
	}
	return strings.Join(parts, " ")
}

// TestInsertBatchEquivalence: pushing tuples through INSERTBATCH must
// yield byte-identical DATA lines and stats to pushing them one INSERT at
// a time — at any worker count, including across batch boundaries.
func TestInsertBatchEquivalence(t *testing.T) {
	const total = 10
	refData, refStats := runReference(t, 1, total)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			s, addr := startDurableServer(t, durableConfig(dir, workers, 1024))
			defer s.Close()
			tc := dialServer(t, addr)
			defer tc.c.Close()
			tc.mustOK(crashStreamCmd)
			tc.mustOK(crashQueryCmd)
			var data []string
			for _, span := range [][2]int{{0, 4}, {4, 5}, {5, 10}} {
				reply, lines := tc.cmd(crashBatchCmd(span[0], span[1]))
				want := fmt.Sprintf("OK inserted tuples=%d results=%d", span[1]-span[0], len(lines))
				if reply != want {
					t.Fatalf("batch %v reply = %q, want %q", span, reply, want)
				}
				data = append(data, lines...)
			}
			if len(data) != len(refData) {
				t.Fatalf("batched run emitted %d DATA lines, reference %d", len(data), len(refData))
			}
			for i := range data {
				if data[i] != refData[i] {
					t.Fatalf("DATA line %d diverged:\nsingle: %s\nbatch:  %s", i, refData[i], data[i])
				}
			}
			if reply, _ := tc.cmd("STATS q1"); reply != refStats {
				t.Fatalf("stats diverged: single %q, batch %q", refStats, reply)
			}
		})
	}
}

// TestInsertBatchValidation covers the batch framing errors.
func TestInsertBatchValidation(t *testing.T) {
	s, addr := startDurableServer(t, durableConfig(t.TempDir(), 1, 1024))
	defer s.Close()
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK(crashStreamCmd)
	for _, line := range []string{
		"INSERTBATCH",
		"INSERTBATCH temps",
		"INSERTBATCH temps 1 N(1,1,5) | | 2 N(2,1,5)",
		"INSERTBATCH temps 1 N(1,1,5) |",
		"INSERTBATCH nosuch 1 N(1,1,5)",
		"INSERTBATCH temps 1 bogus(",
	} {
		if reply, _ := tc.cmd(line); !strings.HasPrefix(reply, "ERR") {
			t.Errorf("%q: got %q, want ERR", line, reply)
		}
	}
	// A malformed batch must not have consumed sequence numbers: the next
	// valid insert's DATA output still matches a clean run's first window.
	tc.mustOK("QUERY q1 SELECT AVG(val) FROM temps WINDOW 3 ROWS")
	for i := 0; i < 3; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	if reply, _ := tc.cmd("STATS q1"); !strings.Contains(reply, `"In":3`) {
		t.Errorf("stats after failed batches = %q, want In=3", reply)
	}
}

// TestCrashRecoveryTornBatch tears the WAL inside the final INSERTBATCH
// frame. The server journals a batch as a single frame, so recovery must
// drop the whole batch (all-or-nothing) and continue exactly from the
// state before it.
func TestCrashRecoveryTornBatch(t *testing.T) {
	// Reference: two durable batches, then the post-recovery inserts.
	refDir := t.TempDir()
	rs, refAddr := startDurableServer(t, durableConfig(refDir, 2, 1024))
	defer rs.Close()
	rc := dialServer(t, refAddr)
	defer rc.c.Close()
	rc.mustOK(crashStreamCmd)
	rc.mustOK(crashQueryCmd)
	rc.mustOK(crashBatchCmd(0, 4))
	rc.mustOK(crashBatchCmd(4, 8))
	var refData []string
	for i := 8; i < 12; i++ {
		refData = append(refData, rc.mustOK(crashInsertCmd(i))...)
	}
	refStats, _ := rc.cmd("STATS q1")

	// Crashed run: a third batch is journaled but its frame gets torn.
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 2, 1024))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	tc.mustOK(crashBatchCmd(0, 4))
	tc.mustOK(crashBatchCmd(4, 8))
	tc.mustOK(crashBatchCmd(8, 12))
	crash(s)
	tc.c.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// The last frame is the third batch; clipping its tail tears it.
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, addr2 := startDurableServer(t, durableConfig(dir, 2, 1024))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	tc2.mustOK("ATTACH q1")
	var data []string
	for i := 8; i < 12; i++ {
		data = append(data, tc2.mustOK(crashInsertCmd(i))...)
	}
	stats, _ := tc2.cmd("STATS q1")
	compareTail(t, refData, data, refStats, stats)
}

// TestConcurrentShardedIngest drives four clients into four distinct
// streams at once (each with its own windowed query), then crashes and
// recovers. Per-query state depends only on its own stream's arrival
// order, so stats must be exact despite arbitrary cross-stream
// interleaving — and the recovered server must reproduce them from the
// interleaved WAL.
func TestConcurrentShardedIngest(t *testing.T) {
	const clients, batches, rows = 4, 6, 8
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 2, 1024))

	ctl := dialServer(t, addr)
	workers := make([]*tclient, clients)
	for i := 0; i < clients; i++ {
		ctl.mustOK(fmt.Sprintf("STREAM s%d key val:dist", i))
		workers[i] = dialServer(t, addr)
		workers[i].mustOK(fmt.Sprintf("QUERY q%d SELECT AVG(val) FROM s%d WINDOW 5 ROWS", i, i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := workers[i]
			send := func(line string) error {
				if _, err := fmt.Fprintf(tc.c, "%s\n", line); err != nil {
					return err
				}
				for tc.sc.Scan() {
					got := tc.sc.Text()
					if strings.HasPrefix(got, "DATA ") {
						continue
					}
					if !strings.HasPrefix(got, "OK") {
						return fmt.Errorf("client %d: %q: %s", i, line, got)
					}
					return nil
				}
				return fmt.Errorf("client %d: connection closed (%v)", i, tc.sc.Err())
			}
			for b := 0; b < batches; b++ {
				parts := []string{"INSERTBATCH", fmt.Sprintf("s%d", i)}
				for r := 0; r < rows; r++ {
					if r > 0 {
						parts = append(parts, "|")
					}
					v := b*rows + r
					parts = append(parts, fmt.Sprintf("%d", v), fmt.Sprintf("N(%d.5,4,%d)", 10+v, 15+v))
				}
				if err := send(strings.Join(parts, " ")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Worker clients are still connected, so their queries stay registered.
	before := make([]string, clients)
	for i := range before {
		before[i], _ = ctl.cmd(fmt.Sprintf("STATS q%d", i))
		want := fmt.Sprintf(`"In":%d`, batches*rows)
		if !strings.Contains(before[i], want) {
			t.Fatalf("q%d stats = %q, want %s", i, before[i], want)
		}
	}
	crash(s)
	ctl.c.Close()
	for _, w := range workers {
		w.c.Close()
	}

	s2, addr2 := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	for i := 0; i < clients; i++ {
		after, _ := tc2.cmd(fmt.Sprintf("STATS q%d", i))
		if after != before[i] {
			t.Errorf("q%d stats diverged after recovery: live %q, recovered %q", i, before[i], after)
		}
	}
}

// TestRecoveryMetricsParity: WAL replay reconstructs state through the
// same push paths as live ingest, but must not re-count that work in the
// steady-state metrics — a recovered process reports the same counters as
// one that never crashed, with the replayed work visible only in the
// dedicated recovery counter.
func TestRecoveryMetricsParity(t *testing.T) {
	const inserts = 6
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 1, 1024))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	tc.mustOK(crashBatchCmd(0, 3))
	for i := 3; i < inserts; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	crash(s)
	tc.c.Close()

	// The registry is process-global, so parity is asserted on deltas
	// across the recovery (which replays the stream DDL, the query, and
	// every insert).
	before := metrics.Default.Snapshot()
	s2, _ := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s2.Close()
	after := metrics.Default.Snapshot()

	for _, name := range []string{
		"asdb_query_push_total",
		"asdb_query_results_total",
		"asdb_engine_tuples_total",
		"asdb_engine_streams_total",
		"asdb_engine_queries_compiled_total",
		"asdb_ingest_batches_total",
	} {
		if d := after.Counters[name] - before.Counters[name]; d != 0 {
			t.Errorf("recovery bumped steady-state counter %s by %d", name, d)
		}
	}
	for _, name := range []string{
		"asdb_query_push_seconds",
		"asdb_ingest_batch_rows",
		"asdb_ingest_shard_wait_seconds",
	} {
		if d := after.Histograms[name].Count - before.Histograms[name].Count; d != 0 {
			t.Errorf("recovery bumped steady-state histogram %s by %d observations", name, d)
		}
	}
	if d := after.Counters["asdb_query_recovery_push_total"] - before.Counters["asdb_query_recovery_push_total"]; d != inserts {
		t.Errorf("recovery pushes counted %d, want %d", d, inserts)
	}
}

// BenchmarkMultiClientIngest measures end-to-end insert throughput with
// four concurrent clients feeding four distinct streams on a durable
// fsync=always server. The serialized baseline sends one INSERT per round
// trip (one WAL frame + fsync each); the batched variant sends
// 32-tuple INSERTBATCH frames (one round trip, one WAL frame, one fsync
// per batch — group commit). ns/op is per tuple.
func BenchmarkMultiClientIngest(b *testing.B) {
	const clients = 4
	for _, batch := range []int{1, 32} {
		name := "serialized"
		if batch > 1 {
			name = fmt.Sprintf("batched=%d", batch)
		}
		b.Run(fmt.Sprintf("%s/clients=%d", name, clients), func(b *testing.B) {
			dir := b.TempDir()
			s, addr := startDurableServer(b, durableConfig(dir, 1, 1<<30))
			defer s.Close()
			tcs := make([]*tclient, clients)
			for i := range tcs {
				tcs[i] = dialServer(b, addr)
				tcs[i].mustOK(fmt.Sprintf("STREAM b%d key val:dist", i))
				tcs[i].mustOK(fmt.Sprintf("QUERY bq%d SELECT AVG(val) FROM b%d WINDOW 8 ROWS", i, i))
				defer tcs[i].c.Close()
			}
			per := (b.N + clients - 1) / clients
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tc := tcs[i]
					for sent := 0; sent < per; sent += batch {
						n := batch
						if per-sent < n {
							n = per - sent
						}
						if n == 1 {
							line := fmt.Sprintf("INSERT b%d %d N(12.5,4,20)", i, sent)
							if _, err := fmt.Fprintf(tc.c, "%s\n", line); err != nil {
								b.Error(err)
								return
							}
						} else {
							parts := []string{"INSERTBATCH", fmt.Sprintf("b%d", i)}
							for r := 0; r < n; r++ {
								if r > 0 {
									parts = append(parts, "|")
								}
								parts = append(parts, fmt.Sprintf("%d", sent+r), "N(12.5,4,20)")
							}
							if _, err := fmt.Fprintf(tc.c, "%s\n", strings.Join(parts, " ")); err != nil {
								b.Error(err)
								return
							}
						}
						ok := false
						for tc.sc.Scan() {
							if got := tc.sc.Text(); !strings.HasPrefix(got, "DATA ") {
								ok = strings.HasPrefix(got, "OK")
								break
							}
						}
						if !ok {
							b.Errorf("client %d: bad reply (%v)", i, tc.sc.Err())
							return
						}
					}
				}(i)
			}
			wg.Wait()
		})
	}
}
