package server

// Chaos suite (ISSUE 5): seeded deterministic fault schedules replayed
// against the full durable server. Each schedule is a pure function of its
// seed and the operation sequence (internal/fault counts calls, never
// clocks), so a failing seed is a reproducible bug report. The invariants:
//
//  1. Clean failures: an injected WAL fsync/ENOSPC fault surfaces as an ERR
//     reply; the connection and the rest of the server keep working.
//  2. No acknowledged-then-lost writes: every insert the client saw "OK"
//     for is present after crash recovery.
//  3. Bit-identical recovery: recovering the same damaged directory at
//     -workers 1 and -workers 8 yields identical stats and identical
//     post-recovery DATA streams.
//  4. Exactly-once retries: an INSERTBATCH whose reply is torn off the
//     wire, retried with the same request id — including across a crash —
//     applies once.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/randvar"
)

// batchRows builds rows for the temps stream (key val:dist) matching the
// crashInsertCmd value pattern.
func batchRows(t *testing.T, n int) [][]randvar.Field {
	t.Helper()
	rows := make([][]randvar.Field, n)
	for i := range rows {
		f, err := ParseFieldSpec(fmt.Sprintf("N(%d.5,2.25,%d)", 10+i, 20+i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = []randvar.Field{randvar.Det(float64(i)), f}
	}
	return rows
}

func startDurableServerFS(t testing.TB, cfg core.Config, fs fault.FS) (*Server, string) {
	t.Helper()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurableFS(eng, nil, fs)
	if err != nil {
		t.Fatalf("NewDurableFS: %v", err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	return s, addr.String()
}

// copyDir clones a data directory so one damaged state can be recovered
// twice (replay mutates the directory: truncated tails, new checkpoints).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy data dir: %v", err)
	}
	return dst
}

// scheduleFromSeed derives a deterministic fault schedule: one WAL-append
// fault (fsync failure or full disk, possibly torn) somewhere in the middle
// of the run. The After offsets skip the ops that set up stream and query.
func scheduleFromSeed(seed uint64) []fault.Rule {
	rng := seed
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	ops := []fault.Op{fault.OpSync, fault.OpWrite}
	errs := []error{fault.ErrFsync, fault.ErrNoSpace}
	r := fault.Rule{
		Op:    ops[next(2)],
		Path:  ".wal",
		After: int(4 + next(10)),
		Count: 1,
		Err:   errs[next(2)],
	}
	if r.Op == fault.OpWrite {
		r.Torn = next(2) == 0
	}
	return []fault.Rule{r}
}

func statsIn(t *testing.T, reply string) uint64 {
	t.Helper()
	payload, ok := strings.CutPrefix(reply, "OK ")
	if !ok {
		t.Fatalf("stats reply %q", reply)
	}
	var st core.QueryStats
	if err := json.Unmarshal([]byte(payload), &st); err != nil {
		t.Fatalf("stats %q: %v", reply, err)
	}
	return st.In
}

// recoverAndContinue recovers a copied data directory at the given worker
// count, re-attaches, runs extra inserts, and returns the stats reply plus
// the post-recovery DATA lines.
func recoverAndContinue(t *testing.T, dir string, workers, from, total int) (string, []string) {
	t.Helper()
	s, addr := startDurableServer(t, durableConfig(dir, workers, 1024))
	defer s.Close()
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK("ATTACH q1")
	var data []string
	for i := from; i < total; i++ {
		data = append(data, tc.mustOK(crashInsertCmd(i))...)
	}
	reply, _ := tc.cmd("STATS q1")
	return reply, data
}

// TestChaosSeededScheduleRecovery drives the full server through seeded WAL
// fault schedules and asserts the chaos invariants above.
func TestChaosSeededScheduleRecovery(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const total = 16
			dir := t.TempDir()
			ifs := fault.NewInjectFS(nil, scheduleFromSeed(seed)...)
			s, addr := startDurableServerFS(t, durableConfig(dir, 1, 1024), ifs)
			tc := dialServer(t, addr)
			tc.mustOK(crashStreamCmd)
			tc.mustOK(crashQueryCmd)
			acked := 0
			sawErr := false
			for i := 0; i < total; i++ {
				reply, _ := tc.cmd(crashInsertCmd(i))
				switch {
				case strings.HasPrefix(reply, "OK"):
					acked++
				case strings.HasPrefix(reply, "ERR"):
					// Invariant 1: a clean error line, connection intact.
					sawErr = true
				default:
					t.Fatalf("insert %d: unparseable reply %q", i, reply)
				}
			}
			if !sawErr {
				t.Fatalf("seed %d never fired (injected=%d); schedule too late", seed, ifs.Injected())
			}
			if _, data := tc.cmd("PING"); len(data) != 0 {
				t.Fatal("PING delivered DATA")
			}
			crash(s)
			tc.c.Close()

			// Invariant 3: identical recovery at both worker counts.
			dirA, dirB := copyDir(t, dir), copyDir(t, dir)
			statsA, dataA := recoverAndContinue(t, dirA, 1, total, total+4)
			statsB, dataB := recoverAndContinue(t, dirB, 8, total, total+4)
			if statsA != statsB {
				t.Fatalf("recovery diverged across workers:\n 1: %s\n 8: %s", statsA, statsB)
			}
			if len(dataA) != len(dataB) {
				t.Fatalf("post-recovery DATA count diverged: %d vs %d", len(dataA), len(dataB))
			}
			for i := range dataA {
				if dataA[i] != dataB[i] {
					t.Fatalf("post-recovery DATA %d diverged:\n 1: %s\n 8: %s", i, dataA[i], dataB[i])
				}
			}

			// Invariant 2: nothing acknowledged was lost. Recovered In covers
			// the acked inserts plus the 4 post-recovery ones; an unacked
			// insert may additionally have survived (flushed frame whose
			// fsync failed), but never the other way around.
			in := statsIn(t, statsA)
			if in < uint64(acked+4) {
				t.Fatalf("acknowledged-then-lost: recovered In=%d < acked %d + 4 continued", in, acked)
			}
			if in > uint64(total+4) {
				t.Fatalf("recovered In=%d exceeds all %d inserts", in, total+4)
			}
		})
	}
}

// TestChaosWALFsyncFailureWedges pins the exact failure mode down: the
// fsync under insert 3 fails, that insert gets a clean ERR, every later
// insert reports the wedged log, PING still works, and after restart the
// server recovers the pre-fault prefix and serves writes again.
func TestChaosWALFsyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	// STREAM and QUERY each sync once under fsync=always; the rule skips
	// them plus the first two inserts, so insert index 2 hits the fault.
	ifs := fault.NewInjectFS(nil, fault.Rule{
		Op: fault.OpSync, Path: ".wal", After: 4, Count: 1, Err: fault.ErrFsync,
	})
	s, addr := startDurableServerFS(t, durableConfig(dir, 1, 1024), ifs)
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	tc.mustOK(crashInsertCmd(0))
	tc.mustOK(crashInsertCmd(1))
	reply, _ := tc.cmd(crashInsertCmd(2))
	if !strings.HasPrefix(reply, "ERR") || !strings.Contains(reply, "wal") {
		t.Fatalf("insert under failed fsync: got %q, want a wal ERR", reply)
	}
	reply, _ = tc.cmd(crashInsertCmd(3))
	if !strings.HasPrefix(reply, "ERR") || !strings.Contains(reply, "wedged") {
		t.Fatalf("insert after failed fsync: got %q, want wedged ERR", reply)
	}
	tc.mustOK("PING")
	crash(s)
	tc.c.Close()

	s2, addr2 := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	tc2.mustOK("ATTACH q1")
	reply, _ = tc2.cmd("STATS q1")
	// Inserts 0 and 1 were acked; insert 2 was flushed before its fsync
	// failed, so it may or may not have survived.
	if in := statsIn(t, reply); in < 2 || in > 3 {
		t.Fatalf("recovered In=%d, want 2 or 3", in)
	}
	tc2.mustOK(crashInsertCmd(4))
}

// TestChaosRetriedBatchExactlyOnce tears the INSERTBATCH reply off the wire
// mid-line; the client's retry (same request id, fresh connection) is
// answered from the dedup window and the batch applies exactly once.
func TestChaosRetriedBatchExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s.Close()

	// The observer owns the query on a clean connection, so the faulty
	// client's drop cannot unregister it.
	obs := dialServer(t, addr)
	defer obs.c.Close()
	obs.mustOK(crashStreamCmd)
	obs.mustOK(crashQueryCmd)

	// Proxy: the first connection dies 5 reply-bytes in (mid-line tear of
	// the batch reply, after the server applied); later connections are
	// clean.
	proxy, err := fault.NewProxy(addr, func(i int) fault.ConnFaults {
		if i == 0 {
			return fault.ConnFaults{DropAfterReadBytes: 5}
		}
		return fault.ConnFaults{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	hitsBefore := mDedupHits.Value()
	cl, err := DialOpts(proxy.Addr(), DialOptions{
		Retries:   3,
		RetryBase: 5 * time.Millisecond,
		OpTimeout: 2 * time.Second,
		Seed:      99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	results, err := cl.InsertBatch("temps", batchRows(t, 3)...)
	if err != nil {
		t.Fatalf("retried batch: %v", err)
	}
	if results != 1 {
		t.Fatalf("retried batch results=%d, want 1 (window 3 over 3 rows)", results)
	}
	if got := mDedupHits.Value() - hitsBefore; got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}
	reply, _ := obs.cmd("STATS q1")
	if in := statsIn(t, reply); in != 3 {
		t.Fatalf("batch applied In=%d, want exactly 3", in)
	}
}

// TestChaosRetryAcrossCrashExactlyOnce re-sends an acked INSERTBATCH with
// its original request id after a crash: replay rebuilt the dedup window
// from the journaled payload, so the retry answers from it bit-identically
// instead of double-applying.
func TestChaosRetryAcrossCrashExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 1, 1024))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	batchCmd := "INSERTBATCH temps 0 N(10.5,2.25,20) | 1 N(11.5,2.25,21) | 2 N(12.5,2.25,22) @rid-1"
	reply1, _ := tc.cmd(batchCmd)
	if !strings.HasPrefix(reply1, "OK") {
		t.Fatalf("first batch: %q", reply1)
	}
	crash(s)
	tc.c.Close()

	s2, addr2 := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	reply2, _ := tc2.cmd(batchCmd)
	if reply2 != reply1 {
		t.Fatalf("retry across crash: got %q, want original reply %q", reply2, reply1)
	}
	stats, _ := tc2.cmd("STATS q1")
	if in := statsIn(t, stats); in != 3 {
		t.Fatalf("after crash retry In=%d, want exactly 3 (no double apply)", in)
	}
	// Control: the same rows without the id re-apply — the dedup window is
	// what provides exactly-once, not an accident of the payload.
	reply3, _ := tc2.cmd(strings.TrimSuffix(batchCmd, " @rid-1"))
	if !strings.HasPrefix(reply3, "OK") {
		t.Fatalf("control batch: %q", reply3)
	}
	stats, _ = tc2.cmd("STATS q1")
	if in := statsIn(t, stats); in != 6 {
		t.Fatalf("control re-apply In=%d, want 6", in)
	}
}

// TestChaosShedLevelJournaled crashes a server mid-stream after a SHED
// transition and checks the recovered server continues bit-identically to
// an uninterrupted reference — the journaled RecShed restores the accuracy
// budget (and its RNG consumption) at the same point in the sequence.
func TestChaosShedLevelJournaled(t *testing.T) {
	const shedAt, crashAt, total = 3, 7, 12
	run := func(t *testing.T, doCrash bool, workers int) (data []string, stats string, level string) {
		dir := t.TempDir()
		s, addr := startDurableServer(t, durableConfig(dir, workers, 1024))
		tc := dialServer(t, addr)
		tc.mustOK(crashStreamCmd)
		tc.mustOK(crashQueryCmd)
		for i := 0; i < total; i++ {
			if i == shedAt {
				tc.mustOK("SHED 2")
			}
			if doCrash && i == crashAt {
				crash(s)
				tc.c.Close()
				s2, addr2 := startDurableServer(t, durableConfig(dir, workers, 1024))
				s, addr = s2, addr2
				tc = dialServer(t, addr)
				tc.mustOK("ATTACH q1")
			}
			data = append(data, tc.mustOK(crashInsertCmd(i))...)
		}
		stats, _ = tc.cmd("STATS q1")
		level, _ = tc.cmd("SHED")
		tc.c.Close()
		s.Close()
		return data, stats, level
	}
	refData, refStats, refLevel := run(t, false, 1)
	if refLevel != "OK shed level=2" {
		t.Fatalf("reference level = %q", refLevel)
	}
	for _, workers := range []int{1, 8} {
		gotData, gotStats, gotLevel := run(t, true, workers)
		if gotLevel != refLevel {
			t.Errorf("workers=%d: recovered level %q, want %q", workers, gotLevel, refLevel)
		}
		if gotStats != refStats {
			t.Errorf("workers=%d: stats %q, want %q", workers, gotStats, refStats)
		}
		if len(gotData) != len(refData) {
			t.Fatalf("workers=%d: %d DATA lines, want %d", workers, len(gotData), len(refData))
		}
		for i := range gotData {
			if gotData[i] != refData[i] {
				t.Fatalf("workers=%d: DATA %d diverged:\nref: %s\ngot: %s",
					workers, i, refData[i], gotData[i])
			}
		}
	}
}
