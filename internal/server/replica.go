package server

// Replication support: a follower server runs with Options.ReadOnly so
// clients cannot mutate it, and applies records shipped from the primary's
// WAL through ApplyReplicated — the same apply paths live commands and
// crash recovery use. Because the engine is deterministic (WAL order ==
// engine sequence order, bit-identical at any worker count), a follower
// that has applied LSN n is byte-identical to the primary at LSN n: DATA
// frames rendered for replica subscribers match the primary's, STATS and
// per-query METRICS replies match, and the replicated @reqid entries make
// the follower's dedup window warm for failover (a routed retry that lands
// on a promoted follower replays the original reply instead of
// double-applying).

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/wal"
)

// errReadOnlyReplica rejects mutating commands on a follower.
var errReadOnlyReplica = errors.New("read-only replica: send writes to the primary")

// WAL exposes the server's write-ahead log for the replication shipping
// layer; nil when the server runs without durability.
func (s *Server) WAL() *wal.Log { return s.wal.Load() }

// Checkpoints exposes the checkpoint manager for the replication shipping
// layer; nil when the server runs without durability.
func (s *Server) Checkpoints() *checkpoint.Manager { return s.ck }

// SetReadOnly flips replica mode at runtime. Promotion flips it off so a
// follower can take writes after the primary fails.
func (s *Server) SetReadOnly(v bool) { s.readOnly.Store(v) }

// ReadOnly reports whether mutating commands are rejected.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// RestoreSnapshot initializes a fresh follower from a shipped checkpoint:
// engine state (streams, windows, RNGs, seq) plus the query registry, with
// every query detached exactly like crash recovery leaves them. It refuses
// to run on a server that already holds state — a follower with state must
// use ReinstallSnapshot (fast-forward) or restart.
func (s *Server) RestoreSnapshot(snap *checkpoint.Snapshot) error {
	release := s.engine.Exclusive()
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queries) > 0 || s.engine.Seq() != 0 || len(s.engine.Streams()) > 0 {
		return errors.New("server: RestoreSnapshot on a non-fresh server")
	}
	return s.installSnapshotLocked(snap)
}

// ReinstallSnapshot fast-forwards a follower that already holds state onto
// a newer primary snapshot. The follower's state at lastApplied ≤ snap.LSN
// is — by the determinism invariant — a strict prefix of the snapshot's,
// so it is discarded wholesale and replaced, never merged. Queries come
// back detached (clients re-ATTACH), exactly like crash recovery. The
// engine runs in recovering mode during the swap so global metrics are not
// double-counted. Used when a crash-looping primary truncated its WAL past
// the follower's position repeatedly: each reconnect lands a newer
// snapshot instead of a terminal resync error.
func (s *Server) ReinstallSnapshot(snap *checkpoint.Snapshot) error {
	release := s.engine.Exclusive()
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.SetRecovering(true)
	defer s.engine.SetRecovering(false)
	s.engine.Clear()
	for id := range s.queries {
		delete(s.queries, id)
	}
	return s.installSnapshotLocked(snap)
}

// installSnapshotLocked restores snapshot state into the (fresh or
// just-cleared) engine and, on a durable follower, re-bases the local WAL
// and checkpoint set so the node's own recovery starts from this snapshot:
// the records below snap.LSN live in the snapshot, not in the local WAL,
// and the replicated suffix about to be journaled must line up with the
// primary's LSN space. Caller holds Exclusive and s.mu.
func (s *Server) installSnapshotLocked(snap *checkpoint.Snapshot) error {
	restored, err := checkpoint.Restore(s.engine, snap)
	if err != nil {
		return fmt.Errorf("server: restoring shipped checkpoint (lsn %d): %w", snap.LSN, err)
	}
	for _, r := range restored {
		if err := s.engine.Bind(r.ID, r.Query); err != nil {
			return fmt.Errorf("server: restored query %s: %w", r.ID, err)
		}
		s.queries[r.ID] = &registeredQuery{id: r.ID, sqlText: r.SQL, query: r.Query}
	}
	s.restoreEpoch(snap.Epoch, snap.EpochHist)
	if w := s.wal.Load(); w != nil {
		if err := w.Reset(snap.LSN + 1); err != nil {
			return fmt.Errorf("server: re-basing wal at snapshot lsn %d: %w", snap.LSN, err)
		}
		if s.ck != nil {
			if err := s.ck.Save(snap); err != nil {
				return fmt.Errorf("server: saving shipped checkpoint locally: %w", err)
			}
		}
		s.sinceCk.Store(0)
	}
	s.logf("replica: restored snapshot lsn=%d (%d streams, %d queries)",
		snap.LSN, len(snap.Streams), len(snap.Queries))
	return nil
}

// ApplyReplicated applies one record shipped from the primary's WAL. Unlike
// crash-recovery replay this runs while the follower serves live read
// traffic, so control records quiesce the engine exactly like their live
// command paths, and ingest results are rendered once and fanned out to
// replica-side ATTACH/SUBSCRIBE connections. Must be called from a single
// goroutine in LSN order.
func (s *Server) ApplyReplicated(rec wal.Record) error {
	payload := string(rec.Payload)
	// Write-through: a durable follower journals every replicated record
	// into its own WAL at the primary's LSN before applying it, so it can
	// recover as a follower without re-shipping history — and, after a
	// promotion, serve as a ship source itself from the shared LSN space.
	// The apply loop is a single goroutine, so journal order trivially
	// equals apply order; an LSN mismatch means the local log diverged and
	// applying further would corrupt it.
	if s.wal.Load() != nil {
		lsn, err := s.journal(rec.Type, payload)
		if err != nil {
			return fmt.Errorf("replicated lsn %d: %w", rec.LSN, err)
		}
		if lsn != rec.LSN {
			return fmt.Errorf("replicated lsn %d: local wal assigned lsn %d (diverged)", rec.LSN, lsn)
		}
		if err := s.waitDurable(lsn); err != nil {
			return fmt.Errorf("replicated lsn %d: %w", rec.LSN, err)
		}
		defer s.maybeCheckpoint()
	}
	switch rec.Type {
	case wal.RecStream:
		release := s.engine.Exclusive()
		_, err := s.applyStream(payload)
		release()
		if err != nil {
			return fmt.Errorf("replicated lsn %d (STREAM): %w", rec.LSN, err)
		}
	case wal.RecQuery:
		id, sqlText := payload, ""
		if idx := strings.IndexByte(payload, ' '); idx >= 0 {
			id, sqlText = payload[:idx], payload[idx+1:]
		}
		release := s.engine.Exclusive()
		s.mu.Lock()
		err := s.applyQueryLocked(id, sqlText, nil)
		s.mu.Unlock()
		release()
		if err != nil {
			return fmt.Errorf("replicated lsn %d (QUERY %s): %w", rec.LSN, id, err)
		}
	case wal.RecInsert, wal.RecInsertBatch:
		batch := rec.Type == wal.RecInsertBatch
		body, reqID := splitReqID(payload)
		streamName, rows, err := parseInsertRows(body, batch)
		if err != nil {
			return fmt.Errorf("replicated lsn %d (INSERT): %w", rec.LSN, err)
		}
		results, err := s.engine.IngestBatch(streamName, rows, nil)
		if err != nil {
			return fmt.Errorf("replicated lsn %d (INSERT): %w", rec.LSN, err)
		}
		emitted, items, pushErr := s.planDeliveries(&s.repl, results)
		if reqID != "" {
			// Same reply the primary computed (deterministic engine), same
			// LSN: the dedup window stays failover-warm.
			s.dedup.put(reqID, dedupEntry{
				reply: ingestReply(batch, len(rows), emitted, pushErr),
				lsn:   rec.LSN,
			})
		}
		s.sendDeliveries(&s.repl, items)
		if pushErr != nil {
			// The primary hit (and reported) the same deterministic per-query
			// error; the follower's state still matches, so applying continues.
			s.logf("replica lsn %d: %v", rec.LSN, pushErr)
		}
	case wal.RecShed:
		level, err := strconv.Atoi(payload)
		if err != nil {
			return fmt.Errorf("replicated lsn %d (SHED): %w", rec.LSN, err)
		}
		s.engine.SetDegradeLevel(level)
	case wal.RecEpoch:
		// The primary's promotion record: adopt the new epoch at the exact
		// LSN the new history begins (also clears a standing fence — the
		// node has caught up with the history that superseded it).
		if err := s.applyEpochRecord(rec); err != nil {
			return fmt.Errorf("replicated %w", err)
		}
	case wal.RecClose:
		release := s.engine.Exclusive()
		s.mu.Lock()
		err := s.applyCloseLocked(payload)
		s.mu.Unlock()
		release()
		if err != nil {
			return fmt.Errorf("replicated lsn %d (CLOSE): %w", rec.LSN, err)
		}
	default:
		return fmt.Errorf("replicated lsn %d: unknown record type %d", rec.LSN, rec.Type)
	}
	return nil
}
