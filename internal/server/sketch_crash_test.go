package server

// Crash injection for the sketch backend: a durable server running a
// BACKEND SKETCH query is killed mid-stream and recovered from its data
// directory. Recovery replays the WAL (or a checkpoint plus the WAL
// suffix), so the rebuilt sketch window — block ring, moment sums, quantile
// compaction state — must put the recovered server on the exact emission
// path of an uninterrupted reference: byte-identical DATA frames and STATS,
// at any worker count on either side of the crash. The sketch path consumes
// no RNG, so this is pure summary-state durability.

import (
	"fmt"
	"testing"
)

const (
	sketchCrashStream = "STREAM temps key val:dist"
	sketchCrashQuery  = "QUERY qs SELECT COUNT(val) AS c, AVG(val) AS a, SUM(val) AS s " +
		"FROM temps WINDOW 4 ROWS BACKEND SKETCH"
)

func sketchInsertCmd(i int) string {
	return fmt.Sprintf("INSERT temps %d N(%d.25,4.5,%d)", i, 20+3*i, 10+i)
}

func runSketchReference(t *testing.T, workers, total int) (data []string, stats string) {
	t.Helper()
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, workers, 1024))
	defer s.Close()
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK(sketchCrashStream)
	tc.mustOK(sketchCrashQuery)
	for i := 0; i < total; i++ {
		data = append(data, tc.mustOK(sketchInsertCmd(i))...)
	}
	reply, _ := tc.cmd("STATS qs")
	return data, reply
}

func runSketchCrashed(t *testing.T, phase1, total, crashWorkers, recoverWorkers, ckEvery int) (data []string, stats string) {
	t.Helper()
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, crashWorkers, ckEvery))
	tc := dialServer(t, addr)
	tc.mustOK(sketchCrashStream)
	tc.mustOK(sketchCrashQuery)
	for i := 0; i < phase1; i++ {
		tc.mustOK(sketchInsertCmd(i))
	}
	crash(s)
	tc.c.Close()

	s2, addr2 := startDurableServer(t, durableConfig(dir, recoverWorkers, ckEvery))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	tc2.mustOK("ATTACH qs")
	for i := phase1; i < total; i++ {
		data = append(data, tc2.mustOK(sketchInsertCmd(i))...)
	}
	reply, _ := tc2.cmd("STATS qs")
	return data, reply
}

// TestSketchCrashRecoveryDeterministic covers both recovery paths
// (checkpoint + WAL suffix at ckEvery=3, pure WAL replay at ckEvery=1024)
// and asymmetric worker counts across the crash. The crash point (7 of 14
// inserts on a 4-row window) lands mid-ring: sealed blocks already evicted,
// the active block partially filled.
func TestSketchCrashRecoveryDeterministic(t *testing.T) {
	const phase1, total = 7, 14
	refData, refStats := runSketchReference(t, 1, total)
	// Single-row blocks on a 4-row window: one DATA frame per insert from
	// the 4th on.
	if len(refData) != total-3 {
		t.Fatalf("reference emitted %d DATA lines, want %d", len(refData), total-3)
	}
	// The reference must be worker-count independent before crash tests
	// mean anything.
	if data8, stats8 := runSketchReference(t, 8, total); stats8 != refStats {
		t.Fatalf("reference diverges across workers:\n1: %s\n8: %s", refStats, stats8)
	} else {
		for i := range refData {
			if data8[i] != refData[i] {
				t.Fatalf("reference DATA %d diverges across workers:\n1: %s\n8: %s", i, refData[i], data8[i])
			}
		}
	}
	for _, tc := range []struct {
		name                         string
		crashWorkers, recoverWorkers int
		ckEvery                      int
	}{
		{"wal-only/workers=1", 1, 1, 1024},
		{"wal-only/workers=8", 8, 8, 1024},
		{"checkpoint/workers=1", 1, 1, 3},
		{"checkpoint/workers=8", 8, 8, 3},
		{"cross-workers-8-to-1", 8, 1, 3},
		{"cross-workers-1-to-8", 1, 8, 1024},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, stats := runSketchCrashed(t, phase1, total, tc.crashWorkers, tc.recoverWorkers, tc.ckEvery)
			compareTail(t, refData, data, refStats, stats)
		})
	}
}
