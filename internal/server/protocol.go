// Package server exposes the accuracy-aware uncertain stream database over
// a TCP line protocol, plus a matching Go client. One server process hosts
// one Engine; any number of clients may register streams, compile
// continuous queries, and insert tuples. Query results are delivered
// asynchronously to the connection that registered the query as DATA lines.
//
// # Protocol
//
// Requests are single lines; fields are space-separated except the SQL
// text, which runs to the end of the line:
//
//	STREAM <name> <col>[:dist] ...      register a stream schema
//	QUERY  <id> <sql>                   compile a continuous query
//	INSERT <stream> <field> ...         push one tuple
//	INSERTBATCH <stream> <field> ... [| <field> ...]
//	                                    push several tuples atomically;
//	                                    "|" separates tuples. One engine
//	                                    batch, one WAL record, one fsync
//	STATS  <id>                         query counters
//	METRICS [<id>]                      process metrics, or one query's
//	                                    accuracy telemetry (JSON)
//	EXPLAIN <id> [TIMING]               compiled plan (quoted string); TIMING
//	                                    adds per-stage counters (node-local)
//	CLOSE  <id>                         drop a query
//	ATTACH <id>                         claim delivery of a detached query
//	SUBSCRIBE <id>                      receive a query's DATA lines in
//	                                    addition to its owner; the rendered
//	                                    bytes are shared across recipients
//	PING                                liveness check
//	QUIT                                close the connection
//
// ATTACH exists for durability: after crash recovery the server rebuilds
// every checkpointed/journaled query, but the TCP connections that owned
// them are gone, so recovered queries are "detached" — they keep consuming
// inserts and updating state, with no DATA delivery. A client issues
// ATTACH <id> to become the delivery target. Attaching to a query owned by
// another live connection is an error. Attachment is transport state, not
// database state: it is never journaled and does not survive a restart.
//
// Field syntax for INSERT and INSERTBATCH:
//
//	12.5                 deterministic value
//	N(mu,sigma2,n)       Gaussian learned from n observations
//	S(v1;v2;...)         raw sample; the server learns a Gaussian (n = count)
//	H(e0,e1,...|c1,...)  histogram from bucket edges and raw counts
//	J{...}               any distribution as compact codec JSON (lossless)
//
// Responses are "OK[ payload]" or "ERR <message>". Asynchronous result
// lines have the form "DATA <queryID> <json>"; the JSON shape is
// server.ResultJSON.
package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/learn"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// ParseFieldSpec parses one INSERT field.
func ParseFieldSpec(spec string) (randvar.Field, error) {
	switch {
	case strings.HasPrefix(spec, "J{"):
		return codec.DecodeField([]byte(spec[1:]))
	case strings.HasPrefix(spec, "N(") && strings.HasSuffix(spec, ")"):
		body := spec[2 : len(spec)-1]
		parts := strings.Split(body, ",")
		if len(parts) != 3 {
			return randvar.Field{}, fmt.Errorf("server: N() takes (mu,sigma2,n), got %q", spec)
		}
		mu, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return randvar.Field{}, fmt.Errorf("server: bad mu in %q: %w", spec, err)
		}
		sigma2, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return randvar.Field{}, fmt.Errorf("server: bad sigma2 in %q: %w", spec, err)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 {
			return randvar.Field{}, fmt.Errorf("server: bad n in %q", spec)
		}
		nd, err := dist.NewNormal(mu, sigma2)
		if err != nil {
			return randvar.Field{}, err
		}
		return randvar.Field{Dist: nd, N: n}, nil
	case strings.HasPrefix(spec, "S(") && strings.HasSuffix(spec, ")"):
		body := spec[2 : len(spec)-1]
		parts := strings.Split(body, ";")
		obs := make([]float64, 0, len(parts))
		for _, p := range parts {
			if p == "" {
				continue
			}
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return randvar.Field{}, fmt.Errorf("server: bad observation %q in %q", p, spec)
			}
			obs = append(obs, v)
		}
		if len(obs) < 2 {
			return randvar.Field{}, fmt.Errorf("server: S() needs ≥ 2 observations, got %d", len(obs))
		}
		return core.LearnField(learn.GaussianLearner{}, learn.NewSample(obs))
	case strings.HasPrefix(spec, "H(") && strings.HasSuffix(spec, ")"):
		body := spec[2 : len(spec)-1]
		halves := strings.SplitN(body, "|", 2)
		if len(halves) != 2 {
			return randvar.Field{}, fmt.Errorf("server: H() takes edges|counts, got %q", spec)
		}
		edgeStrs := strings.Split(halves[0], ",")
		countStrs := strings.Split(halves[1], ",")
		edges := make([]float64, 0, len(edgeStrs))
		for _, s := range edgeStrs {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return randvar.Field{}, fmt.Errorf("server: bad edge %q in %q", s, spec)
			}
			edges = append(edges, v)
		}
		counts := make([]int, 0, len(countStrs))
		total := 0
		for _, s := range countStrs {
			v, err := strconv.Atoi(s)
			if err != nil {
				return randvar.Field{}, fmt.Errorf("server: bad count %q in %q", s, spec)
			}
			counts = append(counts, v)
			total += v
		}
		h, err := dist.HistogramFromCounts(edges, counts)
		if err != nil {
			return randvar.Field{}, err
		}
		return randvar.Field{Dist: h, N: total}, nil
	default:
		v, err := strconv.ParseFloat(spec, 64)
		if err != nil {
			return randvar.Field{}, fmt.Errorf("server: unrecognized field %q", spec)
		}
		return randvar.Det(v), nil
	}
}

// FormatFieldSpec renders a field in the protocol's INSERT syntax (inverse
// of ParseFieldSpec for the supported kinds).
func FormatFieldSpec(f randvar.Field) string {
	switch d := f.Dist.(type) {
	case dist.Point:
		if f.N > 0 {
			// A point learned from n observations (e.g. a constant sample)
			// is not the same as an exact deterministic value: the bare
			// numeric form would re-parse with n = 0, so it travels as
			// codec JSON to keep the sample size.
			break
		}
		return strconv.FormatFloat(d.V, 'g', -1, 64)
	case dist.Normal:
		return fmt.Sprintf("N(%g,%g,%d)", d.Mu, d.Sigma2, f.N)
	case *dist.Histogram:
		if d.Counts == nil {
			// Without raw counts the H() syntax can't render the exact
			// probabilities; fall through to the lossless codec form.
			break
		}
		edges := make([]string, len(d.Edges))
		for i, e := range d.Edges {
			edges[i] = strconv.FormatFloat(e, 'g', -1, 64)
		}
		counts := make([]string, len(d.Counts))
		for i, c := range d.Counts {
			counts[i] = strconv.Itoa(c)
		}
		return fmt.Sprintf("H(%s|%s)", strings.Join(edges, ","), strings.Join(counts, ","))
	}
	// Arbitrary distributions (and histograms without raw counts) travel
	// losslessly as codec JSON (compact, so it stays a space-free token).
	if data, err := codec.EncodeField(f); err == nil {
		return "J" + string(data)
	}
	return fmt.Sprintf("N(%g,%g,%d)", f.Dist.Mean(), f.Dist.Variance(), f.N)
}

// IntervalJSON is a confidence interval in wire form.
type IntervalJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

func intervalJSON(iv accuracy.Interval) IntervalJSON {
	return IntervalJSON{Lo: iv.Lo, Hi: iv.Hi, Level: iv.Level}
}

// FieldJSON is one result field in wire form. Repr carries the full
// distribution in codec JSON so clients can reconstruct it losslessly;
// Dist remains the human-readable summary.
type FieldJSON struct {
	Mean     float64         `json:"mean"`
	Variance float64         `json:"variance"`
	N        int             `json:"n,omitempty"`
	Dist     string          `json:"dist"`
	Repr     json.RawMessage `json:"repr,omitempty"`
	MeanIv   *IntervalJSON   `json:"mean_interval,omitempty"`
	VarIv    *IntervalJSON   `json:"variance_interval,omitempty"`
	MedianIv *IntervalJSON   `json:"window_median,omitempty"`
	Bins     []BinJSON       `json:"bins,omitempty"`
}

// BinJSON is one histogram bucket's accuracy in wire form.
type BinJSON struct {
	Lo       float64      `json:"lo"`
	Hi       float64      `json:"hi"`
	Estimate float64      `json:"estimate"`
	Interval IntervalJSON `json:"interval"`
}

// ResultJSON is one query result in wire form.
type ResultJSON struct {
	Fields map[string]FieldJSON `json:"fields"`
	Prob   float64              `json:"prob"`
	ProbN  int                  `json:"prob_n,omitempty"`
	ProbIv *IntervalJSON        `json:"prob_interval,omitempty"`
	Unsure bool                 `json:"unsure,omitempty"`
	Seq    uint64               `json:"seq"`
	Time   int64                `json:"time,omitempty"`
}

// EncodeResult converts a core.Result into wire form.
func EncodeResult(r core.Result) ResultJSON {
	out := ResultJSON{
		Fields: make(map[string]FieldJSON, len(r.Tuple.Fields)),
		Prob:   r.Tuple.Prob,
		ProbN:  r.Tuple.ProbN,
		Unsure: r.Unsure,
		Seq:    r.Tuple.Seq,
		Time:   r.Tuple.Time,
	}
	for i, f := range r.Tuple.Fields {
		name := r.Tuple.Schema.Columns[i].Name
		fj := FieldJSON{
			Mean:     f.Dist.Mean(),
			Variance: f.Dist.Variance(),
			N:        f.N,
			Dist:     f.Dist.String(),
		}
		if repr, err := codec.EncodeDistribution(f.Dist); err == nil {
			fj.Repr = repr
		}
		if info := r.Fields[name]; info != nil {
			miv := intervalJSON(info.Mean)
			viv := intervalJSON(info.Variance)
			fj.MeanIv = &miv
			fj.VarIv = &viv
			if info.WindowMedian != nil {
				med := intervalJSON(*info.WindowMedian)
				fj.MedianIv = &med
			}
			for _, b := range info.Bins {
				fj.Bins = append(fj.Bins, BinJSON{
					Lo: b.Lo, Hi: b.Hi, Estimate: b.Estimate,
					Interval: intervalJSON(b.Interval),
				})
			}
		}
		out.Fields[name] = fj
	}
	if r.TupleProb != nil {
		iv := intervalJSON(*r.TupleProb)
		out.ProbIv = &iv
	}
	return out
}

// ParseStreamDef parses the STREAM command's column definitions.
func ParseStreamDef(name string, colSpecs []string) (*stream.Schema, error) {
	cols := make([]stream.Column, 0, len(colSpecs))
	for _, spec := range colSpecs {
		probabilistic := false
		colName := spec
		if idx := strings.IndexByte(spec, ':'); idx >= 0 {
			colName = spec[:idx]
			kind := strings.ToLower(spec[idx+1:])
			switch kind {
			case "dist", "prob":
				probabilistic = true
			case "det", "":
			default:
				return nil, fmt.Errorf("server: unknown column kind %q in %q", kind, spec)
			}
		}
		cols = append(cols, stream.Column{Name: colName, Probabilistic: probabilistic})
	}
	return stream.NewSchema(name, cols...)
}
