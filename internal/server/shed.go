package server

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// Accuracy-aware load shedding (ISSUE 5, tentpole part 3).
//
// Under overload the server does not drop tuples or queries — either would
// silently bias results. Instead it reduces the accuracy-estimation budget:
// each degrade level halves the bootstrap/Monte-Carlo resample count (see
// core.shedDivisor), which shows up honestly in query output as wider
// confidence intervals and Method "bootstrap-shed". The controller watches
// the push-latency histogram the engine already maintains
// (asdb_query_push_seconds) and walks the level up when the observed p99
// exceeds the target, back down after sustained headroom.
//
// Determinism: category-2 (distribution) bootstrap consumes the query RNG in
// proportion to the resample count, so a level change alters the RNG stream
// of every subsequent evaluation. Every transition is therefore journaled
// (wal.RecShed) inside an Exclusive section — at a definite WAL position —
// and the level is captured in checkpoints, so crash recovery replays the
// exact accuracy budget the live run used and recovered state stays
// bit-identical.

var (
	mShedTransitions = metrics.Default.Counter("asdb_shed_transitions_total",
		"load-shed degrade-level changes (up or down)")
	gShedP99Micros = metrics.Default.Gauge("asdb_shed_observed_p99_micros",
		"push-latency p99 observed by the shed controller over its last interval, in microseconds")
)

// ShedConfig tunes the overload controller. The zero value disables it.
type ShedConfig struct {
	// Enabled starts the controller goroutine with Serve.
	Enabled bool
	// Interval is the evaluation cadence (default 250ms).
	Interval time.Duration
	// TargetP99 is the push-latency p99 the controller defends (default
	// 50ms). Above it the degrade level steps up once per interval; below
	// half of it the level steps down after RecoverAfter healthy intervals.
	TargetP99 time.Duration
	// RecoverAfter is how many consecutive healthy intervals are required
	// per step back toward full accuracy (default 8). Hysteresis: recovery
	// is deliberately slower than degradation.
	RecoverAfter int
	// MinEvals is the minimum number of pushes in an interval for its
	// latency to count as a signal (default 8); near-idle intervals count
	// as healthy.
	MinEvals uint64
}

func (c ShedConfig) normalize() ShedConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.TargetP99 <= 0 {
		c.TargetP99 = 50 * time.Millisecond
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 8
	}
	if c.MinEvals == 0 {
		c.MinEvals = 8
	}
	return c
}

// setShedLevel journals and applies one degrade-level transition. The
// journal append happens under Exclusive so the WAL position fixes exactly
// which inserts ran at which level; replay restores the same budget
// schedule. No-op when the level is already current.
func (s *Server) setShedLevel(level int) error {
	if level < 0 {
		level = 0
	}
	if level > core.MaxDegradeLevel {
		level = core.MaxDegradeLevel
	}
	release := s.engine.Exclusive()
	if s.engine.DegradeLevel() == level {
		release()
		return nil
	}
	lsn, err := s.journal(wal.RecShed, strconv.Itoa(level))
	if err == nil {
		s.engine.SetDegradeLevel(level)
		mShedTransitions.Inc()
		s.logf("shed: degrade level -> %d", level)
	}
	release()
	if err != nil {
		return err
	}
	return s.waitDurable(lsn)
}

// shedController samples the push-latency histogram on a fixed cadence and
// drives the engine degrade level with hysteresis.
type shedController struct {
	s       *Server
	cfg     ShedConfig
	stop    chan struct{}
	done    chan struct{}
	prev    metrics.HistogramSnapshot
	healthy int
}

func (s *Server) startShed() {
	if !s.opts.Shed.Enabled || s.shed != nil {
		return
	}
	c := &shedController{
		s:    s,
		cfg:  s.opts.Shed,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		prev: pushLatency().Snapshot(),
	}
	s.shed = c
	go c.run()
}

func (s *Server) stopShed() {
	s.mu.Lock()
	c := s.shed
	s.shed = nil
	s.mu.Unlock()
	if c == nil {
		return
	}
	close(c.stop)
	<-c.done
}

// pushLatency resolves the engine's push histogram from the shared registry
// (registered by internal/core; Histogram is idempotent per name).
func pushLatency() *metrics.Histogram {
	return metrics.Default.Histogram("asdb_query_push_seconds",
		"wall time of one tuple push through one query", metrics.DefBuckets)
}

func (c *shedController) run() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

func (c *shedController) tick() {
	cur := pushLatency().Snapshot()
	evals, p99 := intervalP99(c.prev, cur)
	c.prev = cur
	gShedP99Micros.Set(int64(p99 / time.Microsecond))
	level := c.s.engine.DegradeLevel()
	switch {
	case evals >= c.cfg.MinEvals && p99 > c.cfg.TargetP99:
		c.healthy = 0
		if level < core.MaxDegradeLevel {
			if err := c.s.setShedLevel(level + 1); err != nil {
				c.s.logf("shed: raise level: %v", err)
			}
		}
	case evals < c.cfg.MinEvals || p99 <= c.cfg.TargetP99/2:
		if level == 0 {
			c.healthy = 0
			return
		}
		c.healthy++
		if c.healthy >= c.cfg.RecoverAfter {
			c.healthy = 0
			if err := c.s.setShedLevel(level - 1); err != nil {
				c.s.logf("shed: lower level: %v", err)
			}
		}
	default:
		// Between Target/2 and Target: hold the current level.
		c.healthy = 0
	}
}

// intervalP99 estimates the p99 of the observations that landed between two
// histogram snapshots. Returns the interval's observation count and the
// upper bound of the bucket containing the 99th percentile (conservative:
// the true p99 is at most this). The +Inf bucket reports the largest finite
// bound.
func intervalP99(prev, cur metrics.HistogramSnapshot) (uint64, time.Duration) {
	if len(cur.Counts) == 0 || len(prev.Counts) != len(cur.Counts) {
		return 0, 0
	}
	total := cur.Count - prev.Count
	if total == 0 {
		return 0, 0
	}
	rank := (total*99 + 99) / 100 // ceil(0.99 * total)
	var cum uint64
	for i, n := range cur.Counts {
		cum += n - prev.Counts[i]
		if cum >= rank {
			if i < len(cur.Bounds) {
				return total, time.Duration(cur.Bounds[i] * float64(time.Second))
			}
			break
		}
	}
	// p99 fell in the +Inf bucket.
	last := cur.Bounds[len(cur.Bounds)-1]
	return total, time.Duration(last * float64(time.Second))
}
