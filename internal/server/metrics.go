package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Protocol-layer observability: per-command request counts, a shared
// command-latency histogram, connection lifecycle, delivered DATA lines,
// and command errors. Counters are pre-registered per verb so the dispatch
// hot path only does a map lookup plus an atomic add.
var (
	mCmds = func() map[string]*metrics.Counter {
		verbs := []string{"PING", "QUIT", "STREAM", "QUERY", "INSERT", "INSERTBATCH",
			"STATS", "EXPLAIN", "ATTACH", "CLOSE", "METRICS", "SHED", "ROLE", "UNKNOWN"}
		out := make(map[string]*metrics.Counter, len(verbs))
		for _, v := range verbs {
			out[v] = metrics.Default.Counter(
				"asdb_server_cmd_"+strings.ToLower(v)+"_total",
				"protocol commands dispatched: "+v)
		}
		return out
	}()
	hCmd = metrics.Default.Histogram("asdb_server_cmd_seconds",
		"wall time of one protocol command", metrics.DefBuckets)
	mCmdErrs = metrics.Default.Counter("asdb_server_cmd_errors_total",
		"protocol commands that returned ERR")
	mConnsOpened = metrics.Default.Counter("asdb_server_conns_opened_total",
		"client connections accepted")
	gConnsActive = metrics.Default.Gauge("asdb_server_conns_active",
		"client connections currently open")
	mDataLines = metrics.Default.Counter("asdb_server_data_lines_total",
		"DATA result lines delivered to clients")

	// Fault-tolerance observability (ISSUE 5): every hardening mechanism
	// leaves a countable trace so chaos runs can assert it actually fired.
	mConnPanics = metrics.Default.Counter("asdb_conn_panics_total",
		"per-connection handler panics recovered (only the offending connection closes)")
	mConnsRejected = metrics.Default.Counter("asdb_server_conns_rejected_total",
		"connections refused by MaxConns admission control")
	mAcceptRetries = metrics.Default.Counter("asdb_server_accept_retries_total",
		"transient Accept failures retried with backoff")
	mIdleTimeouts = metrics.Default.Counter("asdb_server_conn_idle_timeouts_total",
		"connections closed for exceeding the idle timeout")
	mSlowClientDrops = metrics.Default.Counter("asdb_server_slow_client_drops_total",
		"connections dropped because their DATA outbox overflowed")
	mDedupHits = metrics.Default.Counter("asdb_server_dedup_hits_total",
		"idempotent retries answered from the dedup window without re-applying")
)

// countCmd resolves the verb's counter, folding unregistered verbs into
// UNKNOWN.
func countCmd(verb string) {
	c, ok := mCmds[verb]
	if !ok {
		c = mCmds["UNKNOWN"]
	}
	c.Inc()
}

// queryMetrics is the METRICS <id> response payload.
type queryMetrics struct {
	ID        string          `json:"id"`
	Stats     core.QueryStats `json:"stats"`
	Telemetry core.Telemetry  `json:"telemetry"`
}

// cmdMetrics serves the METRICS command. Bare METRICS returns the process
// registry snapshot (counters, gauges, histogram states) as one JSON
// object; METRICS <id> returns the named query's counters plus its accuracy
// telemetry — rolling CI half-widths, tuple-probability interval widths,
// and the d.f. sample sizes behind them.
func (s *Server) cmdMetrics(c *conn, rest string) error {
	id := strings.TrimSpace(rest)
	if id == "" {
		payload, err := json.Marshal(metrics.Default.Snapshot())
		if err != nil {
			return err
		}
		return c.writeLine("OK " + string(payload))
	}
	s.mu.Lock()
	rq, ok := s.queries[id]
	var qm queryMetrics
	if ok {
		// Stats and Telemetry are safe to snapshot concurrently with Push
		// (atomic counters, internally locked rings), so holding s.mu here
		// only protects the registry lookup.
		qm = queryMetrics{ID: rq.id, Stats: rq.query.Stats(), Telemetry: rq.query.Telemetry()}
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	payload, err := json.Marshal(qm)
	if err != nil {
		return err
	}
	return c.writeLine("OK " + string(payload))
}

// timeCmd observes one command's wall time.
func timeCmd(t0 time.Time) { hCmd.ObserveSince(t0) }
