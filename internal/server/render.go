package server

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/accuracy"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dist"
)

// Render-once serving path: each DATA line is rendered exactly once into a
// pooled frame and the same bytes fan out to every recipient (owner plus
// subscribers) by reference. Frames are reference-counted — the renderer
// sets the count to the number of recipients, every recipient path
// (synchronous same-conn write, outbox enqueue, slow-client drop, outbox
// drain at teardown) releases exactly once, and the buffer returns to the
// pool only at zero. See the ownership contract in internal/stream/doc.go.
//
// The renderer itself (appendResult) is a strconv.Append* replication of
// json.Marshal(EncodeResult(r)) — byte-identical, pinned by
// TestRenderMatchesJSON and the golden transcripts — so the steady-state
// push path allocates nothing.

// maxPooledFrame caps the buffer capacity a recycled frame may retain, so
// one huge result (e.g. a wide histogram) doesn't pin memory forever.
const maxPooledFrame = 64 * 1024

type frame struct {
	buf  []byte
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// newFrame returns an empty frame with a reference count of 1 (the
// renderer's own reference; planDeliveries overwrites it with the final
// recipient count before any recipient can release).
func newFrame() *frame {
	f := framePool.Get().(*frame)
	f.buf = f.buf[:0]
	f.refs.Store(1)
	return f
}

// release drops one reference; the last one recycles the frame.
func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		if cap(f.buf) <= maxPooledFrame {
			framePool.Put(f)
		}
	}
}

// appendDataLine renders "DATA <id> <json>" for r into dst, byte-identical
// to the fmt/json.Marshal formatting it replaces.
func appendDataLine(dst []byte, id string, r core.Result) ([]byte, error) {
	dst = append(dst, "DATA "...)
	dst = append(dst, id...)
	dst = append(dst, ' ')
	return appendResult(dst, r)
}

// appendResult appends the wire JSON for r, byte-identical to
// json.Marshal(EncodeResult(r)): same field order, same omitempty
// behavior, same sorted map keys, same float formatting, and the same
// "json: unsupported value" errors on non-finite numbers.
func appendResult(dst []byte, r core.Result) ([]byte, error) {
	var err error
	dst = append(dst, `{"fields":{`...)
	cols := r.Tuple.Schema.Columns
	n := len(r.Tuple.Fields)
	// json.Marshal emits map keys in sorted order; column counts are small,
	// so an insertion sort over a stack-allocated index array keeps the
	// steady-state path allocation-free.
	var idxBuf [16]int
	idx := idxBuf[:0]
	if n > len(idxBuf) {
		idx = make([]int, 0, n)
	}
	for i := 0; i < n; i++ {
		idx = append(idx, i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && cols[idx[j]].Name < cols[idx[j-1]].Name; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for k, i := range idx {
		if k > 0 {
			dst = append(dst, ',')
		}
		name := cols[i].Name
		dst = codec.AppendString(dst, name)
		dst = append(dst, ':')
		if dst, err = appendFieldJSON(dst, r.Tuple.Fields[i].Dist, r.Tuple.Fields[i].N, r.Fields[name]); err != nil {
			return dst, err
		}
	}
	dst = append(dst, `},"prob":`...)
	if dst, err = codec.AppendFloat(dst, r.Tuple.Prob); err != nil {
		return dst, err
	}
	if r.Tuple.ProbN != 0 {
		dst = append(dst, `,"prob_n":`...)
		dst = strconv.AppendInt(dst, int64(r.Tuple.ProbN), 10)
	}
	if r.TupleProb != nil {
		dst = append(dst, `,"prob_interval":`...)
		if dst, err = appendInterval(dst, *r.TupleProb); err != nil {
			return dst, err
		}
	}
	if r.Unsure {
		dst = append(dst, `,"unsure":true`...)
	}
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, r.Tuple.Seq, 10)
	if r.Tuple.Time != 0 {
		dst = append(dst, `,"time":`...)
		dst = strconv.AppendInt(dst, r.Tuple.Time, 10)
	}
	return append(dst, '}'), nil
}

// appendFieldJSON appends one FieldJSON object.
func appendFieldJSON(dst []byte, d dist.Distribution, n int, info *accuracy.Info) ([]byte, error) {
	var err error
	dst = append(dst, `{"mean":`...)
	if dst, err = codec.AppendFloat(dst, d.Mean()); err != nil {
		return dst, err
	}
	dst = append(dst, `,"variance":`...)
	if dst, err = codec.AppendFloat(dst, d.Variance()); err != nil {
		return dst, err
	}
	if n != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, int64(n), 10)
	}
	dst = append(dst, `,"dist":`...)
	dst = appendDistString(dst, d)
	// Repr is omitted when the distribution has no codec encoding, exactly
	// as EncodeResult drops it; truncating back removes any partial bytes.
	mark := len(dst)
	dst = append(dst, `,"repr":`...)
	if rd, rerr := codec.AppendDistribution(dst, d); rerr == nil {
		dst = rd
	} else {
		dst = dst[:mark]
	}
	if info != nil {
		dst = append(dst, `,"mean_interval":`...)
		if dst, err = appendInterval(dst, info.Mean); err != nil {
			return dst, err
		}
		dst = append(dst, `,"variance_interval":`...)
		if dst, err = appendInterval(dst, info.Variance); err != nil {
			return dst, err
		}
		if info.WindowMedian != nil {
			dst = append(dst, `,"window_median":`...)
			if dst, err = appendInterval(dst, *info.WindowMedian); err != nil {
				return dst, err
			}
		}
		if len(info.Bins) > 0 {
			dst = append(dst, `,"bins":[`...)
			for i, b := range info.Bins {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = append(dst, `{"lo":`...)
				if dst, err = codec.AppendFloat(dst, b.Lo); err != nil {
					return dst, err
				}
				dst = append(dst, `,"hi":`...)
				if dst, err = codec.AppendFloat(dst, b.Hi); err != nil {
					return dst, err
				}
				dst = append(dst, `,"estimate":`...)
				if dst, err = codec.AppendFloat(dst, b.Estimate); err != nil {
					return dst, err
				}
				dst = append(dst, `,"interval":`...)
				if dst, err = appendInterval(dst, b.Interval); err != nil {
					return dst, err
				}
				dst = append(dst, '}')
			}
			dst = append(dst, ']')
		}
	}
	return append(dst, '}'), nil
}

// appendInterval appends an IntervalJSON object.
func appendInterval(dst []byte, iv accuracy.Interval) ([]byte, error) {
	var err error
	dst = append(dst, `{"lo":`...)
	if dst, err = codec.AppendFloat(dst, iv.Lo); err != nil {
		return dst, err
	}
	dst = append(dst, `,"hi":`...)
	if dst, err = codec.AppendFloat(dst, iv.Hi); err != nil {
		return dst, err
	}
	dst = append(dst, `,"level":`...)
	if dst, err = codec.AppendFloat(dst, iv.Level); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// appendDistString appends the JSON-quoted human-readable summary for d —
// the strconv replication of d.String() for the distributions the hot path
// emits (their summaries contain no JSON-escapable bytes), falling back to
// the String method otherwise.
func appendDistString(dst []byte, d dist.Distribution) []byte {
	switch v := d.(type) {
	case dist.Point:
		dst = append(dst, `"Point(`...)
		dst = strconv.AppendFloat(dst, v.V, 'g', -1, 64)
		return append(dst, ')', '"')
	case dist.Normal:
		dst = append(dst, `"Normal(μ=`...)
		dst = strconv.AppendFloat(dst, v.Mu, 'g', -1, 64)
		dst = append(dst, `, σ²=`...)
		dst = strconv.AppendFloat(dst, v.Sigma2, 'g', -1, 64)
		return append(dst, ')', '"')
	case *dist.Histogram:
		dst = append(dst, `"Histogram{`...)
		dst = strconv.AppendInt(dst, int64(v.NumBuckets()), 10)
		dst = append(dst, ` buckets on [`...)
		dst = strconv.AppendFloat(dst, v.Edges[0], 'g', -1, 64)
		dst = append(dst, `, `...)
		dst = strconv.AppendFloat(dst, v.Edges[len(v.Edges)-1], 'g', -1, 64)
		dst = append(dst, ']')
		if sn := v.SampleSize(); sn > 0 {
			dst = append(dst, `, n=`...)
			dst = strconv.AppendInt(dst, int64(sn), 10)
		}
		return append(dst, '}', '"')
	}
	return codec.AppendString(dst, d.String())
}
