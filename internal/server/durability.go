package server

// Durability wiring: NewDurable opens the engine's DataDir, loads the
// latest valid checkpoint, deterministically replays the write-ahead-log
// suffix through the same apply paths live commands use, and then turns on
// journaling. Because the engine RNGs are seeded from the engine
// configuration and every consumer of randomness is restored (checkpointed
// RNG states) or re-executed (WAL replay), a recovered server is
// bit-identical to one that never crashed: the same inserts produce the
// same results at any Workers setting.
//
// Replay runs with Engine.SetRecovering(true), which reroutes the
// steady-state ingest/push metrics to a dedicated recovery counter, so a
// recovered process reports the same metric values as one that never
// crashed (asserted by TestRecoveryMetricsParity).

import (
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/wal"
)

// NewDurable returns a server honoring the engine's durability
// configuration. With Config.DataDir empty it behaves exactly like New;
// otherwise it recovers state from <DataDir>/checkpoints and <DataDir>/wal
// and journals every subsequent state-changing command. Recovered queries
// are detached (no owning connection); clients re-acquire result delivery
// with ATTACH <id>.
func NewDurable(engine *core.Engine, logger *log.Logger) (*Server, error) {
	return NewDurableFS(engine, logger, nil)
}

// NewDurableFS is NewDurable over an injectable filesystem (nil = the real
// one). The fault-injection harness uses it to drive the whole durability
// stack — WAL appends, fsyncs, checkpoint renames — through seeded fault
// schedules without touching the OS.
func NewDurableFS(engine *core.Engine, logger *log.Logger, fs fault.FS) (*Server, error) {
	s, err := New(engine, logger)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config()
	if cfg.DataDir == "" {
		return s, nil
	}
	policy, err := wal.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, err
	}
	ckm, err := checkpoint.NewManagerFS(filepath.Join(cfg.DataDir, "checkpoints"), fs)
	if err != nil {
		return nil, err
	}
	snap, err := ckm.LoadLatest()
	if err != nil {
		return nil, err
	}
	engine.SetRecovering(true)
	defer engine.SetRecovering(false)
	from := uint64(1)
	if snap != nil {
		restored, err := checkpoint.Restore(engine, snap)
		if err != nil {
			return nil, fmt.Errorf("server: restoring checkpoint (lsn %d): %w", snap.LSN, err)
		}
		for _, r := range restored {
			if err := engine.Bind(r.ID, r.Query); err != nil {
				return nil, fmt.Errorf("server: restored query %s: %w", r.ID, err)
			}
			s.queries[r.ID] = &registeredQuery{id: r.ID, sqlText: r.SQL, query: r.Query}
		}
		from = snap.LSN + 1
		s.restoreEpoch(snap.Epoch, snap.EpochHist)
		s.logf("recovery: checkpoint lsn=%d (%d streams, %d queries)",
			snap.LSN, len(snap.Streams), len(snap.Queries))
	}
	wlog, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Options{Policy: policy, FS: fs, SegmentBytes: cfg.WALSegmentBytes})
	if err != nil {
		return nil, err
	}
	if n := wlog.TruncatedBytes(); n > 0 {
		s.logf("recovery: truncated %d torn-tail bytes from the WAL", n)
	}
	replayed := 0
	if err := wlog.Replay(from, func(rec wal.Record) error {
		replayed++
		return s.applyRecord(rec)
	}); err != nil {
		wlog.Close()
		return nil, fmt.Errorf("server: wal replay: %w", err)
	}
	s.logf("recovery: replayed %d wal records (lsn %d..%d)", replayed, from, wlog.LastLSN())
	s.wal.Store(wlog)
	s.ck = ckm
	s.ckEvery = cfg.CheckpointEvery
	return s, nil
}

// applyRecord re-executes one journaled command during recovery, through
// the same code paths live commands use. Recovery is single-threaded, so
// the Exclusive quiesce live commands need is unnecessary here; s.mu is
// taken only around registry mutations.
func (s *Server) applyRecord(rec wal.Record) error {
	payload := string(rec.Payload)
	switch rec.Type {
	case wal.RecStream:
		if _, err := s.applyStream(payload); err != nil {
			return fmt.Errorf("lsn %d (STREAM): %w", rec.LSN, err)
		}
	case wal.RecQuery:
		id, sqlText := payload, ""
		if idx := indexByteSpace(payload); idx >= 0 {
			id, sqlText = payload[:idx], payload[idx+1:]
		}
		s.mu.Lock()
		err := s.applyQueryLocked(id, sqlText, nil)
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("lsn %d (QUERY %s): %w", rec.LSN, id, err)
		}
	case wal.RecInsert, wal.RecInsertBatch:
		batch := rec.Type == wal.RecInsertBatch
		body, reqID := splitReqID(payload)
		streamName, rows, err := parseInsertRows(body, batch)
		if err != nil {
			return fmt.Errorf("lsn %d (INSERT): %w", rec.LSN, err)
		}
		results, err := s.engine.IngestBatch(streamName, rows, nil)
		if err != nil {
			return fmt.Errorf("lsn %d (INSERT): %w", rec.LSN, err)
		}
		emitted := 0
		var pushErrs []string
		for _, qr := range results {
			if qr.Err != nil {
				// The live run hit (and reported) the same per-query error;
				// the partial effects are deterministic, so replay continues.
				s.logf("replay lsn %d: query %s: %v", rec.LSN, qr.ID, qr.Err)
				pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", qr.ID, qr.Err))
			}
			emitted += len(qr.Results)
		}
		if reqID != "" {
			// Rebuild the idempotency window: the deterministic engine makes
			// the recomputed reply bit-identical to the live one, so a retry
			// that arrives after a crash gets the same answer without
			// double-applying.
			var pushErr error
			if len(pushErrs) > 0 {
				sort.Strings(pushErrs)
				pushErr = fmt.Errorf("%s", strings.Join(pushErrs, "; "))
			}
			s.dedup.put(reqID, dedupEntry{
				reply: ingestReply(batch, len(rows), emitted, pushErr),
				lsn:   rec.LSN,
			})
		}
	case wal.RecShed:
		level, err := strconv.Atoi(payload)
		if err != nil {
			return fmt.Errorf("lsn %d (SHED): %w", rec.LSN, err)
		}
		// Restore the accuracy budget at the same point in the insert
		// sequence the live run changed it — RNG consumption downstream
		// depends on it.
		s.engine.SetDegradeLevel(level)
	case wal.RecEpoch:
		return s.applyEpochRecord(rec)
	case wal.RecClose:
		s.mu.Lock()
		err := s.applyCloseLocked(payload)
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("lsn %d (CLOSE): %w", rec.LSN, err)
		}
	default:
		return fmt.Errorf("lsn %d: unknown record type %d", rec.LSN, rec.Type)
	}
	return nil
}

func indexByteSpace(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return i
		}
	}
	return -1
}

// journal appends one record to the WAL without waiting for it to become
// durable; callers pair it with waitDurable(lsn) after releasing whatever
// locks they hold, so concurrent committers share fsyncs (group commit).
// No-op (lsn 0) without durability. Safe under any lock, including the
// engine's sequencing critical section — it touches no server mutex.
func (s *Server) journal(typ wal.RecordType, payload string) (uint64, error) {
	w := s.wal.Load()
	if w == nil {
		return 0, nil
	}
	lsn, err := w.AppendAsync(typ, []byte(payload))
	if err != nil {
		s.logf("wal append: %v", err)
		return 0, fmt.Errorf("wal append failed: %w", err)
	}
	s.sinceCk.Add(1)
	return lsn, nil
}

// waitDurable blocks until lsn is on stable storage (per the fsync
// policy). lsn 0 means "nothing journaled".
func (s *Server) waitDurable(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	w := s.wal.Load()
	if w == nil {
		return nil
	}
	if err := w.WaitDurable(lsn); err != nil {
		return fmt.Errorf("wal sync failed: %w", err)
	}
	return nil
}

// maybeCheckpoint writes a checkpoint when the record cadence is due. It
// quiesces the engine (Exclusive) so the snapshot is a consistent cut: any
// journaled record's pushes complete under the shard locks before
// Exclusive acquires them, so capturing at LastLSN is always safe.
func (s *Server) maybeCheckpoint() {
	if s.ckEvery <= 0 || s.sinceCk.Load() < int64(s.ckEvery) {
		return
	}
	release := s.engine.Exclusive()
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.wal.Load()
	if w == nil || s.ck == nil || s.sinceCk.Load() < int64(s.ckEvery) {
		return
	}
	lsn := w.LastLSN()
	if err := s.checkpointLocked(w, lsn); err != nil {
		// A failed checkpoint is not fatal: the WAL still holds the full
		// suffix after the previous checkpoint.
		s.logf("checkpoint at lsn %d: %v", lsn, err)
		return
	}
	s.sinceCk.Store(0)
}

// checkpointLocked captures engine + query state as of lsn, persists it,
// and drops WAL segments the snapshot covers. Caller holds s.mu and has
// the engine quiesced (Exclusive, or single-threaded shutdown).
func (s *Server) checkpointLocked(w *wal.Log, lsn uint64) error {
	defs := make([]checkpoint.QueryDef, 0, len(s.queries))
	for _, rq := range s.queries {
		defs = append(defs, checkpoint.QueryDef{ID: rq.id, SQL: rq.sqlText, Query: rq.query})
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	snap, err := checkpoint.Capture(s.engine, lsn, defs)
	if err != nil {
		return err
	}
	// Post-failover, the snapshot must carry the epoch state: truncation
	// below may drop the RecEpoch records a recovered primary needs to
	// fence stale rejoiners. Pre-failover (epoch 1) the fields stay absent,
	// keeping checkpoint bytes identical to earlier releases.
	if e, hist := s.epochSnapshot(); e > 1 {
		snap.Epoch, snap.EpochHist = e, hist
	}
	if err := s.ck.Save(snap); err != nil {
		return err
	}
	if err := w.TruncateThrough(lsn); err != nil {
		s.logf("wal truncate through %d: %v", lsn, err)
	}
	s.logf("checkpoint: lsn=%d queries=%d", lsn, len(defs))
	return nil
}

// finalizeDurable writes a shutdown checkpoint and closes the WAL. Safe to
// call more than once.
func (s *Server) finalizeDurable() error {
	w := s.wal.Swap(nil)
	if w == nil {
		return nil
	}
	release := s.engine.Exclusive()
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if lsn := w.LastLSN(); lsn > 0 {
		err = s.checkpointLocked(w, lsn)
	}
	if serr := w.Sync(); err == nil {
		err = serr
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return err
}
