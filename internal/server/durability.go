package server

// Durability wiring: NewDurable opens the engine's DataDir, loads the
// latest valid checkpoint, deterministically replays the write-ahead-log
// suffix through the same apply paths live commands use, and then turns on
// journaling. Because the engine RNGs are seeded from the engine
// configuration and every consumer of randomness is restored (checkpointed
// RNG states) or re-executed (WAL replay), a recovered server is
// bit-identical to one that never crashed: the same inserts produce the
// same results at any Workers setting.

import (
	"fmt"
	"log"
	"path/filepath"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/wal"
)

// NewDurable returns a server honoring the engine's durability
// configuration. With Config.DataDir empty it behaves exactly like New;
// otherwise it recovers state from <DataDir>/checkpoints and <DataDir>/wal
// and journals every subsequent state-changing command. Recovered queries
// are detached (no owning connection); clients re-acquire result delivery
// with ATTACH <id>.
func NewDurable(engine *core.Engine, logger *log.Logger) (*Server, error) {
	s, err := New(engine, logger)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config()
	if cfg.DataDir == "" {
		return s, nil
	}
	policy, err := wal.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, err
	}
	ckm, err := checkpoint.NewManager(filepath.Join(cfg.DataDir, "checkpoints"))
	if err != nil {
		return nil, err
	}
	snap, err := ckm.LoadLatest()
	if err != nil {
		return nil, err
	}
	from := uint64(1)
	if snap != nil {
		restored, err := checkpoint.Restore(engine, snap)
		if err != nil {
			return nil, fmt.Errorf("server: restoring checkpoint (lsn %d): %w", snap.LSN, err)
		}
		for _, r := range restored {
			streams, err := sourceStreams(r.SQL)
			if err != nil {
				return nil, fmt.Errorf("server: restored query %s: %w", r.ID, err)
			}
			s.queries[r.ID] = &registeredQuery{
				id: r.ID, sqlText: r.SQL, query: r.Query, streams: streams,
			}
		}
		from = snap.LSN + 1
		s.logf("recovery: checkpoint lsn=%d (%d streams, %d queries)",
			snap.LSN, len(snap.Streams), len(snap.Queries))
	}
	wlog, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Options{Policy: policy})
	if err != nil {
		return nil, err
	}
	if n := wlog.TruncatedBytes(); n > 0 {
		s.logf("recovery: truncated %d torn-tail bytes from the WAL", n)
	}
	replayed := 0
	if err := wlog.Replay(from, func(rec wal.Record) error {
		replayed++
		return s.applyRecord(rec)
	}); err != nil {
		wlog.Close()
		return nil, fmt.Errorf("server: wal replay: %w", err)
	}
	s.logf("recovery: replayed %d wal records (lsn %d..%d)", replayed, from, wlog.LastLSN())
	s.mu.Lock()
	s.wal = wlog
	s.ck = ckm
	s.ckEvery = cfg.CheckpointEvery
	s.mu.Unlock()
	return s, nil
}

// applyRecord re-executes one journaled command during recovery, through
// the same code paths live commands use.
func (s *Server) applyRecord(rec wal.Record) error {
	payload := string(rec.Payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch rec.Type {
	case wal.RecStream:
		if _, err := s.applyStreamLocked(payload); err != nil {
			return fmt.Errorf("lsn %d (STREAM): %w", rec.LSN, err)
		}
	case wal.RecQuery:
		id, sqlText := payload, ""
		if idx := indexByteSpace(payload); idx >= 0 {
			id, sqlText = payload[:idx], payload[idx+1:]
		}
		if err := s.applyQueryLocked(id, sqlText, nil); err != nil {
			return fmt.Errorf("lsn %d (QUERY %s): %w", rec.LSN, id, err)
		}
	case wal.RecInsert:
		_, _, pushErr, err := s.applyInsertLocked(payload, false)
		if err != nil {
			return fmt.Errorf("lsn %d (INSERT): %w", rec.LSN, err)
		}
		if pushErr != nil {
			// The live run hit (and reported) the same per-query error;
			// the partial effects are deterministic, so replay continues.
			s.logf("replay lsn %d: %v", rec.LSN, pushErr)
		}
	case wal.RecClose:
		if err := s.applyCloseLocked(payload); err != nil {
			return fmt.Errorf("lsn %d (CLOSE): %w", rec.LSN, err)
		}
	default:
		return fmt.Errorf("lsn %d: unknown record type %d", rec.LSN, rec.Type)
	}
	return nil
}

func indexByteSpace(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return i
		}
	}
	return -1
}

// journalLocked appends one record to the WAL and checkpoints when the
// cadence is due. No-op without durability. Caller holds s.mu.
func (s *Server) journalLocked(typ wal.RecordType, payload string) error {
	if s.wal == nil {
		return nil
	}
	lsn, err := s.wal.Append(typ, []byte(payload))
	if err != nil {
		s.logf("wal append: %v", err)
		return fmt.Errorf("wal append failed: %w", err)
	}
	s.sinceCk++
	if s.ckEvery > 0 && s.sinceCk >= s.ckEvery {
		if err := s.checkpointLocked(lsn); err != nil {
			// A failed checkpoint is not fatal: the WAL still holds the
			// full suffix after the previous checkpoint.
			s.logf("checkpoint at lsn %d: %v", lsn, err)
		} else {
			s.sinceCk = 0
		}
	}
	return nil
}

// checkpointLocked captures engine + query state as of lsn, persists it,
// and drops WAL segments the snapshot covers. Caller holds s.mu.
func (s *Server) checkpointLocked(lsn uint64) error {
	defs := make([]checkpoint.QueryDef, 0, len(s.queries))
	for _, rq := range s.queries {
		defs = append(defs, checkpoint.QueryDef{ID: rq.id, SQL: rq.sqlText, Query: rq.query})
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	snap, err := checkpoint.Capture(s.engine, lsn, defs)
	if err != nil {
		return err
	}
	if err := s.ck.Save(snap); err != nil {
		return err
	}
	if err := s.wal.TruncateThrough(lsn); err != nil {
		s.logf("wal truncate through %d: %v", lsn, err)
	}
	s.logf("checkpoint: lsn=%d queries=%d", lsn, len(defs))
	return nil
}

// finalizeDurable writes a shutdown checkpoint and closes the WAL. Safe to
// call more than once.
func (s *Server) finalizeDurable() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	var err error
	if lsn := s.wal.LastLSN(); lsn > 0 {
		err = s.checkpointLocked(lsn)
	}
	if serr := s.wal.Sync(); err == nil {
		err = serr
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}
