package server

import "time"

// Options tunes the serving path's robustness limits. The zero value keeps
// every protection at its default; Normalize fills those in. All fields are
// transport-level: none of them changes query results, only how misbehaving
// or overloaded connections are handled.
type Options struct {
	// IdleTimeout closes a connection that sends no complete command for
	// that long (default 5m; negative disables). It bounds how long a dead
	// peer can pin a connection slot.
	IdleTimeout time.Duration
	// WriteTimeout bounds one write (reply or DATA line) to a client
	// (default 30s; negative disables). A client that stops reading cannot
	// block a handler forever.
	WriteTimeout time.Duration
	// MaxConns caps concurrently open client connections (default 1024;
	// negative means unlimited). Connections over the cap receive one ERR
	// line and are closed — admission control, not silent drops.
	MaxConns int
	// OutboxLines bounds the per-connection queue of DATA lines pushed by
	// OTHER connections' inserts (default 4096; negative disables the
	// bound). A subscriber that cannot keep up is disconnected when its
	// outbox overflows, so one slow client never blocks ingest. Delivery to
	// the inserting connection itself stays synchronous (DATA precedes the
	// OK reply on the same connection).
	OutboxLines int
	// DrainTimeout is how long Shutdown waits for in-flight connections to
	// finish before force-closing them (default 5s; 0 closes immediately).
	DrainTimeout time.Duration
	// DedupWindow caps remembered idempotent request IDs (default 4096).
	// Oldest entries are evicted first; a retry arriving after eviction
	// re-executes, so clients should bound retry horizons accordingly.
	DedupWindow int
	// ReadOnly rejects state-changing commands (STREAM, QUERY, INSERT,
	// INSERTBATCH, CLOSE, SHED <level>) so the server can serve as a
	// replication follower: its state mutates only through ApplyReplicated.
	// Read traffic (STATS, METRICS, EXPLAIN, ATTACH, SUBSCRIBE) still
	// works. Flip at runtime with SetReadOnly (failover promotion).
	ReadOnly bool
	// Shed enables the accuracy-aware overload controller (see shed.go).
	Shed ShedConfig
}

const (
	defaultIdleTimeout  = 5 * time.Minute
	defaultWriteTimeout = 30 * time.Second
	defaultMaxConns     = 1024
	defaultOutboxLines  = 4096
	defaultDrainTimeout = 5 * time.Second
	defaultDedupWindow  = 4096
)

// Normalize fills defaults: zero means "default", negative means
// "disabled" for the fields that support disabling.
func (o Options) Normalize() Options {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = defaultIdleTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.MaxConns == 0 {
		o.MaxConns = defaultMaxConns
	}
	if o.OutboxLines == 0 {
		o.OutboxLines = defaultOutboxLines
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = defaultDrainTimeout
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = defaultDedupWindow
	}
	o.Shed = o.Shed.normalize()
	return o
}

// SetOptions replaces the server's robustness options. Call before Serve.
func (s *Server) SetOptions(o Options) {
	s.opts = o.Normalize()
	s.readOnly.Store(o.ReadOnly)
}
