package server

// Crash-injection tests: a durable server is killed mid-stream (no final
// checkpoint, no WAL close — mimicking a process crash), its on-disk state
// is optionally damaged the way real crashes damage it (torn WAL tail,
// half-written checkpoint), and a fresh server recovers from the data
// directory. The recovered server must then produce byte-identical DATA
// payloads to a reference server that ran the whole command stream
// uninterrupted — at any -workers setting, with the RNG-dependent
// bootstrap accuracy method.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func durableConfig(dataDir string, workers, ckEvery int) core.Config {
	return core.Config{
		Level:           0.9,
		Method:          core.AccuracyBootstrap,
		Seed:            5,
		Workers:         workers,
		DataDir:         dataDir,
		FsyncPolicy:     "always",
		CheckpointEvery: ckEvery,
	}
}

func startDurableServer(t testing.TB, cfg core.Config) (*Server, string) {
	t.Helper()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(eng, nil)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	return s, addr.String()
}

// crash kills the server the way a process death would: the listener and
// connections drop, but no final checkpoint is written and the WAL is
// abandoned without a clean close. Appends were already flushed (and, with
// the "always" policy, fsynced), so the on-disk WAL is exactly what a real
// crash would leave behind.
func crash(s *Server) {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for _, nc := range s.conns {
		conns = append(conns, nc)
	}
	s.wal.Store(nil) // journaling (incl. disconnect-driven CLOSE records) stops here
	s.ck = nil
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.connWG.Wait()
}

type tclient struct {
	t  testing.TB
	c  net.Conn
	sc *bufio.Scanner
}

func dialServer(t testing.TB, addr string) *tclient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return &tclient{t: t, c: c, sc: sc}
}

// cmd sends one command and reads to its OK/ERR reply, collecting any DATA
// lines delivered before it.
func (tc *tclient) cmd(line string) (reply string, data []string) {
	tc.t.Helper()
	if _, err := fmt.Fprintf(tc.c, "%s\n", line); err != nil {
		tc.t.Fatalf("send %q: %v", line, err)
	}
	for tc.sc.Scan() {
		got := tc.sc.Text()
		if strings.HasPrefix(got, "DATA ") {
			data = append(data, got)
			continue
		}
		return got, data
	}
	tc.t.Fatalf("connection closed waiting for reply to %q (scan err %v)", line, tc.sc.Err())
	return "", nil
}

func (tc *tclient) mustOK(line string) []string {
	tc.t.Helper()
	reply, data := tc.cmd(line)
	if !strings.HasPrefix(reply, "OK") {
		tc.t.Fatalf("%q: got %q, want OK", line, reply)
	}
	return data
}

const (
	crashStreamCmd = "STREAM temps key val:dist"
	crashQueryCmd  = "QUERY q1 SELECT AVG(val) FROM temps WINDOW 3 ROWS"
)

func crashInsertCmd(i int) string {
	return fmt.Sprintf("INSERT temps %d N(%d.5,2.25,%d)", i, 10+i, 20+i)
}

// runReference executes the full command stream on one uninterrupted
// server and returns every DATA line plus the final stats reply.
func runReference(t *testing.T, workers, total int) (data []string, stats string) {
	t.Helper()
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, workers, 1024))
	defer s.Close()
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	for i := 0; i < total; i++ {
		data = append(data, tc.mustOK(crashInsertCmd(i))...)
	}
	reply, _ := tc.cmd("STATS q1")
	return data, reply
}

// runCrashed runs the first phase1 inserts, crashes the server, lets
// damage inject faults into the data directory, recovers a fresh server at
// recoverWorkers, re-attaches, and runs the remaining inserts. Returned
// data/stats cover only the post-recovery phase.
func runCrashed(t *testing.T, phase1, total, crashWorkers, recoverWorkers, ckEvery int,
	damage func(t *testing.T, dataDir string)) (data []string, stats string) {
	t.Helper()
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, crashWorkers, ckEvery))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	for i := 0; i < phase1; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	crash(s)
	tc.c.Close()
	if damage != nil {
		damage(t, dir)
	}

	s2, addr2 := startDurableServer(t, durableConfig(dir, recoverWorkers, ckEvery))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	tc2.mustOK("ATTACH q1")
	for i := phase1; i < total; i++ {
		data = append(data, tc2.mustOK(crashInsertCmd(i))...)
	}
	reply, _ := tc2.cmd("STATS q1")
	return data, reply
}

func compareTail(t *testing.T, refData, gotData []string, refStats, gotStats string) {
	t.Helper()
	if len(gotData) == 0 || len(gotData) > len(refData) {
		t.Fatalf("recovered run emitted %d DATA lines, reference %d", len(gotData), len(refData))
	}
	tail := refData[len(refData)-len(gotData):]
	for i := range gotData {
		if gotData[i] != tail[i] {
			t.Fatalf("DATA line %d diverged after recovery:\nreference: %s\nrecovered: %s",
				i, tail[i], gotData[i])
		}
	}
	if gotStats != refStats {
		t.Fatalf("stats diverged after recovery: reference %q, recovered %q", refStats, gotStats)
	}
}

// TestCrashRecoveryDeterministic kills the server mid-stream and checks
// the recovered server continues bit-identically, across worker counts and
// across both recovery paths (checkpoint+WAL suffix, WAL-only).
func TestCrashRecoveryDeterministic(t *testing.T) {
	const phase1, total = 5, 10
	refData, refStats := runReference(t, 1, total)
	if len(refData) != total-2 {
		t.Fatalf("reference emitted %d DATA lines, want %d (window 3 over %d inserts)",
			len(refData), total-2, total)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, ckEvery := range []int{3, 1024} {
			name := fmt.Sprintf("workers=%d/ckEvery=%d", workers, ckEvery)
			t.Run(name, func(t *testing.T) {
				data, stats := runCrashed(t, phase1, total, workers, workers, ckEvery, nil)
				compareTail(t, refData, data, refStats, stats)
			})
		}
	}
	// Crash at one worker count, recover at another: durability state must
	// be worker-count independent.
	t.Run("workers=4-then-1", func(t *testing.T) {
		data, stats := runCrashed(t, phase1, total, 4, 1, 3, nil)
		compareTail(t, refData, data, refStats, stats)
	})
}

// TestCrashRecoveryTornAppend simulates dying mid-append: garbage and
// partial frames sit past the last durable record. Recovery truncates the
// tail and continues deterministically.
func TestCrashRecoveryTornAppend(t *testing.T) {
	const phase1, total = 5, 10
	refData, refStats := runReference(t, 2, total)
	data, stats := runCrashed(t, phase1, total, 2, 2, 1024, func(t *testing.T, dataDir string) {
		segs, err := filepath.Glob(filepath.Join(dataDir, "wal", "*.wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no wal segments: %v", err)
		}
		f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A torn frame: plausible header, missing payload, then noise.
		if _, err := f.Write([]byte{40, 0, 0, 0, 0xaa, 0xbb, 0xcc, 0xdd, 0x01, 0x02}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
	compareTail(t, refData, data, refStats, stats)
}

// TestCrashRecoveryCorruptCheckpoint simulates dying mid-snapshot: the
// newest checkpoint file is unreadable garbage. Recovery must fall back to
// an older valid checkpoint (or none) plus a longer WAL replay, and still
// match the reference bit-for-bit.
func TestCrashRecoveryCorruptCheckpoint(t *testing.T) {
	const phase1, total = 6, 10
	refData, refStats := runReference(t, 2, total)
	data, stats := runCrashed(t, phase1, total, 2, 2, 2, func(t *testing.T, dataDir string) {
		ckDir := filepath.Join(dataDir, "checkpoints")
		cks, err := filepath.Glob(filepath.Join(ckDir, "ckpt-*.ck"))
		if err != nil || len(cks) == 0 {
			t.Fatalf("no checkpoints written (ckEvery=2, %d inserts): %v", phase1, err)
		}
		newest := cks[len(cks)-1]
		if err := os.WriteFile(newest, []byte("ASDBCKP1 half-written snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		// The WAL suffix needed to rebuild from the older checkpoint must
		// still exist; TruncateThrough keeps whole segments, and with the
		// default 4MiB segment size nothing has rotated away.
	})
	compareTail(t, refData, data, refStats, stats)
}

// TestRecoveredQueriesAreDetached verifies results of recovered queries
// are not delivered until a client ATTACHes, and that a second client
// cannot steal an owned query.
func TestRecoveredQueriesAreDetached(t *testing.T) {
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 1, 1024))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	for i := 0; i < 4; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	crash(s)
	tc.c.Close()

	s2, addr2 := startDurableServer(t, durableConfig(dir, 1, 1024))
	defer s2.Close()
	a := dialServer(t, addr2)
	defer a.c.Close()
	// Detached: the insert is applied (STATS will show it) but no DATA line
	// arrives on any connection.
	if data := a.mustOK(crashInsertCmd(4)); len(data) != 0 {
		t.Fatalf("detached query delivered %d DATA lines, want 0", len(data))
	}
	a.mustOK("ATTACH q1")
	if data := a.mustOK(crashInsertCmd(5)); len(data) != 1 {
		t.Fatalf("attached query delivered %d DATA lines, want 1", len(data))
	}
	b := dialServer(t, addr2)
	defer b.c.Close()
	if reply, _ := b.cmd("ATTACH q1"); !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("second client stole an owned query: %q", reply)
	}
}

// TestGracefulShutdownState verifies the graceful-shutdown path: the
// stream schema survives the restart, while the owned query was dropped on
// client disconnect (a journaled CLOSE) and so does not come back.
func TestGracefulShutdownState(t *testing.T) {
	dir := t.TempDir()
	s, addr := startDurableServer(t, durableConfig(dir, 2, 1024))
	tc := dialServer(t, addr)
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)
	for i := 0; i < 5; i++ {
		tc.mustOK(crashInsertCmd(i))
	}
	tc.c.Close()
	// Graceful path: drains conns, writes the final checkpoint, closes the
	// WAL. Closing the client dropped q1 (it was owned) with a journaled
	// CLOSE record.
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2, addr2 := startDurableServer(t, durableConfig(dir, 2, 1024))
	defer s2.Close()
	tc2 := dialServer(t, addr2)
	defer tc2.c.Close()
	if reply, _ := tc2.cmd("ATTACH q1"); !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("q1 should have been dropped on disconnect, got %q", reply)
	}
	if reply, _ := tc2.cmd(crashStreamCmd); !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("stream temps should have survived the restart (duplicate expected), got %q", reply)
	}
	tc2.mustOK(crashQueryCmd)
	if data := tc2.mustOK(crashInsertCmd(5)); len(data) != 0 {
		t.Fatalf("fresh query over 3-row window emitted %d results after 1 insert", len(data))
	}
}
