package server

// Serving-path hardening tests (ISSUE 5, tentpole part 2 + satellites):
// admission control, idle timeouts, per-connection panic containment,
// slow-subscriber outboxes, accept retry, torn-request rejection, the shed
// controller's degrade/recover cycle, and the dedup-window plumbing.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// startServerOpts starts an in-memory server with explicit robustness
// options and returns it with its address.
func startServerOpts(t *testing.T, o Options) (*Server, string) {
	t.Helper()
	eng, err := core.NewEngine(core.Config{Method: core.AccuracyBootstrap, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetOptions(o)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestMaxConnsAdmission(t *testing.T) {
	_, addr := startServerOpts(t, Options{MaxConns: 2})
	rejected := mConnsRejected.Value()
	a := dialServer(t, addr)
	defer a.c.Close()
	b := dialServer(t, addr)
	defer b.c.Close()
	a.mustOK("PING")
	b.mustOK("PING")

	// Third connection: one clean ERR line, then close.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatalf("rejected conn: %v", err)
	}
	if want := "ERR server at connection limit (2)\n"; line != want {
		t.Fatalf("rejected conn got %q, want %q", line, want)
	}
	c.Close()
	if got := mConnsRejected.Value() - rejected; got != 1 {
		t.Fatalf("conns_rejected delta = %d, want 1", got)
	}

	// Freeing a slot re-admits.
	a.mustOK("QUIT")
	a.c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		d, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		d.SetReadDeadline(time.Now().Add(time.Second))
		fmt.Fprintf(d, "PING\n")
		line, err := bufio.NewReader(d).ReadString('\n')
		d.Close()
		if err == nil && line == "OK pong\n" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: line=%q err=%v", line, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestIdleTimeout(t *testing.T) {
	_, addr := startServerOpts(t, Options{IdleTimeout: 50 * time.Millisecond})
	idle := mIdleTimeouts.Value()
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK("PING")
	// Stay silent past the timeout: the server must close the connection.
	tc.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := tc.c.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection stayed open")
	}
	if got := mIdleTimeouts.Value() - idle; got != 1 {
		t.Fatalf("idle_timeouts delta = %d, want 1", got)
	}
}

func TestConnPanicRecoveryIsolation(t *testing.T) {
	testHookDispatch = func(verb string) {
		if verb == "PANICME" {
			panic("injected handler panic")
		}
	}
	defer func() { testHookDispatch = nil }()
	_, addr := startServerOpts(t, Options{})
	panics := mConnPanics.Value()

	victim := dialServer(t, addr)
	bystander := dialServer(t, addr)
	defer bystander.c.Close()
	bystander.mustOK("PING")

	// The panicking command kills only its own connection: no reply, EOF.
	fmt.Fprintf(victim.c, "PANICME\n")
	victim.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := victim.c.Read(make([]byte, 1)); err == nil {
		t.Fatal("panicking connection stayed open")
	}
	victim.c.Close()
	if got := mConnPanics.Value() - panics; got != 1 {
		t.Fatalf("conn_panics delta = %d, want 1", got)
	}
	// Everyone else keeps working.
	bystander.mustOK("PING")
	bystander.mustOK(crashStreamCmd)
}

// TestSlowClientOutboxOverflow unit-tests the bounded outbox: a subscriber
// whose queue is full is disconnected, not waited on.
func TestSlowClientOutboxOverflow(t *testing.T) {
	drops := mSlowClientDrops.Value()
	p1, p2 := net.Pipe()
	defer p2.Close()
	c := &conn{id: 1, c: p1, w: bufio.NewWriter(p1), outbox: make(chan *frame, 2)}
	line := func() *frame {
		f := newFrame()
		f.buf = append(f.buf, "DATA q1 {}"...)
		return f
	}
	if !c.queueFrame(line()) || !c.queueFrame(line()) {
		t.Fatal("queueFrame rejected frames below capacity")
	}
	if c.queueFrame(line()) {
		t.Fatal("queueFrame accepted a frame beyond capacity")
	}
	if !c.dead.Load() {
		t.Fatal("overflowing conn not marked dead")
	}
	// The conn was closed, so its handler unblocks promptly.
	if _, err := p1.Write([]byte("x")); err == nil {
		t.Fatal("overflowing conn not closed")
	}
	if c.queueFrame(line()) {
		t.Fatal("queueFrame delivered to a dead conn")
	}
	if got := mSlowClientDrops.Value() - drops; got != 1 {
		t.Fatalf("slow_client_drops delta = %d, want 1", got)
	}
}

// flakyListener fails its first n Accepts with a transient error.
type flakyListener struct {
	net.Listener
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails > 0 {
		l.fails--
		return nil, errors.New("accept: resource temporarily unavailable")
	}
	return l.Listener.Accept()
}

func TestAcceptTransientErrorRetry(t *testing.T) {
	eng, err := core.NewEngine(core.Config{Method: core.AccuracyAnalytical})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	retries := mAcceptRetries.Value()
	srv.mu.Lock()
	srv.ln = &flakyListener{Listener: srv.ln, fails: 3}
	srv.mu.Unlock()
	go srv.Serve()
	defer srv.Close()

	// Serve must absorb the transient failures (5+10+20ms backoff) and then
	// accept normally.
	tc := dialServer(t, addr.String())
	defer tc.c.Close()
	tc.mustOK("PING")
	if got := mAcceptRetries.Value() - retries; got != 3 {
		t.Fatalf("accept_retries delta = %d, want 3", got)
	}
}

// TestTornRequestNotExecuted checks the server refuses to execute a final
// unterminated line: a request torn mid-wire (peer died before the newline)
// could otherwise parse as a valid, shorter command and misapply.
func TestTornRequestNotExecuted(t *testing.T) {
	_, addr := startServerOpts(t, Options{})
	obs := dialServer(t, addr)
	defer obs.c.Close()
	obs.mustOK(crashStreamCmd)
	obs.mustOK(crashQueryCmd)
	obs.mustOK(crashInsertCmd(0))

	torn := dialServer(t, addr)
	// A complete command proves the connection works, then a torn one.
	torn.mustOK(crashInsertCmd(1))
	if _, err := fmt.Fprintf(torn.c, "INSERT temps 2 N(12.5,2.25,22)"); err != nil {
		t.Fatal(err)
	}
	torn.c.Close() // dies before the newline

	// The torn insert must not have applied: In stays at 2.
	deadline := time.Now().Add(2 * time.Second)
	for {
		reply, _ := obs.cmd("STATS q1")
		if in := statsIn(t, reply); in == 2 {
			time.Sleep(20 * time.Millisecond) // grace: would a late apply land?
			reply, _ = obs.cmd("STATS q1")
			if in := statsIn(t, reply); in != 2 {
				t.Fatalf("torn request applied: In=%d, want 2", in)
			}
			return
		} else if in > 2 {
			t.Fatalf("torn request applied: In=%d, want 2", in)
		}
		if time.Now().After(deadline) {
			t.Fatal("inserts never reached In=2")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShedControllerDegradesAndRecovers drives the controller through a
// full cycle: sustained load above the (tiny) latency target raises the
// degrade level; sustained idleness walks it back to zero.
func TestShedControllerDegradesAndRecovers(t *testing.T) {
	_, addr := startServerOpts(t, Options{Shed: ShedConfig{
		Enabled:      true,
		Interval:     10 * time.Millisecond,
		TargetP99:    time.Nanosecond, // any real push overshoots
		RecoverAfter: 2,
		MinEvals:     1,
	}})
	tc := dialServer(t, addr)
	defer tc.c.Close()
	tc.mustOK(crashStreamCmd)
	tc.mustOK(crashQueryCmd)

	level := func() int {
		reply, _ := tc.cmd("SHED")
		n := -1
		fmt.Sscanf(reply, "OK shed level=%d", &n)
		return n
	}

	// Overload phase: keep pushing until the controller degrades.
	deadline := time.Now().Add(5 * time.Second)
	i := 0
	for level() == 0 {
		tc.mustOK(crashInsertCmd(i))
		i++
		if time.Now().After(deadline) {
			t.Fatal("controller never degraded under sustained load")
		}
	}
	if l := level(); l < 1 || l > core.MaxDegradeLevel {
		t.Fatalf("degraded level = %d, out of range", l)
	}

	// Recovery phase: go idle; each RecoverAfter healthy intervals shed one
	// level, so full recovery takes a few hundred ms at most.
	deadline = time.Now().Add(5 * time.Second)
	for level() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never recovered; level=%d", level())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShedWidensIntervals pins the accuracy story: the same insert sequence
// evaluated at degrade level 3 must report wider (or equal) confidence
// intervals than at level 0 — shedding trades CI width, never correctness
// of the point estimate.
func TestShedWidensIntervals(t *testing.T) {
	// width sums the mean-interval widths over every emitted window, so one
	// lucky narrow draw cannot flip the comparison.
	width := func(levelCmd string) float64 {
		_, addr := startServerOpts(t, Options{})
		tc := dialServer(t, addr)
		defer tc.c.Close()
		tc.mustOK(crashStreamCmd)
		if levelCmd != "" {
			tc.mustOK(levelCmd)
		}
		tc.mustOK(crashQueryCmd)
		sum, windows := 0.0, 0
		for i := 0; i < 8; i++ {
			for _, line := range tc.mustOK(crashInsertCmd(i)) {
				idx := strings.Index(line, `"mean_interval":{"lo":`)
				if idx < 0 {
					t.Fatalf("no mean interval in %q", line)
				}
				var lo, hi float64
				if _, err := fmt.Sscanf(line[idx:],
					`"mean_interval":{"lo":%g,"hi":%g`, &lo, &hi); err != nil {
					t.Fatalf("parse interval in %q: %v", line, err)
				}
				sum += hi - lo
				windows++
			}
		}
		if windows == 0 {
			t.Fatal("no DATA emitted")
		}
		return sum
	}
	full := width("")
	w1, w2, w3 := width("SHED 1"), width("SHED 2"), width("SHED 3")
	if !(full < w1 && w1 < w2 && w2 < w3) {
		t.Fatalf("interval widths not increasing with degrade level: %g, %g, %g, %g",
			full, w1, w2, w3)
	}
}

func TestSplitReqID(t *testing.T) {
	cases := []struct {
		in, payload, id string
	}{
		{"temps 1 N(1,1,5)", "temps 1 N(1,1,5)", ""},
		{"temps 1 N(1,1,5) @r1", "temps 1 N(1,1,5)", "r1"},
		{"temps 1 N(1,1,5) @c9f-12", "temps 1 N(1,1,5)", "c9f-12"},
		{"temps 1 N(1,1,5) @", "temps 1 N(1,1,5) @", ""},
		{"@solo", "@solo", ""},
		{"a @x @y", "a @x", "y"},
	}
	for _, c := range cases {
		payload, id := splitReqID(c.in)
		if payload != c.payload || id != c.id {
			t.Errorf("splitReqID(%q) = (%q, %q), want (%q, %q)",
				c.in, payload, id, c.payload, c.id)
		}
	}
}

func TestDedupWindowEviction(t *testing.T) {
	d := newDedupWindow(2)
	d.put("a", dedupEntry{reply: "OK a"})
	d.put("b", dedupEntry{reply: "OK b"})
	d.put("c", dedupEntry{reply: "OK c"}) // evicts a
	if _, ok := d.get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if e, ok := d.get("b"); !ok || e.reply != "OK b" {
		t.Fatalf("entry b lost: %v %v", e, ok)
	}
	if e, ok := d.get("c"); !ok || e.reply != "OK c" {
		t.Fatalf("entry c lost: %v %v", e, ok)
	}
	// Re-putting an existing id updates in place, no duplicate FIFO slot.
	d.put("b", dedupEntry{reply: "OK b2"})
	if e, _ := d.get("b"); e.reply != "OK b2" {
		t.Fatalf("update in place failed: %q", e.reply)
	}
	if n := d.len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	// Zero-capacity window is a no-op (dedup disabled).
	z := newDedupWindow(0)
	z.put("x", dedupEntry{})
	if _, ok := z.get("x"); ok || z.len() != 0 {
		t.Fatal("zero-capacity window stored an entry")
	}
}

// TestClientBackoffDeterministic pins the retry backoff shape: seeded
// clients produce identical jitter sequences within [d/2, d].
func TestClientBackoffDeterministic(t *testing.T) {
	mk := func() *Client {
		return &Client{opts: DialOptions{
			RetryBase: 10 * time.Millisecond,
			RetryMax:  80 * time.Millisecond,
			Seed:      7,
		}.normalize(), rng: 7}
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := a.backoffLocked(attempt), b.backoffLocked(attempt)
		if da != db {
			t.Fatalf("attempt %d: %v != %v", attempt, da, db)
		}
		base := 10 * time.Millisecond << (attempt - 1)
		if base > 80*time.Millisecond || base <= 0 {
			base = 80 * time.Millisecond
		}
		if da < base/2 || da > base {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, da, base/2, base)
		}
	}
}
