package dist

import (
	"math"
	"testing"
)

func TestBetaValidationAndMoments(t *testing.T) {
	if _, err := NewBeta(0, 1); err == nil {
		t.Error("α=0: want error")
	}
	if _, err := NewBeta(1, -1); err == nil {
		t.Error("β<0: want error")
	}
	b, err := NewBeta(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Beta mean", b.Mean(), 0.4, 1e-12)
	approx(t, "Beta var", b.Variance(), 2.0*3/(25*6), 1e-12)
	// Beta(1,1) is Uniform(0,1).
	u, _ := NewBeta(1, 1)
	for _, x := range []float64{0.1, 0.5, 0.9} {
		approx(t, "Beta(1,1) CDF", u.CDF(x), x, 1e-9)
	}
	if u.CDF(-1) != 0 || u.CDF(2) != 1 {
		t.Error("Beta CDF boundaries wrong")
	}
}

func TestBetaQuantileAndSample(t *testing.T) {
	b, _ := NewBeta(2, 5)
	for _, p := range []float64{0.05, 0.5, 0.95} {
		x := b.Quantile(p)
		approx(t, "Beta roundtrip", b.CDF(x), p, 1e-8)
	}
	r := NewRand(21)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := b.Sample(r)
		if x < 0 || x > 1 {
			t.Fatalf("Beta sample %v outside [0,1]", x)
		}
		sum += x
	}
	approx(t, "Beta sample mean", sum/n, b.Mean(), 0.01)
}

func TestBetaPosterior(t *testing.T) {
	// 8 successes in 20 trials → Beta(9, 13); mean 9/22.
	b, err := BetaPosterior(8, 20)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "posterior mean", b.Mean(), 9.0/22, 1e-12)
	// The central 90% credible interval roughly matches Lemma 1's Wald
	// interval for p̂ = 0.4, n = 20 (both ≈ [0.22, 0.58], Example 2).
	lo, hi := b.Quantile(0.05), b.Quantile(0.95)
	if lo < 0.15 || lo > 0.3 || hi < 0.5 || hi > 0.65 {
		t.Errorf("credible interval [%g, %g] far from Example 2's [0.22, 0.58]", lo, hi)
	}
	if _, err := BetaPosterior(-1, 5); err == nil {
		t.Error("k<0: want error")
	}
	if _, err := BetaPosterior(6, 5); err == nil {
		t.Error("k>n: want error")
	}
}

func TestStudentTValidationAndMoments(t *testing.T) {
	if _, err := NewStudentT(0, 0, 1); err == nil {
		t.Error("ν=0: want error")
	}
	if _, err := NewStudentT(5, 0, 0); err == nil {
		t.Error("scale=0: want error")
	}
	st, err := NewStudentT(5, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t mean", st.Mean(), 10, 1e-12)
	approx(t, "t var", st.Variance(), 4*5.0/3, 1e-12)
	// Undefined moments.
	heavy, _ := NewStudentT(1, 0, 1)
	if !math.IsNaN(heavy.Mean()) {
		t.Error("ν=1 mean should be NaN")
	}
	mid, _ := NewStudentT(1.5, 0, 1)
	if !math.IsInf(mid.Variance(), 1) {
		t.Error("1<ν≤2 variance should be +Inf")
	}
}

func TestStudentTQuantileAndSample(t *testing.T) {
	st, _ := NewStudentT(9, 71.1, 2.7986)
	// Lemma 2 / Example 3: the 5th and 95th percentiles are the paper's
	// interval endpoints [65.97, 76.23].
	approx(t, "t q05", st.Quantile(0.05), 65.97, 0.01)
	approx(t, "t q95", st.Quantile(0.95), 76.23, 0.01)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		approx(t, "t roundtrip", st.CDF(st.Quantile(p)), p, 1e-9)
	}
	r := NewRand(22)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += st.Sample(r)
	}
	approx(t, "t sample mean", sum/n, 71.1, 0.05)
}

func TestMeanPosterior(t *testing.T) {
	// Example 3's statistics.
	st, err := MeanPosterior(71.1, 8.85, 10)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "posterior q05", st.Quantile(0.05), 65.97, 0.02)
	approx(t, "posterior q95", st.Quantile(0.95), 76.23, 0.02)
	if _, err := MeanPosterior(0, 1, 1); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := MeanPosterior(0, 0, 10); err == nil {
		t.Error("sd=0: want error")
	}
}
