package dist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is the paper's primary distribution representation: a set of
// contiguous buckets {(bᵢ, pᵢ)} where bucket i covers [Edges[i], Edges[i+1])
// and carries probability Probs[i] (§II-B). Within a bucket, mass is spread
// uniformly, so the histogram is a mixture of uniform distributions — the
// usual continuous-histogram semantics in the uncertain-database literature.
//
// Counts preserves the raw per-bucket observation counts when the histogram
// was learned from a sample; accuracy computations (Lemma 1) need the sample
// size but not the raw observations.
type Histogram struct {
	Edges  []float64 // len b+1, strictly increasing
	Probs  []float64 // len b, non-negative, sums to 1
	Counts []int     // len b or nil; raw observation counts if learned
}

// NewHistogram builds a histogram from bucket edges and probabilities,
// validating shape, monotone edges, non-negative probabilities, and unit
// total mass (up to rounding). The probabilities are normalized exactly.
func NewHistogram(edges, probs []float64) (*Histogram, error) {
	if len(edges) != len(probs)+1 || len(probs) == 0 {
		return nil, fmt.Errorf("%w: histogram needs len(edges) == len(probs)+1 ≥ 2, got %d and %d",
			ErrInvalidParam, len(edges), len(probs))
	}
	total := 0.0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: histogram bucket %d has probability %v", ErrInvalidParam, i, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("%w: histogram probabilities sum to %v, want 1", ErrInvalidParam, total)
	}
	for i := 0; i+1 < len(edges); i++ {
		if !(edges[i] < edges[i+1]) {
			return nil, fmt.Errorf("%w: histogram edges not strictly increasing at %d", ErrInvalidParam, i)
		}
	}
	h := &Histogram{
		Edges: append([]float64(nil), edges...),
		Probs: append([]float64(nil), probs...),
	}
	for i := range h.Probs {
		h.Probs[i] /= total
	}
	return h, nil
}

// RestoreHistogram rebuilds a serialized histogram from its exact
// normalized probabilities: they must already sum to 1 (within rounding)
// and are preserved bit-for-bit (NewHistogram's renormalization would
// perturb them by an ulp, breaking bit-identical recovery).
func RestoreHistogram(edges, probs []float64) (*Histogram, error) {
	if len(edges) != len(probs)+1 || len(probs) == 0 {
		return nil, fmt.Errorf("%w: histogram needs len(edges) == len(probs)+1 ≥ 2, got %d and %d",
			ErrInvalidParam, len(edges), len(probs))
	}
	total := 0.0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: histogram bucket %d has probability %v", ErrInvalidParam, i, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, fmt.Errorf("%w: restored histogram mass %v, want 1", ErrInvalidParam, total)
	}
	for i := 0; i+1 < len(edges); i++ {
		if !(edges[i] < edges[i+1]) {
			return nil, fmt.Errorf("%w: histogram edges not strictly increasing at %d", ErrInvalidParam, i)
		}
	}
	return &Histogram{
		Edges: append([]float64(nil), edges...),
		Probs: append([]float64(nil), probs...),
	}, nil
}

// HistogramFromCounts builds a histogram whose bucket probabilities are the
// empirical frequencies counts[i]/n; this is how the database learns a
// histogram distribution from a raw sample (§I). The counts are retained so
// Lemma 1 can compute bin-height confidence intervals later.
func HistogramFromCounts(edges []float64, counts []int) (*Histogram, error) {
	if len(edges) != len(counts)+1 || len(counts) == 0 {
		return nil, fmt.Errorf("%w: histogram needs len(edges) == len(counts)+1 ≥ 2", ErrInvalidParam)
	}
	n := 0
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: bucket %d has negative count", ErrInvalidParam, i)
		}
		n += c
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: histogram from zero observations", ErrInvalidParam)
	}
	probs := make([]float64, len(counts))
	for i, c := range counts {
		probs[i] = float64(c) / float64(n)
	}
	h, err := NewHistogram(edges, probs)
	if err != nil {
		return nil, err
	}
	h.Counts = append([]int(nil), counts...)
	return h, nil
}

// NumBuckets returns the number of buckets b.
func (h *Histogram) NumBuckets() int { return len(h.Probs) }

// SampleSize returns the total observation count when the histogram was
// learned from data, or 0 when it was specified directly.
func (h *Histogram) SampleSize() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mean returns the expectation under the mixture-of-uniforms semantics.
func (h *Histogram) Mean() float64 {
	m := 0.0
	for i, p := range h.Probs {
		m += p * (h.Edges[i] + h.Edges[i+1]) / 2
	}
	return m
}

// Variance returns the variance under the mixture-of-uniforms semantics.
func (h *Histogram) Variance() float64 {
	mean := h.Mean()
	v := 0.0
	for i, p := range h.Probs {
		lo, hi := h.Edges[i], h.Edges[i+1]
		mid := (lo + hi) / 2
		w := hi - lo
		// E[X²] of Uniform[lo,hi] = mid² + w²/12.
		v += p * (mid*mid + w*w/12)
	}
	return v - mean*mean
}

// CDF returns P(X ≤ x), piecewise linear across buckets.
func (h *Histogram) CDF(x float64) float64 {
	if x <= h.Edges[0] {
		return 0
	}
	last := len(h.Edges) - 1
	if x >= h.Edges[last] {
		return 1
	}
	// Find the bucket containing x.
	i := sort.SearchFloat64s(h.Edges, x) - 1
	if i < 0 {
		i = 0
	}
	if h.Edges[i+1] <= x { // x exactly on an edge lands in the next bucket
		i++
	}
	cum := 0.0
	for j := 0; j < i; j++ {
		cum += h.Probs[j]
	}
	frac := (x - h.Edges[i]) / (h.Edges[i+1] - h.Edges[i])
	return cum + frac*h.Probs[i]
}

// Quantile returns the p-quantile by walking the cumulative bucket masses.
func (h *Histogram) Quantile(p float64) float64 {
	checkProbPanic(p)
	cum := 0.0
	for i, pi := range h.Probs {
		if cum+pi >= p {
			if pi == 0 {
				return h.Edges[i]
			}
			frac := (p - cum) / pi
			return h.Edges[i] + frac*(h.Edges[i+1]-h.Edges[i])
		}
		cum += pi
	}
	return h.Edges[len(h.Edges)-1]
}

// Sample draws a bucket by probability, then a uniform point within it.
func (h *Histogram) Sample(r *Rand) float64 {
	u := r.Float64()
	cum := 0.0
	for i, pi := range h.Probs {
		cum += pi
		if u < cum {
			return h.Edges[i] + r.Float64()*(h.Edges[i+1]-h.Edges[i])
		}
	}
	// Rounding left u just above the final cumulative mass.
	last := len(h.Probs) - 1
	return h.Edges[last] + r.Float64()*(h.Edges[last+1]-h.Edges[last])
}

// BucketProb returns the probability of bucket i.
func (h *Histogram) BucketProb(i int) float64 { return h.Probs[i] }

// Bucket returns the half-open interval [lo, hi) of bucket i.
func (h *Histogram) Bucket(i int) (lo, hi float64) {
	return h.Edges[i], h.Edges[i+1]
}

// BucketIndex returns the index of the bucket containing x, or -1 when x is
// outside the histogram's support.
func (h *Histogram) BucketIndex(x float64) int {
	if x < h.Edges[0] || x > h.Edges[len(h.Edges)-1] {
		return -1
	}
	if x == h.Edges[len(h.Edges)-1] {
		return len(h.Probs) - 1
	}
	i := sort.SearchFloat64s(h.Edges, x) - 1
	if i < 0 {
		i = 0
	}
	if h.Edges[i+1] <= x {
		i++
	}
	return i
}

func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Histogram{%d buckets on [%g, %g]", len(h.Probs), h.Edges[0], h.Edges[len(h.Edges)-1])
	if n := h.SampleSize(); n > 0 {
		fmt.Fprintf(&b, ", n=%d", n)
	}
	b.WriteByte('}')
	return b.String()
}
