package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func mustHist(t *testing.T, edges, probs []float64) *Histogram {
	t.Helper()
	h, err := NewHistogram(edges, probs)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct {
		name  string
		edges []float64
		probs []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{0.5, 0.5}},
		{"empty", []float64{0}, nil},
		{"negative prob", []float64{0, 1, 2}, []float64{-0.1, 1.1}},
		{"not summing to 1", []float64{0, 1, 2}, []float64{0.3, 0.3}},
		{"non-increasing edges", []float64{0, 0, 1}, []float64{0.5, 0.5}},
		{"NaN prob", []float64{0, 1, 2}, []float64{math.NaN(), 1}},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.edges, c.probs); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := NewHistogram([]float64{0, 1, 2}, []float64{0.25, 0.75}); err != nil {
		t.Errorf("valid histogram rejected: %v", err)
	}
}

func TestHistogramFromCounts(t *testing.T) {
	// Paper Example 2: n=20, four buckets with counts 3, 4, 8, 5.
	h, err := HistogramFromCounts([]float64{0, 10, 20, 30, 40}, []int{3, 4, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	wantProbs := []float64{0.15, 0.2, 0.4, 0.25}
	for i, w := range wantProbs {
		approx(t, "bucket prob", h.BucketProb(i), w, 1e-12)
	}
	if h.SampleSize() != 20 {
		t.Errorf("SampleSize = %d, want 20", h.SampleSize())
	}
	if _, err := HistogramFromCounts([]float64{0, 1}, []int{0}); err == nil {
		t.Error("zero total count: want error")
	}
	if _, err := HistogramFromCounts([]float64{0, 1, 2}, []int{-1, 2}); err == nil {
		t.Error("negative count: want error")
	}
}

func TestHistogramMoments(t *testing.T) {
	// Single bucket on [0,1] is Uniform(0,1).
	h := mustHist(t, []float64{0, 1}, []float64{1})
	approx(t, "hist mean", h.Mean(), 0.5, 1e-12)
	approx(t, "hist var", h.Variance(), 1.0/12, 1e-12)

	// Two equal buckets on [0,2]: still Uniform(0,2).
	h2 := mustHist(t, []float64{0, 1, 2}, []float64{0.5, 0.5})
	approx(t, "hist2 mean", h2.Mean(), 1, 1e-12)
	approx(t, "hist2 var", h2.Variance(), 4.0/12, 1e-12)
}

func TestHistogramCDF(t *testing.T) {
	h := mustHist(t, []float64{0, 10, 20, 30, 40}, []float64{0.15, 0.2, 0.4, 0.25})
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {5, 0.075}, {10, 0.15}, {15, 0.25},
		{20, 0.35}, {30, 0.75}, {35, 0.875}, {40, 1}, {50, 1},
	}
	for _, c := range cases {
		approx(t, "hist CDF", h.CDF(c.x), c.want, 1e-12)
	}
}

func TestHistogramQuantileRoundTrip(t *testing.T) {
	h := mustHist(t, []float64{0, 10, 20, 30, 40}, []float64{0.15, 0.2, 0.4, 0.25})
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01
		x := h.Quantile(p)
		return math.Abs(h.CDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramSampleFrequencies(t *testing.T) {
	h := mustHist(t, []float64{0, 10, 20, 30, 40}, []float64{0.15, 0.2, 0.4, 0.25})
	r := NewRand(21)
	const n = 100000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		x := h.Sample(r)
		idx := h.BucketIndex(x)
		if idx < 0 {
			t.Fatalf("sample %v outside support", x)
		}
		counts[idx]++
	}
	for i, p := range h.Probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("bucket %d frequency %g, want %g", i, got, p)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	h := mustHist(t, []float64{0, 10, 20}, []float64{0.5, 0.5})
	cases := []struct {
		x    float64
		want int
	}{
		{-1, -1}, {0, 0}, {5, 0}, {10, 1}, {15, 1}, {20, 1}, {21, -1},
	}
	for _, c := range cases {
		if got := h.BucketIndex(c.x); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHistogramNormalizes(t *testing.T) {
	// Probabilities within tolerance of 1 are normalized exactly.
	h := mustHist(t, []float64{0, 1, 2}, []float64{0.5000001, 0.4999999})
	total := 0.0
	for _, p := range h.Probs {
		total += p
	}
	approx(t, "normalized total", total, 1, 1e-15)
}

func TestDiscreteBasics(t *testing.T) {
	d, err := NewDiscrete([]float64{3, 1, 2, 1}, []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// Values 1 (merged 0.2+0.4=0.6), 2 (0.3), 3 (0.1).
	approx(t, "P(X=1)", d.Prob(1), 0.6, 1e-12)
	approx(t, "P(X=2)", d.Prob(2), 0.3, 1e-12)
	approx(t, "P(X=5)", d.Prob(5), 0, 0)
	approx(t, "mean", d.Mean(), 0.6*1+0.3*2+0.1*3, 1e-12)
	approx(t, "CDF(1)", d.CDF(1), 0.6, 1e-12)
	approx(t, "CDF(2.5)", d.CDF(2.5), 0.9, 1e-12)
	approx(t, "Quantile(0.6)", d.Quantile(0.6), 1, 0)
	approx(t, "Quantile(0.61)", d.Quantile(0.61), 2, 0)
}

func TestDiscreteSample(t *testing.T) {
	d, _ := NewDiscrete([]float64{0, 1}, []float64{0.3, 0.7})
	r := NewRand(17)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) == 1 {
			ones++
		}
	}
	approx(t, "Bernoulli frequency", float64(ones)/n, 0.7, 0.01)
}

func TestBernoulli(t *testing.T) {
	b, err := Bernoulli(0.25)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Bernoulli mean", b.Mean(), 0.25, 1e-12)
	approx(t, "Bernoulli var", b.Variance(), 0.25*0.75, 1e-12)
	for _, p := range []float64{0, 1} {
		d, err := Bernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "degenerate Bernoulli", d.Mean(), p, 0)
	}
	if _, err := Bernoulli(1.5); err == nil {
		t.Error("Bernoulli(1.5): want error")
	}
}

func TestEmpirical(t *testing.T) {
	obs := []float64{71, 56, 82, 74, 69, 77, 65, 78, 59, 80} // paper Example 3
	d, err := Empirical(obs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "empirical mean", d.Mean(), 71.1, 1e-9)
	if _, err := Empirical(nil); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestMixture(t *testing.T) {
	n1, _ := NewNormal(0, 1)
	n2, _ := NewNormal(10, 4)
	m, err := NewMixture([]Distribution{n1, n2}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Weights normalize to 0.25, 0.75.
	approx(t, "mixture mean", m.Mean(), 0.25*0+0.75*10, 1e-12)
	// Var = Σ w(σ²+μ²) − mean².
	want := 0.25*(1+0) + 0.75*(4+100) - 7.5*7.5
	approx(t, "mixture var", m.Variance(), want, 1e-12)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := m.Quantile(p)
		approx(t, "mixture quantile roundtrip", m.CDF(x), p, 1e-9)
	}
	r := NewRand(2)
	const n = 100000
	low := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) < 5 {
			low++
		}
	}
	approx(t, "mixture sample split", float64(low)/n, m.CDF(5), 0.01)

	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture: want error")
	}
	if _, err := NewMixture([]Distribution{n1}, []float64{-1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := NewMixture([]Distribution{nil}, []float64{1}); err == nil {
		t.Error("nil component: want error")
	}
}
