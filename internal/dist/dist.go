package dist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stat"
)

// Distribution is a univariate probability distribution over the reals.
// It is the value type of probabilistic attributes in the uncertain stream
// database: a field of a tuple is, in general, a Distribution (a
// deterministic field is the degenerate Point distribution).
type Distribution interface {
	// Mean returns the expectation E[X].
	Mean() float64
	// Variance returns Var[X].
	Variance() float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Quantile returns inf{x : CDF(x) ≥ p} for p in (0, 1).
	Quantile(p float64) float64
	// Sample draws one variate using r.
	Sample(r *Rand) float64
	// String returns a short human-readable description, e.g.
	// "Normal(μ=1, σ²=1)".
	String() string
}

// ErrInvalidParam reports an invalid distribution parameter.
var ErrInvalidParam = errors.New("dist: invalid parameter")

// StdDev returns the standard deviation of d.
func StdDev(d Distribution) float64 { return math.Sqrt(d.Variance()) }

// ProbGreater returns P(X > v) = 1 − CDF(v).
func ProbGreater(d Distribution, v float64) float64 { return 1 - d.CDF(v) }

// SampleN draws n variates from d into a new slice.
func SampleN(d Distribution, n int, r *Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

// checkProbPanic converts a bad quantile argument into a panic with a clear
// message; Quantile has no error return because a p outside (0,1) is always
// a programming error, never a data error.
func checkProbPanic(p float64) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		panic(fmt.Sprintf("dist: Quantile requires 0 < p < 1, got %v", p))
	}
}

// --- Normal ---

// Normal is the Gaussian distribution with mean Mu and variance Sigma2.
type Normal struct {
	Mu     float64
	Sigma2 float64
}

// NewNormal returns a Normal distribution, validating Sigma2 > 0.
func NewNormal(mu, sigma2 float64) (Normal, error) {
	if sigma2 <= 0 || math.IsNaN(mu) || math.IsNaN(sigma2) {
		return Normal{}, fmt.Errorf("%w: Normal variance %v", ErrInvalidParam, sigma2)
	}
	return Normal{Mu: mu, Sigma2: sigma2}, nil
}

func (d Normal) Mean() float64     { return d.Mu }
func (d Normal) Variance() float64 { return d.Sigma2 }

func (d Normal) CDF(x float64) float64 {
	return stat.NormCDF((x - d.Mu) / math.Sqrt(d.Sigma2))
}

func (d Normal) Quantile(p float64) float64 {
	checkProbPanic(p)
	return d.Mu + math.Sqrt(d.Sigma2)*stat.NormQuantile(p)
}

func (d Normal) Sample(r *Rand) float64 {
	return d.Mu + math.Sqrt(d.Sigma2)*r.NormFloat64()
}

func (d Normal) String() string {
	return fmt.Sprintf("Normal(μ=%g, σ²=%g)", d.Mu, d.Sigma2)
}

// --- Exponential ---

// Exponential is the exponential distribution with rate Lambda
// (mean 1/Lambda).
type Exponential struct {
	Lambda float64
}

// NewExponential returns an Exponential distribution, validating Lambda > 0.
func NewExponential(lambda float64) (Exponential, error) {
	if lambda <= 0 || math.IsNaN(lambda) {
		return Exponential{}, fmt.Errorf("%w: Exponential rate %v", ErrInvalidParam, lambda)
	}
	return Exponential{Lambda: lambda}, nil
}

func (d Exponential) Mean() float64     { return 1 / d.Lambda }
func (d Exponential) Variance() float64 { return 1 / (d.Lambda * d.Lambda) }

func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-d.Lambda * x)
}

func (d Exponential) Quantile(p float64) float64 {
	checkProbPanic(p)
	return -math.Log1p(-p) / d.Lambda
}

func (d Exponential) Sample(r *Rand) float64 { return r.ExpFloat64() / d.Lambda }

func (d Exponential) String() string {
	return fmt.Sprintf("Exponential(λ=%g)", d.Lambda)
}

// --- Gamma ---

// Gamma is the gamma distribution with shape K and scale Theta
// (mean K·Theta, variance K·Theta²); the paper's synthetic experiments use
// Gamma(k=2, θ=2).
type Gamma struct {
	K     float64 // shape
	Theta float64 // scale
}

// NewGamma returns a Gamma distribution, validating K > 0 and Theta > 0.
func NewGamma(k, theta float64) (Gamma, error) {
	if k <= 0 || theta <= 0 || math.IsNaN(k) || math.IsNaN(theta) {
		return Gamma{}, fmt.Errorf("%w: Gamma(k=%v, θ=%v)", ErrInvalidParam, k, theta)
	}
	return Gamma{K: k, Theta: theta}, nil
}

func (d Gamma) Mean() float64     { return d.K * d.Theta }
func (d Gamma) Variance() float64 { return d.K * d.Theta * d.Theta }

func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p, err := stat.GammaP(d.K, x/d.Theta)
	if err != nil {
		return math.NaN()
	}
	return p
}

func (d Gamma) Quantile(p float64) float64 {
	checkProbPanic(p)
	return invertCDF(d.CDF, p, 0, d.Mean()+20*math.Sqrt(d.Variance()), 0)
}

// Sample uses the Marsaglia–Tsang method, with Johnk-style boosting for
// shape < 1.
func (d Gamma) Sample(r *Rand) float64 {
	k := d.K
	boost := 1.0
	if k < 1 {
		// X ~ Gamma(k) = Gamma(k+1) · U^{1/k}.
		boost = math.Pow(r.Float64Open(), 1/k)
		k++
	}
	dd := k - 1.0/3.0
	c := 1 / math.Sqrt(9*dd)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return dd * v * boost * d.Theta
		}
		if math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return dd * v * boost * d.Theta
		}
	}
}

func (d Gamma) String() string {
	return fmt.Sprintf("Gamma(k=%g, θ=%g)", d.K, d.Theta)
}

// --- Uniform ---

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

// NewUniform returns a Uniform distribution, validating A < B.
func NewUniform(a, b float64) (Uniform, error) {
	if !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return Uniform{}, fmt.Errorf("%w: Uniform[%v, %v]", ErrInvalidParam, a, b)
	}
	return Uniform{A: a, B: b}, nil
}

func (d Uniform) Mean() float64     { return (d.A + d.B) / 2 }
func (d Uniform) Variance() float64 { w := d.B - d.A; return w * w / 12 }

func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}

func (d Uniform) Quantile(p float64) float64 {
	checkProbPanic(p)
	return d.A + p*(d.B-d.A)
}

func (d Uniform) Sample(r *Rand) float64 { return d.A + r.Float64()*(d.B-d.A) }

func (d Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g]", d.A, d.B) }

// --- Weibull ---

// Weibull is the Weibull distribution with scale Lambda and shape K; the
// paper's synthetic experiments use Weibull(λ=1, k=1), which coincides with
// Exp(1).
type Weibull struct {
	Lambda float64 // scale
	K      float64 // shape
}

// NewWeibull returns a Weibull distribution, validating both parameters > 0.
func NewWeibull(lambda, k float64) (Weibull, error) {
	if lambda <= 0 || k <= 0 || math.IsNaN(lambda) || math.IsNaN(k) {
		return Weibull{}, fmt.Errorf("%w: Weibull(λ=%v, k=%v)", ErrInvalidParam, lambda, k)
	}
	return Weibull{Lambda: lambda, K: k}, nil
}

func (d Weibull) Mean() float64 {
	g, _ := math.Lgamma(1 + 1/d.K)
	return d.Lambda * math.Exp(g)
}

func (d Weibull) Variance() float64 {
	g1, _ := math.Lgamma(1 + 1/d.K)
	g2, _ := math.Lgamma(1 + 2/d.K)
	m := math.Exp(g1)
	return d.Lambda * d.Lambda * (math.Exp(g2) - m*m)
}

func (d Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/d.Lambda, d.K))
}

func (d Weibull) Quantile(p float64) float64 {
	checkProbPanic(p)
	return d.Lambda * math.Pow(-math.Log1p(-p), 1/d.K)
}

func (d Weibull) Sample(r *Rand) float64 {
	return d.Lambda * math.Pow(r.ExpFloat64(), 1/d.K)
}

func (d Weibull) String() string {
	return fmt.Sprintf("Weibull(λ=%g, k=%g)", d.Lambda, d.K)
}

// --- Lognormal ---

// Lognormal is the distribution of e^Z with Z ~ Normal(MuLog, Sigma2Log).
// The simulated CarTel road-delay data uses lognormal segment delays, the
// standard heavy-tailed model for travel times.
type Lognormal struct {
	MuLog     float64
	Sigma2Log float64
}

// NewLognormal returns a Lognormal distribution, validating Sigma2Log > 0.
func NewLognormal(muLog, sigma2Log float64) (Lognormal, error) {
	if sigma2Log <= 0 || math.IsNaN(muLog) || math.IsNaN(sigma2Log) {
		return Lognormal{}, fmt.Errorf("%w: Lognormal σ²=%v", ErrInvalidParam, sigma2Log)
	}
	return Lognormal{MuLog: muLog, Sigma2Log: sigma2Log}, nil
}

func (d Lognormal) Mean() float64 { return math.Exp(d.MuLog + d.Sigma2Log/2) }

func (d Lognormal) Variance() float64 {
	return math.Expm1(d.Sigma2Log) * math.Exp(2*d.MuLog+d.Sigma2Log)
}

func (d Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stat.NormCDF((math.Log(x) - d.MuLog) / math.Sqrt(d.Sigma2Log))
}

func (d Lognormal) Quantile(p float64) float64 {
	checkProbPanic(p)
	return math.Exp(d.MuLog + math.Sqrt(d.Sigma2Log)*stat.NormQuantile(p))
}

func (d Lognormal) Sample(r *Rand) float64 {
	return math.Exp(d.MuLog + math.Sqrt(d.Sigma2Log)*r.NormFloat64())
}

func (d Lognormal) String() string {
	return fmt.Sprintf("Lognormal(μ=%g, σ²=%g)", d.MuLog, d.Sigma2Log)
}

// --- Point (degenerate) ---

// Point is the degenerate distribution concentrated at V: the representation
// of a traditional deterministic field ("a single value with probability 1",
// §II-A).
type Point struct {
	V float64
}

func (d Point) Mean() float64     { return d.V }
func (d Point) Variance() float64 { return 0 }

func (d Point) CDF(x float64) float64 {
	if x < d.V {
		return 0
	}
	return 1
}

func (d Point) Quantile(p float64) float64 { checkProbPanic(p); return d.V }
func (d Point) Sample(*Rand) float64       { return d.V }
func (d Point) String() string             { return fmt.Sprintf("Point(%g)", d.V) }

// invertCDF numerically inverts a CDF by bracketed bisection with Newton-free
// robustness; used by families without a closed-form quantile. lo must have
// CDF(lo) ≤ p; hi is grown until CDF(hi) ≥ p. floor clamps the result's lower
// bound (e.g. 0 for positive distributions).
func invertCDF(cdf func(float64) float64, p, lo, hi, floor float64) float64 {
	for i := 0; i < 200 && cdf(hi) < p; i++ {
		hi *= 2
		if hi == 0 {
			hi = 1
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	x := (lo + hi) / 2
	if x < floor {
		x = floor
	}
	return x
}
