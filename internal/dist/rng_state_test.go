package dist

import "testing"

// TestRandStateRoundTrip verifies a restored RNG continues the exact
// variate sequence of the captured one — the property checkpoint recovery
// depends on.
func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(12345)
	// Advance through mixed draw kinds so the internal state (including
	// the Box–Muller spare) is non-trivial.
	for i := 0; i < 257; i++ {
		r.Uint64()
		r.Float64()
		r.NormFloat64()
	}
	st := r.State()
	r2 := NewRand(1)
	if err := r2.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("Uint64 draw %d diverged: %d vs %d", i, a, b)
		}
		if a, b := r.NormFloat64(), r2.NormFloat64(); a != b {
			t.Fatalf("NormFloat64 draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := r.ExpFloat64(), r2.ExpFloat64(); a != b {
			t.Fatalf("ExpFloat64 draw %d diverged: %v vs %v", i, a, b)
		}
	}
}

// TestRandStateCapturesSpare captures between the two halves of a
// Box–Muller pair: the restored RNG must emit the stored spare first.
func TestRandStateCapturesSpare(t *testing.T) {
	r := NewRand(99)
	r.NormFloat64() // generates a pair, holds the spare
	st := r.State()
	if !st.HaveSpare {
		t.Skip("implementation holds no spare at this point")
	}
	r2 := NewRand(2)
	if err := r2.SetState(st); err != nil {
		t.Fatal(err)
	}
	if a, b := r.NormFloat64(), r2.NormFloat64(); a != b {
		t.Fatalf("spare draw diverged: %v vs %v", a, b)
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	r := NewRand(1)
	if err := r.SetState(RandState{}); err == nil {
		t.Fatal("SetState accepted the all-zero (degenerate) state")
	}
	// The RNG must remain usable after the rejected restore.
	if a, b := r.Uint64(), NewRand(1).Uint64(); a != b {
		t.Fatalf("rejected SetState perturbed the RNG: %d vs %d", a, b)
	}
}
