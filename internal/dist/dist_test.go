package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

// allFamilies returns one representative of every continuous family,
// including the paper's five synthetic-experiment distributions.
func allFamilies(t *testing.T) []Distribution {
	t.Helper()
	n, err := NewNormal(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExponential(1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGamma(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWeibull(1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := NewLognormal(0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{n, e, g, u, w, ln}
}

func TestConstructorsValidate(t *testing.T) {
	bad := []error{}
	collect := func(err error) {
		if err == nil {
			t.Error("constructor accepted invalid parameters")
			return
		}
		bad = append(bad, err)
	}
	_, err := NewNormal(0, 0)
	collect(err)
	_, err = NewNormal(math.NaN(), 1)
	collect(err)
	_, err = NewExponential(-1)
	collect(err)
	_, err = NewGamma(0, 1)
	collect(err)
	_, err = NewGamma(1, -2)
	collect(err)
	_, err = NewUniform(1, 1)
	collect(err)
	_, err = NewWeibull(1, 0)
	collect(err)
	_, err = NewLognormal(0, -1)
	collect(err)
	for _, e := range bad {
		if !errorsIsInvalid(e) {
			t.Errorf("error %v does not wrap ErrInvalidParam", e)
		}
	}
}

func errorsIsInvalid(err error) bool {
	for err != nil {
		if err == ErrInvalidParam {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestKnownMoments(t *testing.T) {
	e, _ := NewExponential(2)
	approx(t, "Exp mean", e.Mean(), 0.5, 1e-12)
	approx(t, "Exp var", e.Variance(), 0.25, 1e-12)

	g, _ := NewGamma(2, 2)
	approx(t, "Gamma mean", g.Mean(), 4, 1e-12)
	approx(t, "Gamma var", g.Variance(), 8, 1e-12)

	u, _ := NewUniform(0, 1)
	approx(t, "Uniform mean", u.Mean(), 0.5, 1e-12)
	approx(t, "Uniform var", u.Variance(), 1.0/12, 1e-12)

	// Weibull(1,1) == Exp(1).
	w, _ := NewWeibull(1, 1)
	approx(t, "Weibull(1,1) mean", w.Mean(), 1, 1e-12)
	approx(t, "Weibull(1,1) var", w.Variance(), 1, 1e-10)

	ln, _ := NewLognormal(0, 1)
	approx(t, "Lognormal mean", ln.Mean(), math.Exp(0.5), 1e-12)
	approx(t, "Lognormal var", ln.Variance(), (math.E-1)*math.E, 1e-10)
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for _, d := range allFamilies(t) {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			approx(t, d.String()+" CDF(Quantile)", d.CDF(x), p, 1e-8)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	ds := allFamilies(t)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, d := range ds {
			cl, ch := d.CDF(lo), d.CDF(hi)
			if cl > ch || cl < 0 || ch > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleMomentsMatch(t *testing.T) {
	r := NewRand(42)
	const n = 200000
	for _, d := range allFamilies(t) {
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		sd := math.Sqrt(d.Variance())
		if math.Abs(mean-d.Mean()) > 6*sd/math.Sqrt(n) {
			t.Errorf("%s: sample mean %g, want %g", d, mean, d.Mean())
		}
		if math.Abs(variance-d.Variance()) > 0.1*d.Variance()+0.01 {
			t.Errorf("%s: sample variance %g, want %g", d, variance, d.Variance())
		}
	}
}

func TestSampleRespectsCDF(t *testing.T) {
	// Kolmogorov-style check: empirical CDF at a few probe points must be
	// close to the analytic CDF.
	r := NewRand(7)
	const n = 100000
	for _, d := range allFamilies(t) {
		probes := []float64{d.Quantile(0.1), d.Quantile(0.5), d.Quantile(0.9)}
		counts := make([]int, len(probes))
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			for j, q := range probes {
				if x <= q {
					counts[j]++
				}
			}
		}
		for j, q := range probes {
			got := float64(counts[j]) / n
			want := d.CDF(q)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("%s: empirical CDF(%g) = %g, want %g", d, q, got, want)
			}
		}
	}
}

func TestPointDistribution(t *testing.T) {
	p := Point{V: 3.5}
	approx(t, "Point mean", p.Mean(), 3.5, 0)
	approx(t, "Point var", p.Variance(), 0, 0)
	if p.CDF(3.4) != 0 || p.CDF(3.5) != 1 || p.CDF(4) != 1 {
		t.Error("Point CDF wrong")
	}
	if p.Quantile(0.3) != 3.5 {
		t.Error("Point quantile wrong")
	}
	r := NewRand(1)
	if p.Sample(r) != 3.5 {
		t.Error("Point sample wrong")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(100)
	same := true
	a2 := NewRand(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(5)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		sum += u
		buckets[int(u*10)]++
	}
	approx(t, "uniform mean", sum/n, 0.5, 0.01)
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > 600 {
			t.Errorf("bucket %d count %d far from %d", i, c, n/10)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(8)
	r2 := r.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == r2.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("split streams coincide %d/100 times", matches)
	}
}

func TestProbGreater(t *testing.T) {
	n, _ := NewNormal(0, 1)
	approx(t, "P(Z>0)", ProbGreater(n, 0), 0.5, 1e-12)
	approx(t, "P(Z>1.645)", ProbGreater(n, 1.6448536269514722), 0.05, 1e-9)
}

func TestSampleN(t *testing.T) {
	u, _ := NewUniform(2, 3)
	r := NewRand(1)
	xs := SampleN(u, 50, r)
	if len(xs) != 50 {
		t.Fatalf("len = %d", len(xs))
	}
	for _, x := range xs {
		if x < 2 || x >= 3 {
			t.Fatalf("sample %v outside [2,3)", x)
		}
	}
}

func TestQuantilePanicsOutsideDomain(t *testing.T) {
	n, _ := NewNormal(0, 1)
	for _, p := range []float64{0, 1, -1, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			n.Quantile(p)
		}()
	}
}
