package dist

import "testing"

// TestDeriveSeedDeterministic checks substream derivation is a pure function
// and distinct indices give distinct seeds (the property the parallel
// accuracy kernel's determinism guarantee rests on).
func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		s := DeriveSeed(1, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(1, %d) == DeriveSeed(1, %d)", i, j)
		}
		seen[s] = i
	}
	// Different roots give different substream seeds.
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("roots 1 and 2 collide at substream 0")
	}
}

// TestNewRandStreamMatchesDerivedSeed checks the shorthand agrees with
// explicit derivation, and that substreams produce decorrelated outputs.
func TestNewRandStreamMatchesDerivedSeed(t *testing.T) {
	a := NewRandStream(9, 3)
	b := NewRand(DeriveSeed(9, 3))
	for k := 0; k < 16; k++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewRandStream diverges from NewRand(DeriveSeed(...))")
		}
	}
	// Adjacent substreams must not emit identical sequences.
	x, y := NewRandStream(9, 0), NewRandStream(9, 1)
	same := 0
	for k := 0; k < 64; k++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent substreams agree on %d/64 outputs", same)
	}
}

// TestReseedMatchesNewRand checks in-place reseeding reproduces a fresh
// generator exactly, including clearing the cached normal spare.
func TestReseedMatchesNewRand(t *testing.T) {
	r := NewRand(5)
	r.NormFloat64() // populate the spare so Reseed must clear it
	r.Reseed(11)
	fresh := NewRand(11)
	for k := 0; k < 8; k++ {
		if got, want := r.NormFloat64(), fresh.NormFloat64(); got != want {
			t.Fatalf("after Reseed: output %d = %v, want %v", k, got, want)
		}
	}
}
