// Package dist provides the probability-distribution substrate of the
// accuracy-aware uncertain stream database: a deterministic random number
// generator and the distribution families the paper's data model and
// experiments use (normal, exponential, Gamma, uniform, Weibull, lognormal,
// histograms, finite discrete distributions, degenerate points, and
// mixtures).
//
// Every distribution implements the Distribution interface: moments, CDF,
// quantile, and sampling. Sampling always goes through an explicit *Rand so
// that experiments and tests are reproducible from a seed.
package dist

import (
	"errors"
	"math"
)

// Rand is a small, fast, seedable pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is deliberately independent of
// math/rand so that streams of random numbers are stable across Go releases;
// the experiment harness depends on that for reproducible figures.
//
// Rand is not safe for concurrent use; give each goroutine its own instance
// (see Split).
type Rand struct {
	s         [4]uint64
	spare     float64 // cached second normal variate
	haveSpare bool
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 expands the single word into four non-zero state words.
	r.Reseed(seed)
	return r
}

// Split returns a new generator whose stream is independent of r's
// (seeded from r's next outputs). Useful for giving each stream operator or
// worker goroutine its own source.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xd1342543de82ef95)
}

// DeriveSeed deterministically derives the seed of substream i from a root
// seed (SplitMix-style: golden-ratio stride through the seed space followed
// by a splitmix64 finalizer). It is a pure function — no generator state is
// consumed — so the parallel accuracy kernel can hand work item i its own
// independent stream and produce bit-identical output regardless of how
// items are scheduled across workers.
func DeriveSeed(root, i uint64) uint64 {
	z := root + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRandStream returns a generator for substream i of root — shorthand for
// NewRand(DeriveSeed(root, i)).
func NewRandStream(root, i uint64) *Rand {
	return NewRand(DeriveSeed(root, i))
}

// Reseed resets r to the state NewRand(seed) would produce, reusing the
// allocation. It lets pooled per-worker generators step through substreams
// without churning the heap.
func (r *Rand) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.spare = 0
	r.haveSpare = false
}

// RandState is the complete serializable state of a Rand. Capturing it and
// later restoring it via SetState resumes the stream exactly where it left
// off — the durability layer checkpoints per-query generators this way so a
// recovered engine draws the same variates a never-crashed one would.
type RandState struct {
	S         [4]uint64 `json:"s"`
	Spare     float64   `json:"spare,omitempty"`
	HaveSpare bool      `json:"have_spare,omitempty"`
}

// State returns a snapshot of r's full state.
func (r *Rand) State() RandState {
	return RandState{S: r.s, Spare: r.spare, HaveSpare: r.haveSpare}
}

// SetState restores a snapshot taken with State. The all-zero xoshiro state
// is degenerate (the generator would emit zeros forever) and is rejected.
func (r *Rand) SetState(st RandState) error {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return errors.New("dist: all-zero generator state")
	}
	r.s = st.S
	r.spare = st.Spare
	r.haveSpare = st.HaveSpare
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0;
// safe as input to log or quantile transforms.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1, w2 := t&mask32, t>>32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method
// with a cached spare).
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an Exp(1) variate.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
