package dist

import (
	"fmt"
	"math"

	"repro/internal/stat"
)

// Beta is the beta distribution on [0, 1] with shape parameters Alpha and
// BetaP. It is the natural prior/posterior family for the probabilities
// this database manipulates (bin heights, tuple membership probabilities):
// a Beta(k+1, n−k+1) posterior over a bucket probability complements the
// frequentist intervals of Lemma 1.
type Beta struct {
	Alpha float64
	BetaP float64
}

// NewBeta returns a Beta distribution, validating both shapes > 0.
func NewBeta(alpha, beta float64) (Beta, error) {
	if alpha <= 0 || beta <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		return Beta{}, fmt.Errorf("%w: Beta(α=%v, β=%v)", ErrInvalidParam, alpha, beta)
	}
	return Beta{Alpha: alpha, BetaP: beta}, nil
}

func (d Beta) Mean() float64 { return d.Alpha / (d.Alpha + d.BetaP) }

func (d Beta) Variance() float64 {
	s := d.Alpha + d.BetaP
	return d.Alpha * d.BetaP / (s * s * (s + 1))
}

func (d Beta) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	v, err := stat.BetaInc(d.Alpha, d.BetaP, x)
	if err != nil {
		return math.NaN()
	}
	return v
}

func (d Beta) Quantile(p float64) float64 {
	checkProbPanic(p)
	return invertCDF(d.CDF, p, 0, 1, 0)
}

// Sample draws X/(X+Y) with X ~ Gamma(α, 1), Y ~ Gamma(β, 1).
func (d Beta) Sample(r *Rand) float64 {
	gx := Gamma{K: d.Alpha, Theta: 1}
	gy := Gamma{K: d.BetaP, Theta: 1}
	x := gx.Sample(r)
	y := gy.Sample(r)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

func (d Beta) String() string {
	return fmt.Sprintf("Beta(α=%g, β=%g)", d.Alpha, d.BetaP)
}

// StudentT is the location-scale Student-t distribution: Loc + Scale·T_ν.
// With ν = n−1, Loc = ȳ, Scale = s/√n it is exactly the sampling
// distribution of the mean behind Lemma 2's small-sample interval, making
// it useful for representing "the mean, with its uncertainty" as a
// first-class distribution.
type StudentT struct {
	Nu    float64 // degrees of freedom
	Loc   float64
	Scale float64
}

// NewStudentT returns a StudentT distribution, validating Nu > 0 and
// Scale > 0.
func NewStudentT(nu, loc, scale float64) (StudentT, error) {
	if nu <= 0 || scale <= 0 || math.IsNaN(nu) || math.IsNaN(loc) || math.IsNaN(scale) {
		return StudentT{}, fmt.Errorf("%w: StudentT(ν=%v, loc=%v, scale=%v)", ErrInvalidParam, nu, loc, scale)
	}
	return StudentT{Nu: nu, Loc: loc, Scale: scale}, nil
}

// Mean returns Loc for ν > 1 and NaN otherwise (undefined).
func (d StudentT) Mean() float64 {
	if d.Nu <= 1 {
		return math.NaN()
	}
	return d.Loc
}

// Variance returns Scale²·ν/(ν−2) for ν > 2, +Inf for 1 < ν ≤ 2, and NaN
// otherwise.
func (d StudentT) Variance() float64 {
	switch {
	case d.Nu > 2:
		return d.Scale * d.Scale * d.Nu / (d.Nu - 2)
	case d.Nu > 1:
		return math.Inf(1)
	default:
		return math.NaN()
	}
}

func (d StudentT) CDF(x float64) float64 {
	v, err := stat.TCDF((x-d.Loc)/d.Scale, d.Nu)
	if err != nil {
		return math.NaN()
	}
	return v
}

func (d StudentT) Quantile(p float64) float64 {
	checkProbPanic(p)
	q, err := stat.TQuantile(p, d.Nu)
	if err != nil {
		return math.NaN()
	}
	return d.Loc + d.Scale*q
}

// Sample draws Z/sqrt(V/ν) with Z standard normal and V ~ χ²_ν
// (as Gamma(ν/2, 2)).
func (d StudentT) Sample(r *Rand) float64 {
	z := r.NormFloat64()
	chi := Gamma{K: d.Nu / 2, Theta: 2}.Sample(r)
	if chi <= 0 {
		return d.Loc
	}
	return d.Loc + d.Scale*z/math.Sqrt(chi/d.Nu)
}

func (d StudentT) String() string {
	return fmt.Sprintf("StudentT(ν=%g, loc=%g, scale=%g)", d.Nu, d.Loc, d.Scale)
}

// MeanPosterior returns the location-scale Student-t sampling distribution
// of the mean for a sample with statistics (ȳ = mean, s = sd, n):
// StudentT(n−1, ȳ, s/√n). This is the distribution whose quantiles are the
// endpoints of Lemma 2's small-sample interval.
func MeanPosterior(mean, sd float64, n int) (StudentT, error) {
	if n < 2 {
		return StudentT{}, fmt.Errorf("%w: mean posterior needs n ≥ 2, have %d", ErrInvalidParam, n)
	}
	if sd <= 0 || math.IsNaN(sd) || math.IsNaN(mean) {
		return StudentT{}, fmt.Errorf("%w: mean posterior with mean=%v sd=%v", ErrInvalidParam, mean, sd)
	}
	return NewStudentT(float64(n-1), mean, sd/math.Sqrt(float64(n)))
}

// BetaPosterior returns Beta(k+1, n−k+1), the uniform-prior posterior of a
// proportion after observing k successes in n trials — the Bayesian
// counterpart of Lemma 1's bin-height interval.
func BetaPosterior(k, n int) (Beta, error) {
	if n < 1 || k < 0 || k > n {
		return Beta{}, fmt.Errorf("%w: Beta posterior with k=%d, n=%d", ErrInvalidParam, k, n)
	}
	return NewBeta(float64(k)+1, float64(n-k)+1)
}
