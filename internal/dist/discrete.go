package dist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Discrete is a finite discrete distribution over real support points.
// Attribute uncertainty in the paper's model may be "either continuous ...
// or discrete" (§II-A); Discrete covers the latter.
type Discrete struct {
	xs []float64 // sorted, distinct
	ps []float64 // same length, sums to 1
}

// NewDiscrete builds a discrete distribution from parallel value/probability
// slices. Values need not be sorted or distinct; duplicates are merged.
func NewDiscrete(values, probs []float64) (*Discrete, error) {
	if len(values) != len(probs) || len(values) == 0 {
		return nil, fmt.Errorf("%w: discrete needs equal-length non-empty values/probs", ErrInvalidParam)
	}
	type vp struct{ x, p float64 }
	items := make([]vp, len(values))
	total := 0.0
	for i := range values {
		if probs[i] < 0 || math.IsNaN(probs[i]) || math.IsNaN(values[i]) {
			return nil, fmt.Errorf("%w: discrete entry %d = (%v, %v)", ErrInvalidParam, i, values[i], probs[i])
		}
		items[i] = vp{values[i], probs[i]}
		total += probs[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: discrete total mass %v", ErrInvalidParam, total)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].x < items[j].x })
	d := &Discrete{}
	for _, it := range items {
		k := len(d.xs)
		if k > 0 && d.xs[k-1] == it.x {
			d.ps[k-1] += it.p / total
			continue
		}
		d.xs = append(d.xs, it.x)
		d.ps = append(d.ps, it.p/total)
	}
	return d, nil
}

// RestoreDiscrete rebuilds a serialized discrete distribution from its
// exact normalized form: values must be strictly increasing and probs must
// already sum to 1 (within rounding). Unlike NewDiscrete it never divides
// by the total, so the probabilities are preserved bit-for-bit — required
// for the durability subsystem's bit-identical recovery guarantee.
func RestoreDiscrete(values, probs []float64) (*Discrete, error) {
	if len(values) != len(probs) || len(values) == 0 {
		return nil, fmt.Errorf("%w: discrete needs equal-length non-empty values/probs", ErrInvalidParam)
	}
	total := 0.0
	for i := range values {
		if probs[i] < 0 || math.IsNaN(probs[i]) || math.IsNaN(values[i]) {
			return nil, fmt.Errorf("%w: discrete entry %d = (%v, %v)", ErrInvalidParam, i, values[i], probs[i])
		}
		if i > 0 && !(values[i-1] < values[i]) {
			return nil, fmt.Errorf("%w: restored discrete values not strictly increasing at %d", ErrInvalidParam, i)
		}
		total += probs[i]
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, fmt.Errorf("%w: restored discrete mass %v, want 1", ErrInvalidParam, total)
	}
	return &Discrete{
		xs: append([]float64(nil), values...),
		ps: append([]float64(nil), probs...),
	}, nil
}

// Empirical builds the empirical distribution of a raw sample: each
// observation carries mass 1/n. This is the distribution a Monte Carlo query
// path samples from when no parametric form is assumed.
func Empirical(obs []float64) (*Discrete, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("%w: empirical distribution of empty sample", ErrInvalidParam)
	}
	ps := make([]float64, len(obs))
	for i := range ps {
		ps[i] = 1
	}
	return NewDiscrete(obs, ps)
}

// Support returns the sorted distinct support points.
func (d *Discrete) Support() []float64 { return append([]float64(nil), d.xs...) }

// Prob returns P(X = x) (0 when x is not a support point).
func (d *Discrete) Prob(x float64) float64 {
	i := sort.SearchFloat64s(d.xs, x)
	if i < len(d.xs) && d.xs[i] == x {
		return d.ps[i]
	}
	return 0
}

func (d *Discrete) Mean() float64 {
	m := 0.0
	for i, x := range d.xs {
		m += x * d.ps[i]
	}
	return m
}

func (d *Discrete) Variance() float64 {
	m := d.Mean()
	v := 0.0
	for i, x := range d.xs {
		v += d.ps[i] * (x - m) * (x - m)
	}
	return v
}

func (d *Discrete) CDF(x float64) float64 {
	c := 0.0
	for i, xi := range d.xs {
		if xi > x {
			break
		}
		c += d.ps[i]
	}
	return c
}

func (d *Discrete) Quantile(p float64) float64 {
	checkProbPanic(p)
	c := 0.0
	for i, pi := range d.ps {
		c += pi
		if c >= p-1e-15 {
			return d.xs[i]
		}
	}
	return d.xs[len(d.xs)-1]
}

func (d *Discrete) Sample(r *Rand) float64 {
	u := r.Float64()
	c := 0.0
	for i, pi := range d.ps {
		c += pi
		if u < c {
			return d.xs[i]
		}
	}
	return d.xs[len(d.xs)-1]
}

func (d *Discrete) String() string {
	if len(d.xs) > 6 {
		return fmt.Sprintf("Discrete{%d points on [%g, %g]}", len(d.xs), d.xs[0], d.xs[len(d.xs)-1])
	}
	var b strings.Builder
	b.WriteString("Discrete{")
	for i, x := range d.xs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g:%.3g", x, d.ps[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Bernoulli returns the two-point distribution taking 1 with probability p
// and 0 otherwise. A result tuple's existence is exactly such a boolean
// random variable (§II-C).
func Bernoulli(p float64) (*Discrete, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("%w: Bernoulli p=%v", ErrInvalidParam, p)
	}
	switch p {
	case 0:
		return NewDiscrete([]float64{0}, []float64{1})
	case 1:
		return NewDiscrete([]float64{1}, []float64{1})
	}
	return NewDiscrete([]float64{0, 1}, []float64{1 - p, p})
}

// Mixture is a finite mixture of component distributions with given weights;
// used for multimodal learned distributions (e.g. Gaussian mixtures, §III-B).
type Mixture struct {
	Components []Distribution
	Weights    []float64 // normalized in NewMixture
}

// NewMixture builds a mixture, validating matching lengths and positive
// total weight; weights are normalized.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) != len(weights) || len(components) == 0 {
		return nil, fmt.Errorf("%w: mixture needs equal-length non-empty components/weights", ErrInvalidParam)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("%w: mixture weight %d = %v", ErrInvalidParam, i, w)
		}
		if components[i] == nil {
			return nil, fmt.Errorf("%w: mixture component %d is nil", ErrInvalidParam, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: mixture total weight %v", ErrInvalidParam, total)
	}
	m := &Mixture{
		Components: append([]Distribution(nil), components...),
		Weights:    make([]float64, len(weights)),
	}
	for i, w := range weights {
		m.Weights[i] = w / total
	}
	return m, nil
}

// RestoreMixture rebuilds a serialized mixture from its exact normalized
// weights: they must already sum to 1 (within rounding) and are preserved
// bit-for-bit (NewMixture's renormalization would perturb them by an ulp,
// breaking bit-identical recovery).
func RestoreMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) != len(weights) || len(components) == 0 {
		return nil, fmt.Errorf("%w: mixture needs equal-length non-empty components/weights", ErrInvalidParam)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("%w: mixture weight %d = %v", ErrInvalidParam, i, w)
		}
		if components[i] == nil {
			return nil, fmt.Errorf("%w: mixture component %d is nil", ErrInvalidParam, i)
		}
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, fmt.Errorf("%w: restored mixture weight %v, want 1", ErrInvalidParam, total)
	}
	return &Mixture{
		Components: append([]Distribution(nil), components...),
		Weights:    append([]float64(nil), weights...),
	}, nil
}

func (m *Mixture) Mean() float64 {
	v := 0.0
	for i, c := range m.Components {
		v += m.Weights[i] * c.Mean()
	}
	return v
}

func (m *Mixture) Variance() float64 {
	mean := m.Mean()
	v := 0.0
	for i, c := range m.Components {
		cm := c.Mean()
		v += m.Weights[i] * (c.Variance() + (cm-mean)*(cm-mean))
	}
	return v
}

func (m *Mixture) CDF(x float64) float64 {
	v := 0.0
	for i, c := range m.Components {
		v += m.Weights[i] * c.CDF(x)
	}
	return v
}

func (m *Mixture) Quantile(p float64) float64 {
	checkProbPanic(p)
	// Bracket using component quantiles, then bisect the mixture CDF.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.Components {
		lo = math.Min(lo, c.Quantile(p))
		hi = math.Max(hi, c.Quantile(p))
	}
	if lo == hi {
		return lo
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

func (m *Mixture) Sample(r *Rand) float64 {
	u := r.Float64()
	c := 0.0
	for i, w := range m.Weights {
		c += w
		if u < c {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

func (m *Mixture) String() string {
	return fmt.Sprintf("Mixture{%d components}", len(m.Components))
}
