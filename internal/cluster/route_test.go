package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/randvar"
	"repro/internal/server"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Primary: fmt.Sprintf("10.0.0.%d:7433", i+1)}
	}
	return nodes
}

// Rendezvous hashing must be deterministic across independent planners,
// spread keys, and move only the departed node's keys on membership
// change.
func TestRendezvousPlacement(t *testing.T) {
	nodes := testNodes(4)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("stream-%d", i)
		a := rendezvousPick(nodes, key)
		if b := rendezvousPick(nodes, key); a != b {
			t.Fatalf("pick(%q) not deterministic: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("node %d received no keys out of 400: %v", i, counts)
		}
	}
	// Removing node 3: keys on nodes 0-2 must not move.
	smaller := nodes[:3]
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("stream-%d", i)
		was := rendezvousPick(nodes, key)
		if was == 3 {
			continue
		}
		if now := rendezvousPick(smaller, key); now != was {
			t.Fatalf("key %q moved from %d to %d when an unrelated node left", key, was, now)
		}
	}
}

// findSplitStreams returns two stream names rendezvous places on
// different nodes (deterministic search).
func findSplitStreams(t *testing.T, tp *topo) (string, string) {
	t.Helper()
	base := "s0"
	n0 := tp.registerStream(base, base+" x y:dist")
	for i := 1; i < 64; i++ {
		name := fmt.Sprintf("s%d", i)
		if n := tp.registerStream(name, name+" x y:dist"); n != n0 {
			return base, name
		}
	}
	t.Fatal("could not find two streams on different nodes")
	return "", ""
}

// Join-aware co-location: clean groups merge onto one node with DDL
// replay moves; a dirty group anchors the merge; two dirty groups on
// different nodes refuse.
func TestJoinColocationRules(t *testing.T) {
	nodes := testNodes(3)
	tp, err := newTopo(nodes)
	if err != nil {
		t.Fatal(err)
	}
	a, b := findSplitStreams(t, tp)
	na, _ := tp.streamNode(a)
	nb, _ := tp.streamNode(b)
	if na == nb {
		t.Fatal("precondition: a and b on different nodes")
	}

	// Clean + clean: merge happens, every moved stream carries its DDL.
	join := fmt.Sprintf("SELECT %s.x FROM %s JOIN %s ON %s.x = %s.x WINDOW 4 ROWS", a, a, b, a, b)
	node, moves, err := tp.placeQuery("j1", join)
	if err != nil {
		t.Fatal(err)
	}
	if node != na && node != nb {
		t.Fatalf("join landed on node %d, expected %d or %d", node, na, nb)
	}
	if len(moves) == 0 {
		t.Fatal("expected at least one re-home move")
	}
	for _, mv := range moves {
		if mv.node != node {
			t.Fatalf("move %v targets node %d, join is on %d", mv, mv.node, node)
		}
		if mv.ddl == "" {
			t.Fatalf("move %v lost its DDL", mv)
		}
	}
	if got, _ := tp.streamNode(a); got != node {
		t.Fatalf("stream %s on node %d after merge, want %d", a, got, node)
	}
	if got, _ := tp.streamNode(b); got != node {
		t.Fatalf("stream %s on node %d after merge, want %d", b, got, node)
	}

	// Dirty group anchors: c is clean, d is dirty → group moves to d's
	// node.
	tp2, _ := newTopo(nodes)
	c, d := findSplitStreams(t, tp2)
	nd, _ := tp2.streamNode(d)
	tp2.markDirty(d)
	join2 := fmt.Sprintf("SELECT %s.x FROM %s JOIN %s ON %s.x = %s.x WINDOW 4 ROWS", c, c, d, c, d)
	node2, _, err := tp2.placeQuery("j2", join2)
	if err != nil {
		t.Fatal(err)
	}
	if node2 != nd {
		t.Fatalf("join with dirty %s placed on %d, want %s's node %d", d, node2, d, nd)
	}

	// Dirty + dirty on different nodes: refuse rather than silently lose
	// data locality.
	tp3, _ := newTopo(nodes)
	e, g := findSplitStreams(t, tp3)
	tp3.markDirty(e)
	tp3.markDirty(g)
	join3 := fmt.Sprintf("SELECT %s.x FROM %s JOIN %s ON %s.x = %s.x WINDOW 4 ROWS", e, e, g, e, g)
	if _, _, err := tp3.placeQuery("j3", join3); err == nil {
		t.Fatal("expected refusal to co-locate two dirty groups on different nodes")
	}

	// Unregistered stream: error, not a guess.
	if _, _, err := tp.placeQuery("j4", "SELECT x FROM nosuch"); err == nil {
		t.Fatal("expected error for unregistered stream")
	}
}

// twoNodeCluster boots two durable primaries, each with one replica, and
// returns the cluster nodes plus the backing tnodes.
func twoNodeCluster(t *testing.T) ([]Node, []*tnode, []*tnode) {
	t.Helper()
	p1 := startPrimary(t, 1, 1<<20, 0)
	p2 := startPrimary(t, 2, 1<<20, 0)
	f1 := startFollower(t, 2, p1.shipAddr)
	f2 := startFollower(t, 1, p2.shipAddr)
	nodes := []Node{
		{Primary: p1.addr, Replicas: []string{f1.addr}},
		{Primary: p2.addr, Replicas: []string{f2.addr}},
	}
	return nodes, []*tnode{p1, p2}, []*tnode{f1, f2}
}

func catchUpAll(t *testing.T, primaries, followers []*tnode) {
	t.Helper()
	for i := range primaries {
		waitCaughtUp(t, primaries[i], followers[i])
	}
}

// The embedded cluster client end to end: sharded DDL, join co-location
// with live DDL replay, routed ingest, replica reads, merged DATA.
func TestClusterClientEndToEnd(t *testing.T) {
	nodes, primaries, followers := twoNodeCluster(t)
	cl, err := NewClient(nodes, ClientOptions{Seed: 42, Retries: 2, RetryBase: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	// Find two streams the hash splits across the nodes, registering
	// through the client (raw DDL keeps the schema helper out of the
	// way).
	var a, b string
	n0 := cl.topo.registerStream("t0", "t0 seq temp:dist")
	if err := clientDo(cl, n0, "STREAM t0 seq temp:dist"); err != nil {
		t.Fatal(err)
	}
	a = "t0"
	for i := 1; i < 64 && b == ""; i++ {
		name := fmt.Sprintf("t%d", i)
		if n := cl.topo.registerStream(name, name+" seq temp:dist"); n != n0 {
			if err := clientDo(cl, n, "STREAM "+name+" seq temp:dist"); err != nil {
				t.Fatal(err)
			}
			b = name
		}
	}
	if b == "" {
		t.Fatal("hash put 64 streams on one node")
	}

	// Single-stream query on a's node; subscribe via the replica.
	if err := cl.Query("qa", "SELECT temp FROM "+a); err != nil {
		t.Fatal(err)
	}
	// Join across nodes: b's clean group re-homes onto one node.
	join := fmt.Sprintf("SELECT %s.temp FROM %s JOIN %s ON %s.seq = %s.seq WINDOW 4 ROWS", a, a, b, a, b)
	if err := cl.Query("qj", join); err != nil {
		t.Fatalf("join placement: %v", err)
	}
	naj, _ := cl.topo.streamNode(a)
	nbj, _ := cl.topo.streamNode(b)
	if naj != nbj {
		t.Fatalf("join inputs still split: %d vs %d", naj, nbj)
	}

	// Subscribe lands on qa's replica, which must first apply the
	// replicated QUERY record.
	catchUpAll(t, primaries, followers)
	if err := cl.Subscribe("qa"); err != nil {
		t.Fatal(err)
	}

	// Routed ingest to both streams.
	rows := batchRowsRaw(t, 3)
	if _, err := cl.InsertBatch(a, rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InsertBatch(b, rows...); err != nil {
		t.Fatal(err)
	}
	catchUpAll(t, primaries, followers)

	// Replica-served stats: qa saw 3 tuples.
	st, err := cl.Stats("qa")
	if err != nil {
		t.Fatal(err)
	}
	if st.In != 3 {
		t.Fatalf("qa In = %d, want 3", st.In)
	}
	if _, err := cl.QueryMetrics("qa"); err != nil {
		t.Fatal(err)
	}
	if plan, err := cl.Explain("qa"); err != nil || plan == "" {
		t.Fatalf("explain: %q, %v", plan, err)
	}

	// Subscribed DATA flowed through the merged channel.
	select {
	case d := <-cl.Data():
		if d.QueryID != "qa" {
			t.Fatalf("unexpected data for %q", d.QueryID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no DATA arrived on the merged channel")
	}

	if err := cl.CloseQuery("qa"); err != nil {
		t.Fatal(err)
	}
}

// The router proxies the full protocol: sharded DDL, placed queries,
// verbatim DATA relay to attached clients, replica reads, failover
// ingest.
func TestRouterEndToEnd(t *testing.T) {
	nodes, primaries, followers := twoNodeCluster(t)
	rt, err := NewRouter(nodes, quiet, RouterOptions{Retries: 2, RetryBase: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.Serve()
	t.Cleanup(func() { rt.Close() })

	rc := dialRaw(t, addr.String())
	if rep := rc.cmd("PING"); rep[len(rep)-1] != "OK pong" {
		t.Fatalf("PING: %v", rep)
	}
	// Spread streams across both nodes through the router.
	names := []string{}
	seen := map[int]bool{}
	for i := 0; i < 64 && len(seen) < 2; i++ {
		name := fmt.Sprintf("r%d", i)
		rc.mustOK("STREAM " + name + " seq temp:dist")
		n, ok := rt.topo.streamNode(name)
		if !ok {
			t.Fatalf("router did not place %s", name)
		}
		seen[n] = true
		names = append(names, name)
	}
	if len(seen) < 2 {
		t.Fatal("router put 64 streams on one node")
	}
	first, last := names[0], names[len(names)-1]
	rc.mustOK("QUERY rq1 SELECT temp FROM " + first)
	// ATTACH routes to the query's replica, which must first apply the
	// replicated QUERY record.
	catchUpAll(t, primaries, followers)
	rc.mustOK("ATTACH rq1")
	// The OK comes from the primary, the relayed DATA frame from the
	// replica once the insert replicates — either order is legal on the
	// wire.
	rep := rc.mustOK("INSERT " + first + " 1 N(60,4,25)")
	frames := rep[:len(rep)-1]
	if len(frames) == 0 {
		frames = collectData(t, rc, 1)
	}
	if !strings.HasPrefix(frames[0], "DATA rq1 ") {
		t.Fatalf("expected relayed DATA through router, got %v", frames)
	}
	rc.mustOK("INSERT " + last + " 1 N(50,4,25)")

	// Ingest with a client-minted request id retries across failover
	// targets (here it just succeeds on the primary).
	rc.mustOK("INSERT " + first + " 2 N(61,4,25) @req-1")
	// A retried duplicate is answered from the dedup window, not
	// re-applied.
	dup := rc.mustOK("INSERT " + first + " 2 N(61,4,25) @req-1")
	if !strings.HasPrefix(dup[len(dup)-1], "OK inserted") {
		t.Fatalf("dedup replay: %v", dup)
	}
	catchUpAll(t, primaries, followers)
	stats := rc.mustOK("STATS rq1")
	if !strings.Contains(stats[len(stats)-1], `"In":2,`) {
		t.Fatalf("rq1 stats (dedup must keep In at 2): %s", stats[len(stats)-1])
	}

	// Unknown stream and unknown query get routing errors.
	if rep := rc.cmd("INSERT nosuch 1 N(1,1,1)"); !strings.HasPrefix(rep[len(rep)-1], "ERR") {
		t.Fatalf("unknown stream: %v", rep)
	}
	if rep := rc.cmd("CLOSE nosuchq"); !strings.HasPrefix(rep[len(rep)-1], "ERR") {
		t.Fatalf("unknown query: %v", rep)
	}
	rc.mustOK("CLOSE rq1")
	if rep := rc.cmd("QUIT"); rep[len(rep)-1] != "OK bye" {
		t.Fatalf("QUIT: %v", rep)
	}
}

// clientDo issues one raw command on a node's primary through the
// cluster client's cached connection.
func clientDo(cl *Client, node int, line string) error {
	c, err := cl.clientFor(cl.topo.primaryAddr(node))
	if err != nil {
		return err
	}
	_, err = c.Do(line)
	return err
}

// batchRowsRaw mirrors the server chaos suite's batch builder.
func batchRowsRaw(t *testing.T, n int) [][]randvar.Field {
	t.Helper()
	rows := make([][]randvar.Field, n)
	for i := range rows {
		f, err := server.ParseFieldSpec(fmt.Sprintf("N(%d.5,2.25,%d)", 10+i, 20+i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = []randvar.Field{randvar.Det(float64(i)), f}
	}
	return rows
}
