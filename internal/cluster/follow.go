package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// ErrResyncRequired is the terminal follower error: the primary offered a
// snapshot OLDER than this follower's state, so neither fast-forwarding
// onto it nor replaying forward from it can reconcile the histories. The
// operator restarts the follower with a fresh engine (it then accepts the
// snapshot and catches up).
var ErrResyncRequired = errors.New("cluster: follower has diverged past the primary's wal horizon; restart with a fresh engine to resync")

// ErrStalePrimary is the terminal follower error for epoch fencing: the
// node being followed announced (or implied) an epoch below ours, so it
// lost a failover it has not caught up with. Following it would re-apply
// superseded history.
var ErrStalePrimary = errors.New("cluster: primary is at a stale epoch")

// RejoinError is the terminal follower error a fenced rejoiner receives:
// the primary found our WAL suffix diverged past an epoch change. The
// rejoin driver truncates the local WAL after SafeLSN, drops newer
// checkpoints, re-recovers, and follows again (see Rejoin).
type RejoinError struct {
	SafeLSN uint64 // last epoch-consistent LSN; everything after it is diverged
	Epoch   uint64 // the primary's current epoch
}

func (e *RejoinError) Error() string {
	return fmt.Sprintf("cluster: wal suffix diverged past epoch change: truncate after lsn %d and rejoin at epoch %d", e.SafeLSN, e.Epoch)
}

// FollowOptions tunes the replica-side replication loop. Zero values mean
// defaults.
type FollowOptions struct {
	// DialTimeout bounds each connect to the primary (default 5s).
	DialTimeout time.Duration
	// RetryBase and RetryMax shape reconnect backoff (defaults 50ms, 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// ReadTimeout is the max silence tolerated from the primary before
	// reconnecting (default 5s; heartbeats arrive every ~100ms).
	ReadTimeout time.Duration
}

func (o FollowOptions) normalize() FollowOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	return o
}

// Follower connects a read-only server to a primary's ShipServer and
// applies the shipped WAL stream through Server.ApplyReplicated. The
// server keeps serving ATTACH/SUBSCRIBE/STATS/METRICS traffic while
// records apply; Promote flips it writable after the stream stops.
type Follower struct {
	srv     *server.Server
	primary string
	logger  *log.Logger
	opts    FollowOptions

	lastApplied atomic.Uint64
	primaryLSN  atomic.Uint64
	lastContact atomic.Int64 // unix nanos of the last frame (or dial) from the primary
	dialFails   atomic.Int64 // consecutive failed dials; reset on success

	mu       sync.Mutex
	nc       net.Conn
	closed   bool
	promoted bool
	termErr  error
	done     chan struct{}
	started  bool
}

// NewFollower wires a follower for a server running with Options.ReadOnly.
// The server must be fresh (no streams, no queries) unless it recovered
// from its own data dir at the LSN the primary still retains.
func NewFollower(srv *server.Server, primaryAddr string, logger *log.Logger, opts FollowOptions) *Follower {
	f := &Follower{
		srv:     srv,
		primary: primaryAddr,
		logger:  logger,
		opts:    opts.normalize(),
		done:    make(chan struct{}),
	}
	srv.SetReplLagFn(func() int64 {
		frontier, applied := f.primaryLSN.Load(), f.lastApplied.Load()
		if frontier > applied {
			return int64(frontier - applied)
		}
		return 0
	})
	return f
}

// SetLastApplied seeds the replication cursor, for a follower that
// recovered state locally before connecting. Call before Start.
func (f *Follower) SetLastApplied(lsn uint64) { f.lastApplied.Store(lsn) }

// Target returns the address the replication loop currently dials.
func (f *Follower) Target() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

// Retarget points the replication loop at a different primary (the failover
// manager calls it when a higher-ranked peer won the promotion race). The
// live connection, if any, is closed so the next dial goes to the new
// address; the replication cursor carries over — both nodes share the LSN
// space, so the handshake resumes exactly where the old stream stopped.
func (f *Follower) Retarget(addr string) {
	f.mu.Lock()
	if f.primary == addr {
		f.mu.Unlock()
		return
	}
	f.primary = addr
	nc := f.nc
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// LastApplied returns the LSN of the last record applied locally.
func (f *Follower) LastApplied() uint64 { return f.lastApplied.Load() }

// PrimaryLSN returns the primary's last known shippable LSN (from records
// and heartbeats); 0 before the first contact.
func (f *Follower) PrimaryLSN() uint64 { return f.primaryLSN.Load() }

// LastContact returns when the primary was last heard from (a frame
// arrived or a dial succeeded); zero time before the first contact. The
// failure detector reads this to count missed heartbeat windows.
func (f *Follower) LastContact() time.Time {
	n := f.lastContact.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// DialFailures returns the number of consecutive failed dials to the
// primary; 0 after any successful connect.
func (f *Follower) DialFailures() int64 { return f.dialFails.Load() }

func (f *Follower) touchContact() { f.lastContact.Store(time.Now().UnixNano()) }

// Err returns the terminal replication error, if the loop stopped on one.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.termErr
}

// Start launches the replication loop: connect, sync, apply, reconnect on
// transport errors, stop on terminal ones (divergence, fencing, apply
// failure).
func (f *Follower) Start() {
	f.mu.Lock()
	if f.started || f.closed {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	go f.run()
}

// WaitCaughtUp blocks until the follower has applied through at least lsn,
// or the timeout passes. Used by tests and read-your-writes callers.
func (f *Follower) WaitCaughtUp(lsn uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.lastApplied.Load() >= lsn {
			return true
		}
		select {
		case <-f.done:
			return f.lastApplied.Load() >= lsn
		case <-time.After(time.Millisecond):
		}
	}
	return f.lastApplied.Load() >= lsn
}

// Promote stops replication and flips the server writable: the MANUAL
// failover path, kept for operators driving promotion by hand. It does not
// bump the epoch; the automatic path (FailoverManager.promote) journals a
// RecEpoch first so the new history is fenced against the old primary.
func (f *Follower) Promote() {
	f.stop(true)
	f.srv.SetReadOnly(false)
	f.logf("follower: promoted at lsn %d", f.lastApplied.Load())
}

// Close stops replication, leaving the server read-only.
func (f *Follower) Close() { f.stop(false) }

func (f *Follower) stop(promote bool) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.closed = true
	f.promoted = promote
	nc := f.nc
	started := f.started
	if !started {
		close(f.done)
	}
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	if started {
		<-f.done
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.logger != nil {
		f.logger.Printf(format, args...)
	}
}

// isTerminal reports whether the replication loop must stop rather than
// reconnect: divergence, epoch fencing, or a partial local apply.
func isTerminal(err error) bool {
	var re *RejoinError
	return errors.Is(err, ErrResyncRequired) || errors.Is(err, ErrStalePrimary) ||
		errors.As(err, &re) || isApplyError(err)
}

func (f *Follower) run() {
	defer close(f.done)
	attempt := 0
	for {
		f.mu.Lock()
		stopped := f.closed
		f.mu.Unlock()
		if stopped {
			return
		}
		progressed, err := f.followOnce()
		if err != nil {
			if isTerminal(err) {
				f.mu.Lock()
				f.termErr = err
				f.mu.Unlock()
				f.logf("follower: terminal: %v", err)
				return
			}
			f.mu.Lock()
			stopped = f.closed
			f.mu.Unlock()
			if stopped {
				return
			}
			f.logf("follower: %v (reconnecting)", err)
		}
		if progressed {
			attempt = 0
		}
		attempt++
		d := f.opts.RetryBase << uint(min(attempt-1, 10))
		if d > f.opts.RetryMax {
			d = f.opts.RetryMax
		}
		time.Sleep(d)
	}
}

// applyError marks a failure inside ApplyReplicated or RestoreSnapshot:
// state may have partially changed, so reconnect-and-replay is unsafe.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

func isApplyError(err error) bool {
	var ae *applyError
	return errors.As(err, &ae)
}

// followOnce runs one connection's lifetime: handshake, then apply
// messages until the link breaks. Returns whether any record was applied
// (resets reconnect backoff).
func (f *Follower) followOnce() (progressed bool, err error) {
	nc, err := net.DialTimeout("tcp", f.Target(), f.opts.DialTimeout)
	if err != nil {
		f.dialFails.Add(1)
		return false, err
	}
	f.dialFails.Store(0)
	f.touchContact()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		nc.Close()
		return false, nil
	}
	f.nc = nc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		if f.nc == nc {
			f.nc = nil
		}
		f.mu.Unlock()
		nc.Close()
	}()

	nc.SetWriteDeadline(time.Now().Add(f.opts.DialTimeout))
	if _, err := fmt.Fprintf(nc, "SYNC %d %d\n", f.lastApplied.Load(), f.srv.Epoch()); err != nil {
		return false, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		nc.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		line, err := readLine(br, maxShipLine)
		if err != nil {
			return progressed, err
		}
		f.touchContact()
		switch {
		case strings.HasPrefix(line, "REC "):
			if err := f.handleRec(line[len("REC "):]); err != nil {
				return progressed, err
			}
			progressed = true
		case strings.HasPrefix(line, "HB "):
			if err := f.handleHB(line[len("HB "):]); err != nil {
				return progressed, err
			}
		case strings.HasPrefix(line, "SNAP "):
			if err := f.handleSnap(br, line[len("SNAP "):]); err != nil {
				return progressed, err
			}
			progressed = true
		case strings.HasPrefix(line, "FENCE "):
			// The node we synced to fenced ITSELF because our epoch is
			// higher: it is a stale ex-primary. Stop following it.
			return progressed, fmt.Errorf("%w: it fenced itself on our epoch (%s)", ErrStalePrimary, line[len("FENCE "):])
		case strings.HasPrefix(line, "TRUNC "):
			return progressed, f.handleTrunc(line[len("TRUNC "):])
		default:
			return progressed, fmt.Errorf("cluster: unexpected ship line %.40q", line)
		}
	}
}

// checkFrameEpoch rejects frames from a primary whose announced epoch is
// below ours: it lost a failover and has not rejoined yet, so its stream
// is superseded history. Frames at our epoch or above are fine — during a
// rejoin the new primary streams at a higher epoch and the journaled
// RecEpoch record advances ours at exactly the right LSN.
func (f *Follower) checkFrameEpoch(frameEpoch uint64) error {
	if cur := f.srv.Epoch(); frameEpoch < cur {
		return fmt.Errorf("%w: frame epoch %d below local %d", ErrStalePrimary, frameEpoch, cur)
	}
	return nil
}

// handleTrunc processes the primary's divergence verdict: everything we
// applied after SafeLSN belongs to a fenced-off history. The server is
// fenced immediately (writes start failing with the stale-epoch sentinel)
// and the terminal RejoinError tells the rejoin driver where to cut.
func (f *Follower) handleTrunc(args string) error {
	var safe, epoch uint64
	if _, err := fmt.Sscanf(args, "%d %d", &safe, &epoch); err != nil {
		return fmt.Errorf("cluster: bad TRUNC %q: %w", args, err)
	}
	f.srv.Fence(epoch)
	f.logf("follower: diverged at lsn %d; primary epoch %d keeps only ..%d", f.lastApplied.Load(), epoch, safe)
	return &RejoinError{SafeLSN: safe, Epoch: epoch}
}

func (f *Follower) handleSnap(br *bufio.Reader, args string) error {
	var lsn, epoch uint64
	var n int
	if _, err := fmt.Sscanf(args, "%d %d %d", &lsn, &epoch, &n); err != nil {
		return fmt.Errorf("cluster: bad SNAP header %q: %w", args, err)
	}
	if n < 0 || n > maxShipLine {
		return fmt.Errorf("cluster: SNAP size %d out of range", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(br, raw); err != nil {
		return fmt.Errorf("cluster: reading snapshot body: %w", err)
	}
	if b, err := br.ReadByte(); err != nil || b != '\n' {
		return fmt.Errorf("cluster: snapshot body not newline-terminated")
	}
	if err := f.checkFrameEpoch(epoch); err != nil {
		return err
	}
	last := f.lastApplied.Load()
	if last != 0 && lsn < last {
		// The offered snapshot is OLDER than our state: the primary lost a
		// suffix we hold (lax fsync + crash). Installing it would roll us
		// back and re-applying the stream would diverge. Operator decision.
		return ErrResyncRequired
	}
	snap, err := decodeSnapshot(raw)
	if err != nil {
		return &applyError{fmt.Errorf("cluster: decoding shipped snapshot: %w", err)}
	}
	if last == 0 {
		err = f.srv.RestoreSnapshot(snap)
	} else {
		// Fast-forward: the primary truncated its WAL past our position (it
		// may do this repeatedly while crash-looping), so the records between
		// last and lsn are gone — but the snapshot at lsn ⊇ our state at
		// last by the determinism invariant, so replacing wholesale skips
		// nothing.
		err = f.srv.ReinstallSnapshot(snap)
	}
	if err != nil {
		return &applyError{err}
	}
	f.lastApplied.Store(lsn)
	f.observeFrontier(lsn, time.Now().UnixNano())
	f.logf("follower: installed snapshot lsn=%d epoch=%d (%d bytes, fast-forward=%v)", lsn, epoch, n, last != 0)
	return nil
}

func (f *Follower) handleRec(args string) error {
	// REC args: <lsn> <epoch> <type> <shipUnixNano> <payload>; payload may
	// be empty and may contain spaces.
	cut := func(s string) (tok, rest string) {
		if i := strings.IndexByte(s, ' '); i >= 0 {
			return s[:i], s[i+1:]
		}
		return s, ""
	}
	lsnStr, rest := cut(args)
	epochStr, rest := cut(rest)
	typStr, rest := cut(rest)
	tsStr, payload := cut(rest)
	lsn, err := strconv.ParseUint(lsnStr, 10, 64)
	if err != nil {
		return fmt.Errorf("cluster: bad REC lsn in %q", args)
	}
	epoch, err := strconv.ParseUint(epochStr, 10, 64)
	if err != nil {
		return fmt.Errorf("cluster: bad REC epoch in %q", args)
	}
	typ, err := strconv.ParseUint(typStr, 10, 8)
	if err != nil {
		return fmt.Errorf("cluster: bad REC type in %q", args)
	}
	ts, err := strconv.ParseInt(tsStr, 10, 64)
	if err != nil {
		return fmt.Errorf("cluster: bad REC timestamp in %q", args)
	}
	if err := f.checkFrameEpoch(epoch); err != nil {
		return err
	}
	last := f.lastApplied.Load()
	if lsn <= last {
		// Possible after a reconnect that re-ships the tail; applying
		// twice would diverge, skipping is always safe (same stream).
		return nil
	}
	if lsn != last+1 {
		return fmt.Errorf("cluster: lsn gap: applied %d, received %d", last, lsn)
	}
	if err := f.srv.ApplyReplicated(wal.Record{LSN: lsn, Type: wal.RecordType(typ), Payload: []byte(payload)}); err != nil {
		return &applyError{err}
	}
	f.lastApplied.Store(lsn)
	f.observeFrontier(lsn, ts)
	return nil
}

func (f *Follower) handleHB(args string) error {
	var lastLSN, epoch uint64
	var ts int64
	if _, err := fmt.Sscanf(args, "%d %d %d", &lastLSN, &epoch, &ts); err != nil {
		return fmt.Errorf("cluster: bad HB %q: %w", args, err)
	}
	if err := f.checkFrameEpoch(epoch); err != nil {
		return err
	}
	f.observeFrontier(lastLSN, ts)
	return nil
}

// observeFrontier folds one observation of the primary's shippable
// frontier into the lag gauges. lag_records is the primary's frontier
// minus what we applied; lag_seconds is 0 when caught up, else the age of
// that observation (the clocks are the primary's send time vs our receive
// time, so cross-host skew shifts it — it is a gauge for dashboards, not
// an ordering primitive).
func (f *Follower) observeFrontier(frontier uint64, shipNano int64) {
	for {
		cur := f.primaryLSN.Load()
		if frontier <= cur {
			frontier = cur
			break
		}
		if f.primaryLSN.CompareAndSwap(cur, frontier) {
			break
		}
	}
	applied := f.lastApplied.Load()
	var lagRec int64
	if frontier > applied {
		lagRec = int64(frontier - applied)
	}
	gLagRecords.Set(lagRec)
	if lagRec == 0 {
		gLagSeconds.Set(0)
	} else {
		gLagSeconds.Set(time.Since(time.Unix(0, shipNano)).Seconds())
	}
}
