package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// ErrResyncRequired is the terminal follower error: the primary offered a
// snapshot but this follower already holds state, so applying it would
// merge divergent histories. The operator restarts the follower with a
// fresh engine (it then accepts the snapshot and catches up).
var ErrResyncRequired = errors.New("cluster: follower has diverged past the primary's wal horizon; restart with a fresh engine to resync")

// FollowOptions tunes the replica-side replication loop. Zero values mean
// defaults.
type FollowOptions struct {
	// DialTimeout bounds each connect to the primary (default 5s).
	DialTimeout time.Duration
	// RetryBase and RetryMax shape reconnect backoff (defaults 50ms, 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// ReadTimeout is the max silence tolerated from the primary before
	// reconnecting (default 5s; heartbeats arrive every ~100ms).
	ReadTimeout time.Duration
}

func (o FollowOptions) normalize() FollowOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	return o
}

// Follower connects a read-only server to a primary's ShipServer and
// applies the shipped WAL stream through Server.ApplyReplicated. The
// server keeps serving ATTACH/SUBSCRIBE/STATS/METRICS traffic while
// records apply; Promote flips it writable after the stream stops.
type Follower struct {
	srv     *server.Server
	primary string
	logger  *log.Logger
	opts    FollowOptions

	lastApplied atomic.Uint64
	primaryLSN  atomic.Uint64

	mu       sync.Mutex
	nc       net.Conn
	closed   bool
	promoted bool
	termErr  error
	done     chan struct{}
	started  bool
}

// NewFollower wires a follower for a server running with Options.ReadOnly.
// The server must be fresh (no streams, no queries) unless it recovered
// from its own data dir at the LSN the primary still retains.
func NewFollower(srv *server.Server, primaryAddr string, logger *log.Logger, opts FollowOptions) *Follower {
	return &Follower{
		srv:     srv,
		primary: primaryAddr,
		logger:  logger,
		opts:    opts.normalize(),
		done:    make(chan struct{}),
	}
}

// SetLastApplied seeds the replication cursor, for a follower that
// recovered state locally before connecting. Call before Start.
func (f *Follower) SetLastApplied(lsn uint64) { f.lastApplied.Store(lsn) }

// LastApplied returns the LSN of the last record applied locally.
func (f *Follower) LastApplied() uint64 { return f.lastApplied.Load() }

// PrimaryLSN returns the primary's last known shippable LSN (from records
// and heartbeats); 0 before the first contact.
func (f *Follower) PrimaryLSN() uint64 { return f.primaryLSN.Load() }

// Err returns the terminal replication error, if the loop stopped on one.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.termErr
}

// Start launches the replication loop: connect, sync, apply, reconnect on
// transport errors, stop on terminal ones (divergence, apply failure).
func (f *Follower) Start() {
	f.mu.Lock()
	if f.started || f.closed {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	go f.run()
}

// WaitCaughtUp blocks until the follower has applied through at least lsn,
// or the timeout passes. Used by tests and read-your-writes callers.
func (f *Follower) WaitCaughtUp(lsn uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.lastApplied.Load() >= lsn {
			return true
		}
		select {
		case <-f.done:
			return f.lastApplied.Load() >= lsn
		case <-time.After(time.Millisecond):
		}
	}
	return f.lastApplied.Load() >= lsn
}

// Promote stops replication and flips the server writable: the failover
// path. It waits for the apply loop to finish its in-flight record, so no
// replicated apply can race a newly accepted write. The promoted server
// has no WAL of its own unless it was started durable; its dedup window is
// failover-warm because @reqid entries were replicated with the records.
func (f *Follower) Promote() {
	f.stop(true)
	f.srv.SetReadOnly(false)
	f.logf("follower: promoted at lsn %d", f.lastApplied.Load())
}

// Close stops replication, leaving the server read-only.
func (f *Follower) Close() { f.stop(false) }

func (f *Follower) stop(promote bool) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.closed = true
	f.promoted = promote
	nc := f.nc
	started := f.started
	if !started {
		close(f.done)
	}
	f.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	if started {
		<-f.done
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.logger != nil {
		f.logger.Printf(format, args...)
	}
}

func (f *Follower) run() {
	defer close(f.done)
	attempt := 0
	for {
		f.mu.Lock()
		stopped := f.closed
		f.mu.Unlock()
		if stopped {
			return
		}
		progressed, err := f.followOnce()
		if err != nil {
			if errors.Is(err, ErrResyncRequired) || isApplyError(err) {
				f.mu.Lock()
				f.termErr = err
				f.mu.Unlock()
				f.logf("follower: terminal: %v", err)
				return
			}
			f.mu.Lock()
			stopped = f.closed
			f.mu.Unlock()
			if stopped {
				return
			}
			f.logf("follower: %v (reconnecting)", err)
		}
		if progressed {
			attempt = 0
		}
		attempt++
		d := f.opts.RetryBase << uint(min(attempt-1, 10))
		if d > f.opts.RetryMax {
			d = f.opts.RetryMax
		}
		time.Sleep(d)
	}
}

// applyError marks a failure inside ApplyReplicated or RestoreSnapshot:
// state may have partially changed, so reconnect-and-replay is unsafe.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

func isApplyError(err error) bool {
	var ae *applyError
	return errors.As(err, &ae)
}

// followOnce runs one connection's lifetime: handshake, then apply
// messages until the link breaks. Returns whether any record was applied
// (resets reconnect backoff).
func (f *Follower) followOnce() (progressed bool, err error) {
	nc, err := net.DialTimeout("tcp", f.primary, f.opts.DialTimeout)
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		nc.Close()
		return false, nil
	}
	f.nc = nc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		if f.nc == nc {
			f.nc = nil
		}
		f.mu.Unlock()
		nc.Close()
	}()

	nc.SetWriteDeadline(time.Now().Add(f.opts.DialTimeout))
	if _, err := fmt.Fprintf(nc, "SYNC %d\n", f.lastApplied.Load()); err != nil {
		return false, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		nc.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		line, err := readLine(br, maxShipLine)
		if err != nil {
			return progressed, err
		}
		switch {
		case strings.HasPrefix(line, "REC "):
			if err := f.handleRec(line[len("REC "):]); err != nil {
				return progressed, err
			}
			progressed = true
		case strings.HasPrefix(line, "HB "):
			if err := f.handleHB(line[len("HB "):]); err != nil {
				return progressed, err
			}
		case strings.HasPrefix(line, "SNAP "):
			if err := f.handleSnap(br, line[len("SNAP "):]); err != nil {
				return progressed, err
			}
			progressed = true
		default:
			return progressed, fmt.Errorf("cluster: unexpected ship line %.40q", line)
		}
	}
}

func (f *Follower) handleSnap(br *bufio.Reader, args string) error {
	var lsn uint64
	var n int
	if _, err := fmt.Sscanf(args, "%d %d", &lsn, &n); err != nil {
		return fmt.Errorf("cluster: bad SNAP header %q: %w", args, err)
	}
	if n < 0 || n > maxShipLine {
		return fmt.Errorf("cluster: SNAP size %d out of range", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(br, raw); err != nil {
		return fmt.Errorf("cluster: reading snapshot body: %w", err)
	}
	if b, err := br.ReadByte(); err != nil || b != '\n' {
		return fmt.Errorf("cluster: snapshot body not newline-terminated")
	}
	if f.lastApplied.Load() != 0 {
		// The primary no longer retains our suffix and we already hold
		// state — installing the snapshot would silently drop the records
		// between our LSN and its LSN. Operator decision, not automatic.
		return ErrResyncRequired
	}
	snap, err := decodeSnapshot(raw)
	if err != nil {
		return &applyError{fmt.Errorf("cluster: decoding shipped snapshot: %w", err)}
	}
	if err := f.srv.RestoreSnapshot(snap); err != nil {
		return &applyError{err}
	}
	f.lastApplied.Store(lsn)
	f.observeFrontier(lsn, time.Now().UnixNano())
	f.logf("follower: installed snapshot lsn=%d (%d bytes)", lsn, n)
	return nil
}

func (f *Follower) handleRec(args string) error {
	// REC args: <lsn> <type> <shipUnixNano> <payload>; payload may be
	// empty and may contain spaces.
	p1 := strings.IndexByte(args, ' ')
	if p1 < 0 {
		return fmt.Errorf("cluster: bad REC %q", args)
	}
	p2 := strings.IndexByte(args[p1+1:], ' ')
	if p2 < 0 {
		return fmt.Errorf("cluster: bad REC %q", args)
	}
	p2 += p1 + 1
	p3 := strings.IndexByte(args[p2+1:], ' ')
	rest := ""
	tsStr := args[p2+1:]
	if p3 >= 0 {
		p3 += p2 + 1
		tsStr, rest = args[p2+1:p3], args[p3+1:]
	}
	lsn, err := strconv.ParseUint(args[:p1], 10, 64)
	if err != nil {
		return fmt.Errorf("cluster: bad REC lsn in %q", args)
	}
	typ, err := strconv.ParseUint(args[p1+1:p2], 10, 8)
	if err != nil {
		return fmt.Errorf("cluster: bad REC type in %q", args)
	}
	ts, err := strconv.ParseInt(tsStr, 10, 64)
	if err != nil {
		return fmt.Errorf("cluster: bad REC timestamp in %q", args)
	}
	last := f.lastApplied.Load()
	if lsn <= last {
		// Possible after a reconnect that re-ships the tail; applying
		// twice would diverge, skipping is always safe (same stream).
		return nil
	}
	if lsn != last+1 {
		return fmt.Errorf("cluster: lsn gap: applied %d, received %d", last, lsn)
	}
	if err := f.srv.ApplyReplicated(wal.Record{LSN: lsn, Type: wal.RecordType(typ), Payload: []byte(rest)}); err != nil {
		return &applyError{err}
	}
	f.lastApplied.Store(lsn)
	f.observeFrontier(lsn, ts)
	return nil
}

func (f *Follower) handleHB(args string) error {
	var lastLSN uint64
	var ts int64
	if _, err := fmt.Sscanf(args, "%d %d", &lastLSN, &ts); err != nil {
		return fmt.Errorf("cluster: bad HB %q: %w", args, err)
	}
	f.observeFrontier(lastLSN, ts)
	return nil
}

// observeFrontier folds one observation of the primary's shippable
// frontier into the lag gauges. lag_records is the primary's frontier
// minus what we applied; lag_seconds is 0 when caught up, else the age of
// that observation (the clocks are the primary's send time vs our receive
// time, so cross-host skew shifts it — it is a gauge for dashboards, not
// an ordering primitive).
func (f *Follower) observeFrontier(frontier uint64, shipNano int64) {
	for {
		cur := f.primaryLSN.Load()
		if frontier <= cur {
			frontier = cur
			break
		}
		if f.primaryLSN.CompareAndSwap(cur, frontier) {
			break
		}
	}
	applied := f.lastApplied.Load()
	var lagRec int64
	if frontier > applied {
		lagRec = int64(frontier - applied)
	}
	gLagRecords.Set(lagRec)
	if lagRec == 0 {
		gLagSeconds.Set(0)
	} else {
		gLagSeconds.Set(time.Since(time.Unix(0, shipNano)).Seconds())
	}
}
