package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// Every node must compute the same promotion ladder from the same
// topology with no communication: the ladder is a pure function of
// (primary, peers), ranks form a permutation, and changing the primary
// reshuffles deterministically.
func TestSuccessorRankAgreement(t *testing.T) {
	peers := []string{"10.0.0.1:7431", "10.0.0.2:7431", "10.0.0.3:7431", "10.0.0.4:7431"}
	primary := "10.0.0.9:7431"

	seen := make(map[int]string)
	for _, self := range peers {
		r := successorRank(primary, self, peers)
		if r < 0 || r >= len(peers) {
			t.Fatalf("rank of %s = %d, want 0..%d", self, r, len(peers)-1)
		}
		if prev, dup := seen[r]; dup {
			t.Fatalf("rank %d assigned to both %s and %s", r, prev, self)
		}
		seen[r] = self
	}
	// Agreement: any node computing any peer's rank gets the same answer
	// (successorRank is pure, but assert the property the design rests on).
	for _, self := range peers {
		if got := successorRank(primary, self, peers); seen[got] != self {
			t.Fatalf("ladder disagreement for %s", self)
		}
	}
	// A node absent from the peer list ranks last.
	if got := successorRank(primary, "10.0.0.99:7431", peers); got != len(peers) {
		t.Fatalf("absent self rank = %d, want %d", got, len(peers))
	}
	// Stability: same inputs, same ladder.
	for _, self := range peers {
		if a, b := successorRank(primary, self, peers), successorRank(primary, self, peers); a != b {
			t.Fatalf("rank of %s unstable: %d vs %d", self, a, b)
		}
	}
}

// rankedPeer returns the peer whose rank equals want under primary.
func rankedPeer(t *testing.T, primary string, peers []string, want int) string {
	t.Helper()
	for _, p := range peers {
		if successorRank(primary, p, peers) == want {
			return p
		}
	}
	t.Fatalf("no peer with rank %d", want)
	return ""
}

// The failure detector's state machine, driven tick by tick with an
// injected clock: silence below one SuspectAfter window is fine; between
// the window and this node's graded threshold it only counts a heartbeat
// miss; past the threshold it promotes — exactly once — by journaling an
// epoch bump before going writable.
func TestFailoverManagerTickPromotesOnce(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	// A follower that is wired but never started: LastContact stays zero,
	// so the detector measures silence from its construction-time grace.
	f := NewFollower(p.srv, "127.0.0.1:1", quiet, FollowOptions{})

	peers := []string{"a:1", "b:1", "c:1"}
	self := rankedPeer(t, "pri:1", peers, 1) // threshold = 2 * SuspectAfter
	t0 := time.Unix(1000, 0)
	now := t0
	m := NewFailoverManager(p.srv, f, quiet, FailoverOptions{
		Self:         self,
		Primary:      "pri:1",
		Peers:        peers,
		SuspectAfter: 100 * time.Millisecond,
		Now:          func() time.Time { return now },
		// The whole ladder above is dead: probes fail, clearing promotion.
		ProbeRole: func(string, time.Duration) (RoleProbe, error) {
			return RoleProbe{}, fmt.Errorf("connection refused")
		},
	})
	if m.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", m.Rank())
	}
	wantEpoch := nextCongruentEpoch(1, self, peers)

	missesBefore := mHeartbeatMisses.Value()
	failoversBefore := mFailovers.Value()

	// Within one window: quiet is normal.
	if m.tick(t0.Add(50 * time.Millisecond)) {
		t.Fatal("promoted inside the first SuspectAfter window")
	}
	if got := mHeartbeatMisses.Value() - missesBefore; got != 0 {
		t.Fatalf("heartbeat misses after quiet tick = %d, want 0", got)
	}

	// Past one window but under rank 1's threshold: suspect, don't act.
	if m.tick(t0.Add(150 * time.Millisecond)) {
		t.Fatal("rank 1 promoted before its graded threshold")
	}
	if got := mHeartbeatMisses.Value() - missesBefore; got != 1 {
		t.Fatalf("heartbeat misses = %d, want 1", got)
	}
	if p.srv.Epoch() != 1 {
		t.Fatalf("epoch moved to %d before promotion", p.srv.Epoch())
	}

	// Past the threshold: promote. Epoch bumps and the server is writable.
	if !m.tick(t0.Add(250 * time.Millisecond)) {
		t.Fatal("rank 1 did not promote past 2*SuspectAfter of silence")
	}
	if !m.Promoted() {
		t.Fatal("Promoted() = false after promotion")
	}
	if got := p.srv.Epoch(); got != wantEpoch {
		t.Fatalf("epoch after promotion = %d, want %d", got, wantEpoch)
	}
	if p.srv.ReadOnly() {
		t.Fatal("server still read-only after promotion")
	}
	if got := mFailovers.Value() - failoversBefore; got != 1 {
		t.Fatalf("asdb_failover_total delta = %d, want 1", got)
	}

	// Idempotence: further ticks never re-promote or re-bump.
	if m.tick(t0.Add(10 * time.Second)) {
		t.Fatal("tick reported a second promotion")
	}
	if got := p.srv.Epoch(); got != wantEpoch {
		t.Fatalf("epoch re-bumped to %d", got)
	}
	if got := mFailovers.Value() - failoversBefore; got != 1 {
		t.Fatalf("asdb_failover_total delta after extra ticks = %d, want 1", got)
	}
}

// Rank 0 — the designated successor — acts after a single window.
func TestFailoverManagerRankZeroThreshold(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	f := NewFollower(p.srv, "127.0.0.1:1", quiet, FollowOptions{})
	peers := []string{"a:1", "b:1", "c:1"}
	self := rankedPeer(t, "pri:1", peers, 0)
	t0 := time.Unix(2000, 0)
	m := NewFailoverManager(p.srv, f, quiet, FailoverOptions{
		Self: self, Primary: "pri:1", Peers: peers,
		SuspectAfter: 100 * time.Millisecond,
		Now:          func() time.Time { return t0 },
	})
	if m.Rank() != 0 {
		t.Fatalf("rank = %d, want 0", m.Rank())
	}
	if m.tick(t0.Add(99 * time.Millisecond)) {
		t.Fatal("rank 0 promoted before one full window")
	}
	if !m.tick(t0.Add(101 * time.Millisecond)) {
		t.Fatal("rank 0 did not promote after one window")
	}
	if want := nextCongruentEpoch(1, self, peers); p.srv.Epoch() != want {
		t.Fatalf("epoch = %d, want %d", p.srv.Epoch(), want)
	}
}

// A lower-ranked node whose survey finds an already promoted higher rank
// must stand down instead of promoting: no second epoch bump, the follower
// re-points at the winner's ship address, and the suspicion episode resets
// so the node does not immediately re-survey.
func TestFailoverStandsDownForPromotedPeer(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	f := NewFollower(p.srv, "127.0.0.1:1", quiet, FollowOptions{})
	peers := []string{"a:1", "b:1", "c:1"}
	self := rankedPeer(t, "pri:1", peers, 1)
	t0 := time.Unix(3000, 0)
	probes := 0
	m := NewFailoverManager(p.srv, f, quiet, FailoverOptions{
		Self: self, Primary: "pri:1", Peers: peers,
		SuspectAfter: 100 * time.Millisecond,
		Now:          func() time.Time { return t0 },
		ProbeRole: func(addr string, _ time.Duration) (RoleProbe, error) {
			probes++
			return RoleProbe{Role: "primary", Epoch: 7, ReplAddr: "127.0.0.1:9"}, nil
		},
	})
	failoversBefore := mFailovers.Value()

	if m.tick(t0.Add(250 * time.Millisecond)) {
		t.Fatal("promoted despite a live promoted peer above")
	}
	if m.Promoted() {
		t.Fatal("Promoted() = true after stand-down")
	}
	if probes != 1 {
		t.Fatalf("survey probes = %d, want 1", probes)
	}
	if got := p.srv.Epoch(); got != 1 {
		t.Fatalf("epoch moved to %d on the stood-down node", got)
	}
	if got := f.Target(); got != "127.0.0.1:9" {
		t.Fatalf("follower target = %q, want the winner's ship addr", got)
	}
	if got := mFailovers.Value() - failoversBefore; got != 0 {
		t.Fatalf("asdb_failover_total delta = %d, want 0", got)
	}

	// The stand-down reset the silence measurement: a tick shortly after
	// must not survey again.
	if m.tick(t0.Add(300 * time.Millisecond)) {
		t.Fatal("promoted right after standing down")
	}
	if probes != 1 {
		t.Fatalf("probes after grace reset = %d, want 1 (no new survey)", probes)
	}

	// If the winner then goes silent too, a fresh suspicion episode starts
	// from the stand-down time and surveys again.
	if m.tick(t0.Add(600 * time.Millisecond)) {
		t.Fatal("promoted while the new primary answers probes")
	}
	if probes != 2 {
		t.Fatalf("probes after a fresh episode = %d, want 2", probes)
	}
}

// A lower-ranked node defers while a higher rank is alive but undecided,
// and proceeds only once the ladder above is fully unreachable.
func TestFailoverDefersToLivePeer(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	f := NewFollower(p.srv, "127.0.0.1:1", quiet, FollowOptions{})
	peers := []string{"a:1", "b:1", "c:1"}
	self := rankedPeer(t, "pri:1", peers, 1)
	t0 := time.Unix(4000, 0)
	alive := true
	m := NewFailoverManager(p.srv, f, quiet, FailoverOptions{
		Self: self, Primary: "pri:1", Peers: peers,
		SuspectAfter: 100 * time.Millisecond,
		Now:          func() time.Time { return t0 },
		ProbeRole: func(addr string, _ time.Duration) (RoleProbe, error) {
			if alive {
				return RoleProbe{Role: "follower", Epoch: 1}, nil
			}
			return RoleProbe{}, fmt.Errorf("connection refused")
		},
	})
	for _, dt := range []time.Duration{250, 350, 450} {
		if m.tick(t0.Add(dt * time.Millisecond)) {
			t.Fatalf("promoted at +%dms despite a live higher rank", dt)
		}
	}
	// The higher rank dies without ever promoting: now it is this node's
	// turn.
	alive = false
	if !m.tick(t0.Add(550 * time.Millisecond)) {
		t.Fatal("did not promote once the ladder above was dead")
	}
	if want := nextCongruentEpoch(1, self, peers); p.srv.Epoch() != want {
		t.Fatalf("epoch = %d, want %d", p.srv.Epoch(), want)
	}
}

// The congruence scheme is what makes concurrent promotions safe: any two
// replicas of a shard pick distinct epochs from any pair of starting
// epochs, so their histories can always fence each other.
func TestCongruentEpochsDistinct(t *testing.T) {
	peerSets := [][]string{
		{"a:1", "b:1"},
		{"a:1", "b:1", "c:1"},
		{"c:1", "a:1", "b:1", "d:1", "e:1"}, // unsorted on purpose
	}
	for _, peers := range peerSets {
		for _, curA := range []uint64{1, 2, 5} {
			for _, curB := range []uint64{1, 2, 5} {
				for i, selfA := range peers {
					for j, selfB := range peers {
						if i == j {
							continue
						}
						ea := nextCongruentEpoch(curA, selfA, peers)
						eb := nextCongruentEpoch(curB, selfB, peers)
						if ea <= curA || eb <= curB {
							t.Fatalf("epoch not above current: %s@%d->%d, %s@%d->%d", selfA, curA, ea, selfB, curB, eb)
						}
						if ea == eb {
							t.Fatalf("peers %v: %s@%d and %s@%d both picked epoch %d", peers, selfA, curA, selfB, curB, ea)
						}
					}
				}
			}
		}
	}
	// Duplicate entries collapse into one residue class.
	if a, b := nextCongruentEpoch(1, "a:1", []string{"a:1", "a:1", "b:1"}),
		nextCongruentEpoch(1, "b:1", []string{"a:1", "a:1", "b:1"}); a == b {
		t.Fatalf("duplicate peers broke distinctness: both picked %d", a)
	}
	// A single-replica shard keeps the simple +1 epoch.
	if got := nextCongruentEpoch(1, "a:1", []string{"a:1"}); got != 2 {
		t.Fatalf("single-replica epoch = %d, want 2", got)
	}
}

// Live frames reset the detector: as long as the follower hears the
// primary, no amount of wall-clock time triggers a promotion.
func TestFailoverManagerContactSuppresses(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	f := startFollower(t, 1, p.shipAddr)
	m := NewFailoverManager(f.srv, f.f, quiet, FailoverOptions{
		Self: "a:1", Primary: "pri:1", Peers: []string{"a:1"},
		SuspectAfter: 80 * time.Millisecond,
	})
	// Heartbeats flow every 10ms; across several windows of real time the
	// detector must stay quiet.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if m.tick(time.Now()) {
			t.Fatal("promoted while the primary was alive and heartbeating")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.srv.Epoch() != 1 {
		t.Fatalf("follower epoch = %d, want 1", f.srv.Epoch())
	}
}

// removeTree (the rejoin wipe) goes through the injected filesystem and
// surfaces every failure: a partial wipe must abort the rejoin, never
// proceed into recovery over inconsistent state.
func TestRemoveTreeSurfacesInjectedFailure(t *testing.T) {
	build := func() string {
		dir := t.TempDir()
		sub := filepath.Join(dir, "tree", "nested")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{
			filepath.Join(dir, "tree", "a.dat"),
			filepath.Join(sub, "b.dat"),
		} {
			if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return filepath.Join(dir, "tree")
	}

	// Injected removal failure: the wipe reports it.
	tree := build()
	ifs := fault.NewInjectFS(nil, fault.Rule{Op: fault.OpRemove, Path: ".dat", Count: 1, Err: fault.ErrFsync})
	if err := removeTree(ifs, tree); err == nil {
		t.Fatal("removeTree swallowed an injected removal failure")
	}

	// Healthy filesystem: the whole tree goes, and a second wipe of the
	// now-missing dir is success (idempotent).
	tree = build()
	fs := fault.NewInjectFS(nil)
	if err := removeTree(fs, tree); err != nil {
		t.Fatalf("removeTree on healthy fs: %v", err)
	}
	if _, err := os.Stat(tree); !os.IsNotExist(err) {
		t.Fatalf("tree still present after removeTree (stat err %v)", err)
	}
	if err := removeTree(fs, tree); err != nil {
		t.Fatalf("removeTree of a missing dir: %v", err)
	}
}

// The four failover metrics are registered in the default registry so the
// -debug-addr exposition serves them.
func TestFailoverMetricsRegistered(t *testing.T) {
	snap := metrics.Default.Snapshot()
	for _, name := range []string{
		"asdb_failover_total",
		"asdb_fenced_rejects_total",
		"asdb_heartbeat_misses_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s not registered", name)
		}
	}
	if _, ok := snap.Gauges["asdb_cluster_epoch"]; !ok {
		t.Error("gauge asdb_cluster_epoch not registered")
	}
}

// Regression for the ship-server pin leak: a peer that completes the SYNC
// handshake and dies (never reading the snapshot or stream) must not hold
// its WAL pin — the watchdog that closes the conn on peer death starts
// BEFORE the pinning handshake, so the blocked writes fail fast and the
// deferred release runs. With the pins gone, checkpoint truncation
// reclaims segments again.
func TestShipPinReleasedOnDeadFollower(t *testing.T) {
	// Small checkpoint interval and tiny segments (a handful of records
	// each) so checkpoints seal and truncation actually prunes.
	p := startPrimary(t, 1, 4, 256)
	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 12, 1)

	// A spread of half-handshake deaths: close instantly after SYNC, close
	// after reading one line, and close with the handshake half-written.
	for i := 0; i < 4; i++ {
		nc, err := net.DialTimeout("tcp", p.shipAddr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			fmt.Fprintf(nc, "SYNC 0 1\n") // dies without reading the reply
		case 1:
			fmt.Fprintf(nc, "SYNC 0 1\n")
			b := make([]byte, 64)
			nc.Read(b)
		case 2:
			fmt.Fprintf(nc, "SYN") // torn handshake
		}
		nc.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for p.srv.WAL().Pins() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ship server still holds %d WAL pins after all followers died", p.srv.WAL().Pins())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And retention works again: more inserts cross checkpoint boundaries,
	// after which the oldest retained LSN must advance past 1.
	insertN(t, pc, 12, 100)
	deadline = time.Now().Add(5 * time.Second)
	for {
		oldest, err := p.srv.WAL().OldestLSN()
		if err != nil {
			t.Fatal(err)
		}
		if oldest > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wal never truncated (oldest still %d) after pins released", oldest)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
