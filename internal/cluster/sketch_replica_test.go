package cluster

import (
	"fmt"
	"testing"
)

// TestSketchReplicaDataByteIdentical: a BACKEND SKETCH query replicates
// through the WAL as ordinary records — followers rebuild the sketch window
// (block ring, moment sums, quantile compaction state) from the shipped
// stream and must emit DATA frames byte-identical to the primary's, at any
// worker count on either side. STATS/EXPLAIN/METRICS for the sketch query
// must also render identically, including the sketch-specific EXPLAIN lines.
func TestSketchReplicaDataByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := startPrimary(t, workers, 1<<20, 0)
			f1 := startFollower(t, 1, p.shipAddr)
			f8 := startFollower(t, 8, p.shipAddr)

			pc := dialRaw(t, p.addr)
			pc.mustOK("STREAM readings sensor temp:dist")
			pc.mustOK("QUERY qs SELECT COUNT(temp) AS c, AVG(temp) AS a, SUM(temp) AS s " +
				"FROM readings WINDOW 4 ROWS BACKEND SKETCH")
			waitCaughtUp(t, p, f1)
			waitCaughtUp(t, p, f8)
			fc1 := dialRaw(t, f1.addr)
			fc8 := dialRaw(t, f8.addr)
			fc1.mustOK("ATTACH qs")
			fc8.mustOK("ATTACH qs")

			// Mix of single inserts, a probabilistic tuple, and a batch: the
			// sketch window crosses several block seals and evictions.
			var primaryData []string
			for i := 0; i < 16; i++ {
				rep := pc.mustOK(fmt.Sprintf("INSERT readings %d N(%d,9,%d)", i+1, 40+3*i, 20+i))
				primaryData = append(primaryData, rep[:len(rep)-1]...)
			}
			rep := pc.mustOK("INSERTBATCH readings 100 N(75,16,9) | 101 S(55;52;58;61) | 102 N(66,9,12)")
			primaryData = append(primaryData, rep[:len(rep)-1]...)
			if len(primaryData) == 0 {
				t.Fatal("primary emitted no DATA frames for the sketch query")
			}

			waitCaughtUp(t, p, f1)
			waitCaughtUp(t, p, f8)
			got1 := collectData(t, fc1, len(primaryData))
			got8 := collectData(t, fc8, len(primaryData))
			for i := range primaryData {
				if got1[i] != primaryData[i] {
					t.Fatalf("workers=1 follower frame %d diverged:\nprimary:  %s\nfollower: %s", i, primaryData[i], got1[i])
				}
				if got8[i] != primaryData[i] {
					t.Fatalf("workers=8 follower frame %d diverged:\nprimary:  %s\nfollower: %s", i, primaryData[i], got8[i])
				}
			}

			pr := dialRaw(t, p.addr)
			compareReplies(t, pr, fc1, "STATS qs", "EXPLAIN qs", "METRICS qs")
			pr2 := dialRaw(t, p.addr)
			compareReplies(t, pr2, fc8, "STATS qs", "EXPLAIN qs", "METRICS qs")
		})
	}
}
