package cluster

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// quiet discards node logs; failures are asserted through replies and
// follower state, not log scraping.
var quiet = log.New(io.Discard, "", 0)

// tnode is one test cluster member: a server plus (for primaries) its
// ship listener or (for followers) its replication loop.
type tnode struct {
	srv      *server.Server
	addr     string
	ship     *ShipServer
	shipAddr string
	f        *Follower
	cfg      core.Config // durable nodes: the config (incl. DataDir) to revive with
}

// engineConfig is the shared deterministic engine setup: replication
// requires primary and follower to agree on everything that shapes RNG
// evolution (seed, method, level); Workers deliberately varies per test
// because results are bit-identical at any worker count.
func engineConfig(workers int) core.Config {
	return core.Config{
		Seed:    7,
		Method:  core.AccuracyAnalytical,
		Level:   0.9,
		Workers: workers,
	}
}

// startPrimary boots a durable server plus its WAL-shipping listener.
func startPrimary(t testing.TB, workers, ckEvery int, segBytes int64) *tnode {
	t.Helper()
	cfg := engineConfig(workers)
	cfg.DataDir = t.TempDir()
	cfg.FsyncPolicy = "none"
	cfg.CheckpointEvery = ckEvery
	cfg.WALSegmentBytes = segBytes
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewDurable(eng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	ship, err := NewShipServer(srv, quiet, ShipOptions{
		Heartbeat: 10 * time.Millisecond,
		Poll:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAddr, err := ship.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ship.Serve()
	n := &tnode{srv: srv, addr: addr.String(), ship: ship, shipAddr: shipAddr.String(), cfg: cfg}
	t.Cleanup(func() {
		ship.Close()
		srv.Close()
	})
	return n
}

// startDurableFollower boots a read-only durable server (own data dir,
// write-through journaling of replicated records) syncing from shipAddr —
// the kind of follower a FailoverManager can promote into a primary that
// ships from the shared LSN space.
func startDurableFollower(t testing.TB, workers int, shipAddr string) *tnode {
	t.Helper()
	cfg := engineConfig(workers)
	cfg.DataDir = t.TempDir()
	cfg.FsyncPolicy = "none"
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewDurable(eng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetOptions(server.Options{ReadOnly: true})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	f := NewFollower(srv, shipAddr, quiet, FollowOptions{
		RetryBase:   2 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
		ReadTimeout: 2 * time.Second,
	})
	f.SetLastApplied(srv.WAL().LastLSN())
	f.Start()
	n := &tnode{srv: srv, addr: addr.String(), f: f, cfg: cfg}
	t.Cleanup(func() {
		f.Close()
		srv.Close()
	})
	return n
}

// startFollower boots a fresh in-memory read-only server syncing from
// shipAddr (possibly a fault proxy in front of the primary's listener).
func startFollower(t testing.TB, workers int, shipAddr string) *tnode {
	t.Helper()
	eng, err := core.NewEngine(engineConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetOptions(server.Options{ReadOnly: true})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	f := NewFollower(srv, shipAddr, quiet, FollowOptions{
		RetryBase:   2 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
		ReadTimeout: 2 * time.Second,
	})
	f.Start()
	n := &tnode{srv: srv, addr: addr.String(), f: f}
	t.Cleanup(func() {
		f.Close()
		srv.Close()
	})
	return n
}

// waitCaughtUp asserts the follower reaches the primary's current WAL
// frontier.
func waitCaughtUp(t testing.TB, p, f *tnode) uint64 {
	t.Helper()
	lsn := p.srv.WAL().LastLSN()
	if !f.f.WaitCaughtUp(lsn, 10*time.Second) {
		t.Fatalf("follower stuck at lsn %d, want %d (terminal err: %v)", f.f.LastApplied(), lsn, f.f.Err())
	}
	return lsn
}

// raw is a line-protocol connection for byte-level assertions.
type raw struct {
	t  testing.TB
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialRaw(t testing.TB, addr string) *raw {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(60 * time.Second))
	r := &raw{t: t, nc: nc, br: bufio.NewReaderSize(nc, 1<<20), bw: bufio.NewWriter(nc)}
	t.Cleanup(func() { nc.Close() })
	return r
}

func (r *raw) send(line string) {
	r.t.Helper()
	if _, err := r.bw.WriteString(line + "\n"); err != nil {
		r.t.Fatalf("send %q: %v", line, err)
	}
	if err := r.bw.Flush(); err != nil {
		r.t.Fatalf("send %q: %v", line, err)
	}
}

func (r *raw) line() string {
	r.t.Helper()
	s, err := readLine(r.br, maxShipLine)
	if err != nil {
		r.t.Fatalf("read reply: %v", err)
	}
	return s
}

// cmd sends one command and returns every reply line through the
// terminating OK/ERR (DATA lines precede it).
func (r *raw) cmd(line string) []string {
	r.t.Helper()
	r.send(line)
	var out []string
	for {
		s := r.line()
		out = append(out, s)
		if strings.HasPrefix(s, "OK") || strings.HasPrefix(s, "ERR") {
			return out
		}
	}
}

func (r *raw) mustOK(line string) []string {
	r.t.Helper()
	out := r.cmd(line)
	if last := out[len(out)-1]; !strings.HasPrefix(last, "OK") {
		r.t.Fatalf("%q: %s", line, last)
	}
	return out
}

// compareReplies asserts a read command returns byte-identical replies on
// two nodes.
func compareReplies(t testing.TB, a, b *raw, cmds ...string) {
	t.Helper()
	for _, c := range cmds {
		ra := strings.Join(a.cmd(c), "\n")
		rb := strings.Join(b.cmd(c), "\n")
		if ra != rb {
			t.Errorf("%q diverged:\n  a: %s\n  b: %s", c, ra, rb)
		}
	}
}

// seedGolden loads the primary with the deterministic workload most tests
// share: one stream, a filter query, and a windowed aggregate.
func seedGolden(t testing.TB, p *raw) {
	t.Helper()
	p.mustOK("STREAM readings sensor temp:dist")
	p.mustOK("QUERY q1 SELECT temp FROM readings WHERE temp > 50")
	p.mustOK("QUERY q2 SELECT AVG(temp) AS avg_temp FROM readings WINDOW 3 ROWS")
}

func insertN(t testing.TB, p *raw, n, base int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p.mustOK(fmt.Sprintf("INSERT readings %d N(%d,4,25)", base+i, 40+(base+i)%40))
	}
}
