package cluster

import (
	"os"
	"strings"
	"testing"
)

// goldenStep is one request from the golden transcript plus its recorded
// reply lines (DATA frames followed by the OK/ERR line).
type goldenStep struct {
	req   string
	reply []string
}

func loadGolden(t *testing.T) []goldenStep {
	t.Helper()
	raw, err := os.ReadFile("../server/testdata/golden_session.txt")
	if err != nil {
		t.Fatalf("reading golden transcript: %v", err)
	}
	var steps []goldenStep
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, ">> "); ok {
			steps = append(steps, goldenStep{req: rest})
			continue
		}
		if len(steps) == 0 {
			t.Fatalf("golden transcript starts with reply line %q", line)
		}
		steps[len(steps)-1].reply = append(steps[len(steps)-1].reply, line)
	}
	return steps
}

// The golden-transcript e2e, extended across replication: the exact
// golden session replays against a primary that is shipping its WAL, and
// a replica must serve the same session's reads — and render the same
// DATA frames through the render-once path — byte-for-byte against the
// recorded golden bytes.
func TestGoldenTranscriptOnReplica(t *testing.T) {
	steps := loadGolden(t)
	p := startPrimary(t, 1, 1<<20, 0)
	f := startFollower(t, 1, p.shipAddr)
	pc := dialRaw(t, p.addr)

	// Phase 1: session prefix (PING, STREAM, both QUERYs) on the primary,
	// verified against golden as we go.
	i := 0
	runStep := func(s goldenStep) {
		t.Helper()
		got := pc.cmd(s.req)
		if s.req == "METRICS" {
			// Global metrics aggregate the whole process (other tests in
			// this binary included); the golden test masks this line to
			// its key set, here the terminal status suffices.
			if !strings.HasPrefix(got[len(got)-1], "OK ") {
				t.Fatalf("primary global METRICS: %q", got[len(got)-1])
			}
			return
		}
		if strings.Join(got, "\n") != strings.Join(s.reply, "\n") {
			t.Fatalf("primary diverged from golden on %q:\ngot:  %s\nwant: %s",
				s.req, strings.Join(got, "\n"), strings.Join(s.reply, "\n"))
		}
	}
	for ; i < len(steps) && !strings.HasPrefix(steps[i].req, "INSERT"); i++ {
		runStep(steps[i])
	}
	waitCaughtUp(t, p, f)

	// The replica attaches to both queries before any tuple flows, so it
	// must render every DATA frame the golden session recorded.
	fc := dialRaw(t, f.addr)
	fc.mustOK("ATTACH q1")
	fc.mustOK("ATTACH q2")

	// Phase 2: the golden inserts. The golden session owns q1/q2, so its
	// transcript interleaves DATA frames with the insert replies; the
	// replica's attached connection must receive exactly those frames.
	var wantData []string
	for ; i < len(steps) && strings.HasPrefix(steps[i].req, "INSERT"); i++ {
		runStep(steps[i])
		wantData = append(wantData, steps[i].reply[:len(steps[i].reply)-1]...)
	}
	waitCaughtUp(t, p, f)
	gotData := collectData(t, fc, len(wantData))
	for j := range wantData {
		if gotData[j] != wantData[j] {
			t.Fatalf("replica DATA frame %d diverged from golden:\ngot:  %s\nwant: %s", j, gotData[j], wantData[j])
		}
	}

	// Phase 3: the session's reads replay against the REPLICA and must
	// match the golden bytes (global METRICS is per-process observability
	// — counters include this process's other activity — so only its
	// terminal status is checked; the golden test itself masks it too).
	fr := dialRaw(t, f.addr)
	for ; i < len(steps); i++ {
		s := steps[i]
		verb := strings.SplitN(s.req, " ", 2)[0]
		switch verb {
		case "STATS", "EXPLAIN":
			got := fr.cmd(s.req)
			if strings.Join(got, "\n") != strings.Join(s.reply, "\n") {
				t.Fatalf("replica diverged from golden on %q:\ngot:  %s\nwant: %s",
					s.req, strings.Join(got, "\n"), strings.Join(s.reply, "\n"))
			}
		case "METRICS":
			got := fr.cmd(s.req)
			if s.req != "METRICS" {
				if strings.Join(got, "\n") != strings.Join(s.reply, "\n") {
					t.Fatalf("replica diverged from golden on %q:\ngot:  %s\nwant: %s",
						s.req, strings.Join(got, "\n"), strings.Join(s.reply, "\n"))
				}
			} else if !strings.HasPrefix(got[len(got)-1], "OK ") {
				t.Fatalf("replica global METRICS: %q", got[len(got)-1])
			}
		case "CLOSE", "QUIT", "BOGUS":
			// Mutations and session control stay on the primary; the
			// replica result is checked through replication below.
		}
		// Every step still replays on the primary so the full golden
		// session completes there byte-for-byte.
		runStep(s)
	}

	// CLOSE q1 replicated: the replica rejects STATS q1 exactly like the
	// primary does after the golden session.
	waitCaughtUp(t, p, f)
	pr := dialRaw(t, p.addr)
	compareReplies(t, pr, fr, "STATS q1", "STATS q2")
}
