// Package cluster layers deterministic replication and stream-sharded
// routing on top of the single-node asdb server.
//
// Replication is WAL shipping: the primary's write-ahead log already
// totally orders every state change (WAL order == engine sequence order,
// and the engine is bit-identical at any worker count), so a follower that
// replays the shipped records through the server's normal apply paths is
// byte-identical to the primary at every LSN — DATA frames, STATS replies
// and per-query METRICS all match. ShipServer is the primary side (serves
// sealed and live segments, tracks follower lag); Follower is the replica
// side (applies records, serves read-only traffic, can be promoted).
//
// Routing is rendezvous hashing of streams across N independent primaries,
// with join-aware co-location: both inputs of a JOIN must live on one node,
// so streams are grouped with union-find and a group is re-homed (by
// replaying its DDL) only while it has never taken routed ingest. Client is
// the embedded routing client; Router is the same policy as a thin proxy
// for protocol-level clients. Both reuse the server's @reqid dedup window
// for exactly-once ingest retries across failover — the dedup window is
// replicated, so a promoted follower answers a retried batch from the
// window instead of double-applying it.
package cluster

import (
	"bufio"
	"errors"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/server"
)

// Follower-side lag gauges, primary-side follower count, router retry
// counter. Registered here — not in internal/server — so a single-node
// server's METRICS key set (pinned by the golden transcript) is unchanged.
var (
	gLagRecords = metrics.Default.Gauge("asdb_repl_lag_records",
		"replication lag in records: primary's last known LSN minus last applied (follower side)")
	gLagSeconds = metrics.Default.FloatGauge("asdb_repl_lag_seconds",
		"replication lag in seconds: age of the newest applied record, 0 when caught up (follower side)")
	gFollowers = metrics.Default.Gauge("asdb_repl_followers",
		"connected WAL-shipping followers (primary side)")
	mRouteRetries = metrics.Default.Counter("asdb_route_retries_total",
		"routed ingest attempts retried against a failover target")

	// Failover observability (ISSUE 10).
	gEpoch = metrics.Default.Gauge("asdb_cluster_epoch",
		"this node's current epoch (advanced by its own promotion or by adopting a newer primary's)")
	mFailovers = metrics.Default.Counter("asdb_failover_total",
		"automatic promotions performed by the failover manager on this node")
	mFencedRejects = metrics.Default.Counter("asdb_fenced_rejects_total",
		"writes rejected because this node is fenced at a stale epoch")
	mHeartbeatMisses = metrics.Default.Counter("asdb_heartbeat_misses_total",
		"SuspectAfter windows the primary stayed silent through (each window counted once per suspicion episode)")
)

// The server's dispatch counts fenced rejections but must not register
// cluster metrics itself (single-node METRICS key set is pinned by the
// golden transcript), so it calls back through this hook.
func init() {
	server.FencedRejectHook = mFencedRejects.Inc
	server.EpochAdoptHook = func(epoch uint64) { gEpoch.Set(int64(epoch)) }
}

// retryableIngestReject reports whether a server's ERR text means "this
// node cannot take writes right now, but another one can": an unpromoted
// follower ("read-only replica") or an ex-primary fenced at a stale epoch.
// Both are failover signals the routing layer retries through, not command
// rejections to surface.
func retryableIngestReject(msg string) bool {
	return strings.Contains(msg, "read-only replica") ||
		strings.Contains(msg, "fenced: stale epoch")
}

// maxShipLine bounds one shipped protocol line. WAL payloads are command
// lines capped at 16MiB by the server; the REC framing adds a few tens of
// bytes, so one extra MiB of slack is plenty.
const maxShipLine = 17 << 20

var errLineTooLong = errors.New("cluster: protocol line exceeds cap")

// readLine mirrors the server's line reader: one newline-terminated line,
// terminator (and trailing \r) stripped, torn fragment at EOF surfaced as
// io.ErrUnexpectedEOF so a half-shipped record or reply never parses.
func readLine(r *bufio.Reader, max int) (string, error) {
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		switch err {
		case nil:
			line := buf[:len(buf)-1]
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return string(line), nil
		case bufio.ErrBufferFull:
			if max > 0 && len(buf) > max {
				return "", errLineTooLong
			}
		case io.EOF:
			if len(buf) > 0 {
				return "", io.ErrUnexpectedEOF
			}
			return "", io.EOF
		default:
			return "", err
		}
	}
}
