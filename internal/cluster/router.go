package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"
)

// Router is the same routing policy as Client, packaged as a thin proxy
// for protocol-level clients: one listener speaking the asdb line
// protocol, forwarding each command to the node that owns it. DATA lines
// from backends are relayed to the client byte-for-byte — the router
// never re-renders results, so replica frames stay identical to primary
// frames end to end. Ingest lines carrying a client-minted @reqid are
// retried across failover targets; bare ingest lines get one attempt
// (the router must not invent idempotency the client didn't ask for).
type Router struct {
	topo   *topo
	logger *log.Logger
	opts   RouterOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	rngState uint64 // LCG state for backoff jitter, guarded by mu
}

// RouterOptions tunes the proxy. Zero values mean defaults.
type RouterOptions struct {
	// OpTimeout bounds one backend exchange (default 30s).
	OpTimeout time.Duration
	// Retries is how many failover attempts an @reqid-tagged ingest gets
	// after a transport failure (default 3).
	Retries int
	// RetryBase and RetryMax shape backoff between attempts (defaults
	// 50ms, 2s). Backoff is jittered so the retry storms of many sessions
	// chasing one failover spread out instead of synchronizing.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes backoff jitter deterministic for tests; 0 derives a seed
	// from the clock.
	Seed uint64
}

func (o RouterOptions) normalize() RouterOptions {
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(time.Now().UnixNano()) | 1
	}
	return o
}

// NewRouter builds a proxy over the given nodes.
func NewRouter(nodes []Node, logger *log.Logger, opts RouterOptions) (*Router, error) {
	t, err := newTopo(nodes)
	if err != nil {
		return nil, err
	}
	o := opts.normalize()
	return &Router{
		topo:     t,
		logger:   logger,
		opts:     o,
		conns:    make(map[net.Conn]struct{}),
		rngState: o.Seed,
	}, nil
}

// backoff returns the jittered delay before retry attempt (1-based):
// capped exponential, then uniform in [d/2, d) from a seeded LCG — the
// same scheme the embedded Client uses.
func (rt *Router) backoff(attempt int) time.Duration {
	d := rt.opts.RetryBase << uint(min(attempt-1, 16))
	if d > rt.opts.RetryMax {
		d = rt.opts.RetryMax
	}
	rt.mu.Lock()
	rt.rngState = rt.rngState*6364136223846793005 + 1442695040888963407
	r := rt.rngState >> 33
	rt.mu.Unlock()
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + r%half)
}

// Listen binds the client-facing listener.
func (rt *Router) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	rt.ln = ln
	rt.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts client connections until Close.
func (rt *Router) Serve() error {
	rt.mu.Lock()
	ln := rt.ln
	rt.mu.Unlock()
	if ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			rt.mu.Lock()
			closed := rt.closed
			rt.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			nc.Close()
			return nil
		}
		rt.conns[nc] = struct{}{}
		rt.wg.Add(1)
		rt.mu.Unlock()
		go func() {
			defer rt.wg.Done()
			rt.serveConn(nc)
			rt.mu.Lock()
			delete(rt.conns, nc)
			rt.mu.Unlock()
		}()
	}
}

// Close stops the listener and disconnects every client (and their
// backends).
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	ln := rt.ln
	for nc := range rt.conns {
		nc.Close()
	}
	rt.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	rt.wg.Wait()
	return err
}

func (rt *Router) logf(format string, args ...any) {
	if rt.logger != nil {
		rt.logger.Printf(format, args...)
	}
}

// backend is one upstream connection owned by one client session. Its
// reader goroutine splits the upstream byte stream: DATA lines go
// straight to the client (preserving bytes), reply lines resolve the
// in-flight exchange.
type backend struct {
	addr    string
	nc      net.Conn
	bw      *bufio.Writer
	replies chan string
	done    chan struct{}
	readErr error
}

// rsession is one proxied client connection plus its cached backends.
type rsession struct {
	rt       *Router
	nc       net.Conn
	cmu      sync.Mutex // serializes all writes to the client
	cw       *bufio.Writer
	backends map[string]*backend
}

func (rt *Router) serveConn(nc net.Conn) {
	s := &rsession{
		rt:       rt,
		nc:       nc,
		cw:       bufio.NewWriterSize(nc, 64<<10),
		backends: make(map[string]*backend),
	}
	defer func() {
		for _, b := range s.backends {
			b.nc.Close()
		}
		nc.Close()
	}()
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		nc.SetReadDeadline(time.Now().Add(5 * time.Minute))
		line, err := readLine(br, maxShipLine)
		if err != nil {
			return
		}
		if line == "" {
			continue
		}
		if verbOf(line) == "QUIT" {
			s.writeClient("OK bye")
			return
		}
		reply, err := s.dispatch(line)
		if err != nil {
			reply = "ERR " + err.Error()
		}
		if !s.writeClient(reply) {
			return
		}
	}
}

func verbOf(line string) string {
	verb := line
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb = line[:i]
	}
	return strings.ToUpper(verb)
}

func firstField(rest string) string {
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return rest[:i]
	}
	return rest
}

// writeClient sends one line to the client; false means the client is
// gone.
func (s *rsession) writeClient(line string) bool {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if _, err := s.cw.WriteString(line); err != nil {
		return false
	}
	if err := s.cw.WriteByte('\n'); err != nil {
		return false
	}
	return s.cw.Flush() == nil
}

// dispatch routes one command line and returns the upstream reply line.
func (s *rsession) dispatch(line string) (string, error) {
	verb := verbOf(line)
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		rest = strings.TrimSpace(line[i+1:])
	}
	t := s.rt.topo
	switch verb {
	case "PING":
		return "OK pong", nil
	case "STREAM":
		if rest == "" {
			return "", errors.New("usage: STREAM <name> <col>[:dist] ...")
		}
		node := t.registerStream(firstField(rest), rest)
		return s.backendDo(t.primaryAddr(node), line)
	case "QUERY":
		id := firstField(rest)
		sqlText := strings.TrimSpace(strings.TrimPrefix(rest, id))
		node, moves, err := t.placeQuery(id, sqlText)
		if err != nil {
			return "", err
		}
		for _, mv := range moves {
			if rep, err := s.backendDo(t.primaryAddr(mv.node), "STREAM "+mv.ddl); err != nil {
				return "", fmt.Errorf("re-homing stream %s: %w", mv.stream, err)
			} else if strings.HasPrefix(rep, "ERR ") {
				return "", fmt.Errorf("re-homing stream %s: %s", mv.stream, rep[4:])
			}
		}
		return s.backendDo(t.primaryAddr(node), line)
	case "INSERT", "INSERTBATCH":
		node, ok := t.streamNode(firstField(rest))
		if !ok {
			return "", fmt.Errorf("unknown stream %q (register through this router first)", firstField(rest))
		}
		t.markDirty(firstField(rest))
		return s.ingestDispatch(node, line)
	case "STATS", "EXPLAIN", "ATTACH", "SUBSCRIBE":
		return s.backendDo(s.readAddrFor(rest), line)
	case "METRICS":
		if rest == "" {
			// Global metrics are per-process; node 0's stand in. Per-node
			// metrics are reachable by connecting to the node directly.
			return s.backendDo(t.readAddr(0), line)
		}
		return s.backendDo(s.readAddrFor(rest), line)
	case "CLOSE":
		node, ok := t.queryNode(firstField(rest))
		if !ok {
			return "", fmt.Errorf("unknown query %q", firstField(rest))
		}
		rep, err := s.backendDo(t.primaryAddr(node), line)
		if err == nil && strings.HasPrefix(rep, "OK") {
			t.dropQuery(firstField(rest))
		}
		return rep, err
	case "SHED":
		// Shedding is per-node; the router applies the command to every
		// primary so the cluster degrades uniformly.
		var last string
		for i := range t.nodes {
			rep, err := s.backendDo(t.primaryAddr(i), line)
			if err != nil {
				return "", err
			}
			if strings.HasPrefix(rep, "ERR ") {
				return rep, nil
			}
			last = rep
		}
		return last, nil
	default:
		return s.backendDo(t.primaryAddr(0), line)
	}
}

// readAddrFor picks the read address for a query-scoped command, falling
// back to node 0 for unknown ids (the backend's ERR is the real answer).
func (s *rsession) readAddrFor(rest string) string {
	t := s.rt.topo
	if node, ok := t.queryNode(firstField(rest)); ok {
		return t.readAddr(node)
	}
	return t.readAddr(0)
}

// hasReqID reports whether an ingest line carries a client request id
// (trailing " @id" token) — the marker that makes failover retries safe.
func hasReqID(line string) bool {
	i := strings.LastIndexByte(line, ' ')
	return i >= 0 && i+1 < len(line) && line[i+1] == '@' && len(line)-i > 2
}

// ingestDispatch forwards an ingest line, failing over across the node's
// targets only when the line is idempotent (@reqid present).
func (s *rsession) ingestDispatch(node int, line string) (string, error) {
	t := s.rt.topo
	attempts := 1
	if hasReqID(line) {
		attempts = s.rt.opts.Retries + 1
	}
	targets := t.failoverAddrs(node)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mRouteRetries.Inc()
			if hook := testHookRouteRetry; hook != nil {
				hook(attempt)
			}
			time.Sleep(s.rt.backoff(attempt))
		}
		rep, err := s.backendDo(targets[attempt%len(targets)], line)
		if err != nil {
			lastErr = err
			continue
		}
		if attempt+1 < attempts && strings.HasPrefix(rep, "ERR ") && retryableIngestReject(rep) {
			lastErr = errors.New(rep[4:])
			continue
		}
		return rep, nil
	}
	return "", lastErr
}

// backendDo sends one line upstream and waits for its reply. DATA lines
// arriving first are forwarded to the client by the backend's reader, so
// the client still sees DATA before OK, exactly like a direct connection.
func (s *rsession) backendDo(addr string, line string) (string, error) {
	b, err := s.backend(addr)
	if err != nil {
		return "", err
	}
	b.nc.SetWriteDeadline(time.Now().Add(s.rt.opts.OpTimeout))
	if _, err := b.bw.WriteString(line); err == nil {
		err = b.bw.WriteByte('\n')
		if err == nil {
			err = b.bw.Flush()
		}
	} else {
		b.nc.Close()
		delete(s.backends, addr)
		return "", err
	}
	select {
	case rep := <-b.replies:
		return rep, nil
	case <-b.done:
		delete(s.backends, addr)
		return "", b.readErr
	case <-time.After(s.rt.opts.OpTimeout):
		// A late reply could otherwise match a later request; kill the
		// connection so it never does.
		b.nc.Close()
		delete(s.backends, addr)
		return "", fmt.Errorf("cluster: backend %s timed out", addr)
	}
}

// backend returns (dialing if needed) this session's connection to addr.
func (s *rsession) backend(addr string) (*backend, error) {
	if b, ok := s.backends[addr]; ok {
		select {
		case <-b.done:
			delete(s.backends, addr)
		default:
			return b, nil
		}
	}
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	b := &backend{
		addr:    addr,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		replies: make(chan string, 1),
		done:    make(chan struct{}),
	}
	s.backends[addr] = b
	go b.readLoop(s)
	return b, nil
}

func (b *backend) readLoop(s *rsession) {
	br := bufio.NewReaderSize(b.nc, 64<<10)
	for {
		line, err := readLine(br, maxShipLine)
		if err != nil {
			b.readErr = err
			close(b.done)
			b.nc.Close()
			return
		}
		if strings.HasPrefix(line, "DATA ") {
			// Relay verbatim; bytes rendered upstream are the bytes the
			// client sees.
			if !s.writeClient(line) {
				b.readErr = errors.New("cluster: client gone")
				close(b.done)
				b.nc.Close()
				return
			}
			continue
		}
		select {
		case b.replies <- line:
		case <-time.After(time.Minute):
			// No exchange claimed this reply — protocol desync; bail.
			b.readErr = errors.New("cluster: unclaimed backend reply")
			close(b.done)
			b.nc.Close()
			return
		}
	}
}
