package cluster

// Automatic failover without an external coordinator (ISSUE 10). Each
// replica runs a FailoverManager: a failure detector over its Follower's
// last-contact clock plus a deterministic promotion ladder. Safety comes
// from epoch fencing, not from perfect detection — a false-positive
// promotion bumps the epoch, and the epoch'd ship protocol then fences the
// surviving old primary the moment anything carrying the newer epoch
// reaches it, so two writable nodes cannot both keep accepting writes that
// anyone will replicate. Liveness comes from the graded ladder: the
// designated successor (rank 0) promotes after one SuspectAfter window of
// silence, rank k waits k extra windows, so a dead successor only delays
// failover, never wedges it.

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// successorRank orders a shard's replicas into a deterministic promotion
// ladder with no coordination: every replica ranks the peer set by
// mix64(hash64(peer) ^ hash64(primary)) descending — the same
// highest-random-weight math rendezvous placement uses, so any two nodes
// computing the ladder agree — with lexicographic tie-break, and returns
// self's position. Rank 0 is the designated successor. A peer not in the
// list ranks after everyone (len(peers)).
func successorRank(primary, self string, peers []string) int {
	type pw struct {
		addr string
		w    uint64
	}
	ph := hash64(primary)
	ranked := make([]pw, 0, len(peers))
	for _, p := range peers {
		ranked = append(ranked, pw{p, mix64(hash64(p) ^ ph)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].w != ranked[j].w {
			return ranked[i].w > ranked[j].w
		}
		return ranked[i].addr < ranked[j].addr
	})
	for i, p := range ranked {
		if p.addr == self {
			return i
		}
	}
	return len(ranked)
}

// FailoverOptions configures one replica's failure detector. Zero values
// mean defaults.
type FailoverOptions struct {
	// Self is this replica's identity (its replica address as listed in the
	// topology); Primary the watched primary's; Peers every replica of the
	// shard, including Self. They only feed the deterministic ladder.
	Self    string
	Primary string
	Peers   []string
	// SuspectAfter is the silence threshold: rank 0 promotes after one
	// window, rank k after (1+k) windows (default 1s).
	SuspectAfter time.Duration
	// ProbeEvery is the detector tick (default 100ms).
	ProbeEvery time.Duration
	// Now is the detector's clock; injectable so chaos tests drive the
	// state machine deterministically (default time.Now).
	Now func() time.Time
	// OnPromote runs after a successful promotion (e.g. to start a ship
	// listener on the new primary).
	OnPromote func(epoch uint64)
}

func (o FailoverOptions) normalize() FailoverOptions {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 100 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// FailoverManager turns a follower into a primary when the primary goes
// silent. Detection is purely local: the follower's LastContact clock
// (every shipped frame and successful dial refreshes it) measured against
// the graded threshold.
type FailoverManager struct {
	srv    *server.Server
	f      *Follower
	logger *log.Logger
	opts   FailoverOptions
	rank   int
	grace  time.Time // stands in for LastContact until the first real contact

	promoted atomic.Bool
	stopCh   chan struct{}
	done     chan struct{}
	once     sync.Once
	stopOnce sync.Once
}

// NewFailoverManager wires a detector for a follower of srv's shard. Call
// Start to begin probing.
func NewFailoverManager(srv *server.Server, f *Follower, logger *log.Logger, opts FailoverOptions) *FailoverManager {
	opts = opts.normalize()
	m := &FailoverManager{
		srv:    srv,
		f:      f,
		logger: logger,
		opts:   opts,
		rank:   successorRank(opts.Primary, opts.Self, opts.Peers),
		grace:  opts.Now(),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	gEpoch.Set(int64(srv.Epoch()))
	return m
}

// Rank returns this replica's position on the promotion ladder (0 = the
// designated successor).
func (m *FailoverManager) Rank() int { return m.rank }

// Promoted reports whether this manager has promoted its server.
func (m *FailoverManager) Promoted() bool { return m.promoted.Load() }

// threshold is the silence that triggers promotion at this node's rank.
func (m *FailoverManager) threshold() time.Duration {
	return m.opts.SuspectAfter * time.Duration(1+m.rank)
}

// Start launches the probe loop; it exits on Stop or after promoting.
func (m *FailoverManager) Start() {
	m.once.Do(func() { go m.run() })
}

// Stop halts probing (idempotent; no-op after a promotion already ended
// the loop).
func (m *FailoverManager) Stop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	<-m.done
}

func (m *FailoverManager) run() {
	defer close(m.done)
	t := time.NewTicker(m.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			if m.tick(m.opts.Now()) {
				return
			}
		}
	}
}

// tick advances the detector: one probe at time now. Returns true when the
// probe ended in a promotion. Split out (with the injectable clock) so
// tests can drive kill→detect→promote sequences without real sleeps.
func (m *FailoverManager) tick(now time.Time) bool {
	if m.promoted.Load() {
		return false
	}
	last := m.f.LastContact()
	if last.IsZero() {
		last = m.grace
	}
	silence := now.Sub(last)
	if silence < m.opts.SuspectAfter {
		return false
	}
	mHeartbeatMisses.Inc()
	if silence < m.threshold() {
		return false
	}
	m.promote()
	return m.promoted.Load()
}

// promote executes the safe promotion sequence: stop the apply loop first
// (no replicated apply may race the new history), journal the epoch bump
// durably (the RecEpoch record is both the fence token's birth certificate
// and the LSN where the new history starts), and only then accept writes.
// If journaling fails the node stays a read-only follower and the next
// tick retries.
func (m *FailoverManager) promote() {
	m.f.Close()
	epoch, err := m.srv.BumpEpoch()
	if err != nil {
		m.logf("failover: epoch bump failed, staying read-only: %v", err)
		return
	}
	m.srv.SetReadOnly(false)
	m.promoted.Store(true)
	mFailovers.Inc()
	gEpoch.Set(int64(epoch))
	m.logf("failover: promoted at lsn %d, epoch %d (rank %d, primary %s silent)",
		m.f.LastApplied(), epoch, m.rank, m.opts.Primary)
	if m.opts.OnPromote != nil {
		m.opts.OnPromote(epoch)
	}
}

func (m *FailoverManager) logf(format string, args ...any) {
	if m.logger != nil {
		m.logger.Printf(format, args...)
	}
}

// Rejoin turns a fenced ex-primary back into a follower of the new one.
// Preconditions: old's follower loop returned re (so the primary told us
// exactly where the histories fork), old's own ship listener is closed (a
// live ship pin would block the truncation), and old is fenced (no writes
// are landing). The driver cuts the diverged WAL suffix after re.SafeLSN,
// drops checkpoints past it, detaches the old server WITHOUT a shutdown
// checkpoint (which would re-capture the diverged state), and re-recovers
// from the surviving prefix — or, when the dropped checkpoints were the
// only cover for already-pruned WAL records, wipes and lets the snapshot
// bootstrap rebuild from the new primary. The returned follower is wired
// but not started: callers Listen/Serve the new server, then f.Start().
func Rejoin(old *server.Server, cfg core.Config, re *RejoinError, logger *log.Logger, primaryShipAddr string, fopts FollowOptions) (*server.Server, *Follower, error) {
	w := old.WAL()
	if w == nil || cfg.DataDir == "" {
		return nil, nil, errors.New("cluster: rejoin requires a durable server")
	}
	if err := w.TruncateSuffix(re.SafeLSN); err != nil {
		return nil, nil, fmt.Errorf("cluster: truncating diverged wal suffix after %d: %w", re.SafeLSN, err)
	}
	ck := old.Checkpoints()
	if ck != nil {
		if err := ck.DropAfter(re.SafeLSN); err != nil {
			return nil, nil, fmt.Errorf("cluster: dropping diverged checkpoints: %w", err)
		}
	}
	// Local recovery reaches re.SafeLSN only if the surviving checkpoint
	// still covers the WAL's truncation horizon; the diverged checkpoints
	// just dropped may have been the only cover for records their saves
	// pruned.
	ckLSN := uint64(0)
	if ck != nil {
		if snap, err := ck.LoadLatest(); err == nil && snap != nil {
			ckLSN = snap.LSN
		}
	}
	oldest, oerr := w.OldestLSN()
	contiguous := oerr == nil && oldest <= ckLSN+1
	if err := old.Detach(); err != nil && logger != nil {
		logger.Printf("rejoin: detaching old server: %v", err)
	}
	if !contiguous {
		if logger != nil {
			logger.Printf("rejoin: local prefix has a gap (checkpoint %d, wal oldest %d); resyncing from scratch", ckLSN, oldest)
		}
		os.RemoveAll(filepath.Join(cfg.DataDir, "wal"))
		os.RemoveAll(filepath.Join(cfg.DataDir, "checkpoints"))
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rejoin engine: %w", err)
	}
	srv, err := server.NewDurable(eng, logger)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rejoin recovery: %w", err)
	}
	srv.SetOptions(server.Options{ReadOnly: true})
	f := NewFollower(srv, primaryShipAddr, logger, fopts)
	f.SetLastApplied(srv.WAL().LastLSN())
	return srv, f, nil
}
