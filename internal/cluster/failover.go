package cluster

// Automatic failover without an external coordinator (ISSUE 10). Each
// replica runs a FailoverManager: a failure detector over its Follower's
// last-contact clock plus a deterministic promotion ladder. Safety comes
// from epoch fencing, not from perfect detection — a false-positive
// promotion bumps the epoch, and the epoch'd ship protocol then fences the
// surviving old primary the moment anything carrying the newer epoch
// reaches it, so two writable nodes cannot both keep accepting writes that
// anyone will replicate. Liveness comes from the graded ladder: the
// designated successor (rank 0) promotes after one SuspectAfter window of
// silence, rank k waits k extra windows, so a dead successor only delays
// failover, never wedges it.
//
// Two mechanisms keep concurrent promotions from producing equal epochs
// (equal epochs can never fence each other, so they are the one shape of
// split-brain fencing cannot repair):
//
//   - Before acting, a non-zero rank surveys the ladder above it with ROLE
//     probes: if a higher rank already promoted, this node stands down and
//     re-points its follower at the winner; if a higher rank is alive but
//     undecided, this node keeps waiting; only an all-dead ladder above
//     clears it to promote.
//   - The promotion epoch itself is congruence-partitioned: each replica
//     may only journal epochs congruent to its index in the sorted peer
//     list (mod the peer count), so even promotions racing through a fully
//     partitioned ladder pick DISTINCT epochs — when the histories meet,
//     the lower epoch is fenced and rejoins, exactly like any deposed
//     primary.

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/server"
)

// successorRank orders a shard's replicas into a deterministic promotion
// ladder with no coordination: every replica ranks the peer set by
// mix64(hash64(peer) ^ hash64(primary)) descending — the same
// highest-random-weight math rendezvous placement uses, so any two nodes
// computing the ladder agree — with lexicographic tie-break, and returns
// self's position. Rank 0 is the designated successor. A peer not in the
// list ranks after everyone (len(peers)).
func successorRank(primary, self string, peers []string) int {
	type pw struct {
		addr string
		w    uint64
	}
	ph := hash64(primary)
	ranked := make([]pw, 0, len(peers))
	for _, p := range peers {
		ranked = append(ranked, pw{p, mix64(hash64(p) ^ ph)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].w != ranked[j].w {
			return ranked[i].w > ranked[j].w
		}
		return ranked[i].addr < ranked[j].addr
	})
	for i, p := range ranked {
		if p.addr == self {
			return i
		}
	}
	return len(ranked)
}

// RoleProbe is one peer's answer to a ladder survey: the ROLE fields that
// matter for promotion arbitration.
type RoleProbe struct {
	// Role is "primary", "follower", or "fenced".
	Role string
	// Epoch is the replication term the peer believes is current.
	Epoch uint64
	// ReplAddr is the peer's WAL-ship listener address, when it runs one
	// (a freshly promoted primary advertises it so survivors can follow).
	ReplAddr string
}

// probeRole is the default ladder prober: one ROLE round trip on the
// peer's client address.
func probeRole(addr string, timeout time.Duration) (RoleProbe, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return RoleProbe{}, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(nc, "ROLE\n"); err != nil {
		return RoleProbe{}, err
	}
	line, err := readLine(bufio.NewReaderSize(nc, 4<<10), maxShipLine)
	if err != nil {
		return RoleProbe{}, err
	}
	payload, ok := strings.CutPrefix(line, "OK ")
	if !ok {
		return RoleProbe{}, fmt.Errorf("cluster: ROLE probe of %s answered %q", addr, line)
	}
	var rp RoleProbe
	var followers int
	var lastLSN uint64
	var lag int64
	if _, err := fmt.Sscanf(payload, "role=%s epoch=%d followers=%d last_lsn=%d lag_records=%d",
		&rp.Role, &rp.Epoch, &followers, &lastLSN, &lag); err != nil {
		return RoleProbe{}, fmt.Errorf("cluster: malformed ROLE reply %q: %w", payload, err)
	}
	if i := strings.Index(payload, " repl="); i >= 0 {
		rp.ReplAddr = strings.TrimSpace(payload[i+len(" repl="):])
	}
	return rp, nil
}

// FailoverOptions configures one replica's failure detector. Zero values
// mean defaults.
type FailoverOptions struct {
	// Self is this replica's identity (its client address as listed in the
	// topology); Primary the watched primary's; Peers every replica of the
	// shard, including Self. They feed the deterministic ladder, the
	// pre-promotion survey (peer addresses are ROLE-probed), and the
	// congruence classes that keep concurrent promotion epochs distinct —
	// so every replica must be configured with the SAME peer set.
	Self    string
	Primary string
	Peers   []string
	// SuspectAfter is the silence threshold: rank 0 promotes after one
	// window, rank k after (1+k) windows (default 1s).
	SuspectAfter time.Duration
	// ProbeEvery is the detector tick (default 100ms).
	ProbeEvery time.Duration
	// Now is the detector's clock; injectable so chaos tests drive the
	// state machine deterministically (default time.Now).
	Now func() time.Time
	// OnPromote runs after a successful promotion (e.g. to start a ship
	// listener on the new primary).
	OnPromote func(epoch uint64)
	// ProbeRole surveys one higher-ranked peer before promoting;
	// injectable for tests (default: a real ROLE round trip).
	ProbeRole func(addr string, timeout time.Duration) (RoleProbe, error)
}

func (o FailoverOptions) normalize() FailoverOptions {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 100 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.ProbeRole == nil {
		o.ProbeRole = probeRole
	}
	// The congruence scheme requires Self to occupy one of the classes;
	// tolerate configs that list only the OTHER replicas in Peers.
	if o.Self != "" && !contains(o.Peers, o.Self) {
		o.Peers = append(append([]string(nil), o.Peers...), o.Self)
	}
	return o
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// FailoverManager turns a follower into a primary when the primary goes
// silent. Detection is purely local: the follower's LastContact clock
// (every shipped frame and successful dial refreshes it) measured against
// the graded threshold.
type FailoverManager struct {
	srv    *server.Server
	f      *Follower
	logger *log.Logger
	opts   FailoverOptions
	rank   int
	higher []string  // peers ranked above self, surveyed before promoting
	grace  time.Time // floor for LastContact; reset on construction and stand-down

	missWindows int // SuspectAfter windows already counted this suspicion episode

	promoted atomic.Bool
	stopCh   chan struct{}
	done     chan struct{}
	once     sync.Once
	stopOnce sync.Once
}

// NewFailoverManager wires a detector for a follower of srv's shard. Call
// Start to begin probing.
func NewFailoverManager(srv *server.Server, f *Follower, logger *log.Logger, opts FailoverOptions) *FailoverManager {
	opts = opts.normalize()
	m := &FailoverManager{
		srv:    srv,
		f:      f,
		logger: logger,
		opts:   opts,
		rank:   successorRank(opts.Primary, opts.Self, opts.Peers),
		grace:  opts.Now(),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, p := range opts.Peers {
		if p != opts.Self && successorRank(opts.Primary, p, opts.Peers) < m.rank {
			m.higher = append(m.higher, p)
		}
	}
	sort.Slice(m.higher, func(i, j int) bool {
		return successorRank(opts.Primary, m.higher[i], opts.Peers) <
			successorRank(opts.Primary, m.higher[j], opts.Peers)
	})
	gEpoch.Set(int64(srv.Epoch()))
	return m
}

// Rank returns this replica's position on the promotion ladder (0 = the
// designated successor).
func (m *FailoverManager) Rank() int { return m.rank }

// Promoted reports whether this manager has promoted its server.
func (m *FailoverManager) Promoted() bool { return m.promoted.Load() }

// threshold is the silence that triggers promotion at this node's rank.
func (m *FailoverManager) threshold() time.Duration {
	return m.opts.SuspectAfter * time.Duration(1+m.rank)
}

// Start launches the probe loop; it exits on Stop or after promoting.
func (m *FailoverManager) Start() {
	m.once.Do(func() { go m.run() })
}

// Stop halts probing (idempotent; no-op after a promotion already ended
// the loop).
func (m *FailoverManager) Stop() {
	m.stopOnce.Do(func() { close(m.stopCh) })
	<-m.done
}

func (m *FailoverManager) run() {
	defer close(m.done)
	t := time.NewTicker(m.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			if m.tick(m.opts.Now()) {
				return
			}
		}
	}
}

// tick advances the detector: one probe at time now. Returns true when the
// probe ended in a promotion. Split out (with the injectable clock) so
// tests can drive kill→detect→promote sequences without real sleeps.
func (m *FailoverManager) tick(now time.Time) bool {
	if m.promoted.Load() {
		return false
	}
	last := m.f.LastContact()
	if last.Before(m.grace) {
		last = m.grace
	}
	silence := now.Sub(last)
	if silence < m.opts.SuspectAfter {
		m.missWindows = 0
		return false
	}
	// Count each fully crossed SuspectAfter window exactly once, so the
	// counter measures missed heartbeat windows — independent of how often
	// the detector ticks during one suspicion episode.
	if w := int(silence / m.opts.SuspectAfter); w > m.missWindows {
		mHeartbeatMisses.Add(uint64(w - m.missWindows))
		m.missWindows = w
	}
	if silence < m.threshold() {
		return false
	}
	switch verdict, winner := m.surveyLadder(); verdict {
	case ladderPromoted:
		m.standDown(now, winner)
		return false
	case ladderAlive:
		// A better-ranked peer is alive but has not promoted. Either it
		// will (its threshold fires before ours), or it still hears the
		// primary (we are partitioned from the primary, not the cluster) —
		// in both cases promoting here would be the wrong node acting.
		return false
	}
	m.promote()
	return m.promoted.Load()
}

// ladderVerdict is the outcome of surveying the ladder above this node.
type ladderVerdict int

const (
	ladderDead     ladderVerdict = iota // every higher-ranked peer unreachable
	ladderAlive                         // a higher rank is alive but undecided
	ladderPromoted                      // a higher rank already promoted
)

// surveyLadder probes every peer ranked above self. Rank 0 has an empty
// ladder and is always clear to act.
func (m *FailoverManager) surveyLadder() (ladderVerdict, RoleProbe) {
	verdict := ladderDead
	for _, addr := range m.higher {
		rp, err := m.opts.ProbeRole(addr, m.probeTimeout())
		if err != nil {
			continue
		}
		if rp.Role == "primary" && rp.Epoch > m.srv.Epoch() {
			return ladderPromoted, rp
		}
		verdict = ladderAlive
	}
	return verdict, RoleProbe{}
}

// probeTimeout bounds one survey probe: half a suspicion window, clamped
// so the default 100ms test configs still get a usable dial timeout.
func (m *FailoverManager) probeTimeout() time.Duration {
	d := m.opts.SuspectAfter / 2
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// standDown records that a higher-ranked peer won the promotion race: the
// suspicion episode ends (grace resets so the detector starts a fresh
// silence measurement) and the follower is re-pointed at the winner's ship
// listener, whose stream will refresh LastContact from here on.
func (m *FailoverManager) standDown(now time.Time, winner RoleProbe) {
	m.grace = now
	m.missWindows = 0
	if winner.ReplAddr != "" && m.f.Target() != winner.ReplAddr {
		m.logf("failover: rank %d standing down; following promoted peer at %s (epoch %d)",
			m.rank, winner.ReplAddr, winner.Epoch)
		m.f.Retarget(winner.ReplAddr)
	}
}

// nextCongruentEpoch picks the promotion epoch: the smallest epoch above
// cur congruent to self's index in the sorted, deduplicated peer list
// (modulo the peer count). Each replica owns a disjoint residue class, so
// two replicas can NEVER journal the same epoch no matter how their
// promotions interleave — and distinct epochs fence: when two self-promoted
// histories meet, the lower epoch is deposed and rejoins. A single-replica
// shard degenerates to cur+1.
func nextCongruentEpoch(cur uint64, self string, peers []string) uint64 {
	uniq := append([]string(nil), peers...)
	sort.Strings(uniq)
	n, idx := 0, -1
	for i, p := range uniq {
		if i > 0 && p == uniq[i-1] {
			continue
		}
		if p == self {
			idx = n
		}
		n++
	}
	if n <= 1 || idx < 0 {
		return cur + 1
	}
	next := cur + 1
	for next%uint64(n) != uint64(idx) {
		next++
	}
	return next
}

// promote executes the safe promotion sequence: stop the apply loop first
// (no replicated apply may race the new history), journal the epoch bump
// durably (the RecEpoch record is both the fence token's birth certificate
// and the LSN where the new history starts), and only then accept writes.
// If journaling fails the node stays a read-only follower and the next
// tick retries.
func (m *FailoverManager) promote() {
	m.f.Close()
	next := nextCongruentEpoch(m.srv.Epoch(), m.opts.Self, m.opts.Peers)
	epoch, err := m.srv.BumpEpochTo(next)
	if err != nil {
		m.logf("failover: epoch bump failed, staying read-only: %v", err)
		return
	}
	m.srv.SetReadOnly(false)
	m.promoted.Store(true)
	mFailovers.Inc()
	m.logf("failover: promoted at lsn %d, epoch %d (rank %d, primary %s silent)",
		m.f.LastApplied(), epoch, m.rank, m.opts.Primary)
	if m.opts.OnPromote != nil {
		m.opts.OnPromote(epoch)
	}
}

func (m *FailoverManager) logf(format string, args ...any) {
	if m.logger != nil {
		m.logger.Printf(format, args...)
	}
}

// Rejoin turns a fenced ex-primary back into a follower of the new one.
// Preconditions: old's follower loop returned re (so the primary told us
// exactly where the histories fork), old's own ship listener is closed (a
// live ship pin would block the truncation), and old is fenced (no writes
// are landing). The driver cuts the diverged WAL suffix after re.SafeLSN,
// drops checkpoints past it, detaches the old server WITHOUT a shutdown
// checkpoint (which would re-capture the diverged state), and re-recovers
// from the surviving prefix — or, when the dropped checkpoints were the
// only cover for already-pruned WAL records, wipes and lets the snapshot
// bootstrap rebuild from the new primary. The returned follower is wired
// but not started: callers Listen/Serve the new server, then f.Start().
func Rejoin(old *server.Server, cfg core.Config, re *RejoinError, logger *log.Logger, primaryShipAddr string, fopts FollowOptions) (*server.Server, *Follower, error) {
	w := old.WAL()
	if w == nil || cfg.DataDir == "" {
		return nil, nil, errors.New("cluster: rejoin requires a durable server")
	}
	if err := w.TruncateSuffix(re.SafeLSN); err != nil {
		return nil, nil, fmt.Errorf("cluster: truncating diverged wal suffix after %d: %w", re.SafeLSN, err)
	}
	ck := old.Checkpoints()
	if ck != nil {
		if err := ck.DropAfter(re.SafeLSN); err != nil {
			return nil, nil, fmt.Errorf("cluster: dropping diverged checkpoints: %w", err)
		}
	}
	// Local recovery reaches re.SafeLSN only if the surviving checkpoint
	// still covers the WAL's truncation horizon; the diverged checkpoints
	// just dropped may have been the only cover for records their saves
	// pruned.
	ckLSN := uint64(0)
	if ck != nil {
		if snap, err := ck.LoadLatest(); err == nil && snap != nil {
			ckLSN = snap.LSN
		}
	}
	oldest, oerr := w.OldestLSN()
	contiguous := oerr == nil && oldest <= ckLSN+1
	if err := old.Detach(); err != nil && logger != nil {
		logger.Printf("rejoin: detaching old server: %v", err)
	}
	if !contiguous {
		if logger != nil {
			logger.Printf("rejoin: local prefix has a gap (checkpoint %d, wal oldest %d); resyncing from scratch", ckLSN, oldest)
		}
		// The wipe goes through the WAL's filesystem (the injected fault.FS
		// when one is in play) and every error is fatal: recovering over a
		// partially wiped data dir could resurrect the diverged state the
		// wipe was meant to discard.
		for _, sub := range []string{"wal", "checkpoints"} {
			if err := removeTree(w.FS(), filepath.Join(cfg.DataDir, sub)); err != nil {
				return nil, nil, fmt.Errorf("cluster: rejoin wipe of %s: %w", sub, err)
			}
		}
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rejoin engine: %w", err)
	}
	srv, err := server.NewDurableFS(eng, logger, w.FS())
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: rejoin recovery: %w", err)
	}
	srv.SetOptions(server.Options{ReadOnly: true})
	f := NewFollower(srv, primaryShipAddr, logger, fopts)
	f.SetLastApplied(srv.WAL().LastLSN())
	return srv, f, nil
}

// removeTree deletes dir recursively through the injected filesystem, so
// fault-injection schedules cover the rejoin wipe. A missing dir is
// success; any failed removal is an error for the caller to treat as
// fatal.
func removeTree(fs fault.FS, dir string) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		if e.IsDir() {
			if err := removeTree(fs, p); err != nil {
				return err
			}
			continue
		}
		if err := fs.Remove(p); err != nil {
			return err
		}
	}
	return fs.Remove(dir)
}
