package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/wal"
)

// Ship protocol, one conversation per follower connection:
//
//	follower → primary:  SYNC <lastAppliedLSN>
//	primary  → follower: SNAP <lsn> <nbytes>\n<raw checkpoint bytes>\n   (only when the WAL suffix alone cannot catch the follower up)
//	primary  → follower: REC <lsn> <type> <shipUnixNano> <payload>      (one per WAL record, in LSN order)
//	primary  → follower: HB <lastLSN> <shipUnixNano>                    (idle heartbeat; carries the primary's durable frontier)
//
// The handshake pins the shipped suffix in the primary's WAL before
// checking whether it still exists, so a checkpoint+truncate running
// concurrently can never open a gap between the snapshot the follower gets
// and the first record shipped after it (see position).

// testHookShipSnapshot, when set, runs after a snapshot has been selected
// for shipping but before the WAL suffix is re-pinned — the window a
// concurrent checkpoint+truncate would race into.
var testHookShipSnapshot func()

// ShipOptions tunes the primary-side replication server. Zero values mean
// defaults.
type ShipOptions struct {
	// Heartbeat is the idle HB interval (default 100ms). Heartbeats carry
	// the primary's last durable LSN so followers measure lag while idle.
	Heartbeat time.Duration
	// Poll is how often the tail is re-checked when caught up (default 2ms).
	Poll time.Duration
	// WriteTimeout bounds one flush to a follower (default 10s). A stalled
	// follower is disconnected, never allowed to pin WAL retention forever.
	WriteTimeout time.Duration
}

func (o ShipOptions) normalize() ShipOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 100 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// ShipServer streams a primary's WAL to followers. It reads the same
// CRC-framed segment files the server writes — shipping is a pure observer
// of the durability layer and never blocks the ingest path.
type ShipServer struct {
	log    *wal.Log
	ck     *checkpoint.Manager
	logger *log.Logger
	opts   ShipOptions

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShipServer wires a replication server to a durable server's WAL and
// checkpoint manager (srv.WAL() and srv.Checkpoints()).
func NewShipServer(w *wal.Log, ck *checkpoint.Manager, logger *log.Logger, opts ShipOptions) (*ShipServer, error) {
	if w == nil {
		return nil, errors.New("cluster: replication requires a durable server (nil WAL)")
	}
	return &ShipServer{
		log:    w,
		ck:     ck,
		logger: logger,
		opts:   opts.normalize(),
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Listen binds the replication listener and returns the bound address.
func (ss *ShipServer) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ss.mu.Lock()
	ss.ln = ln
	ss.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts follower connections until Close. Each follower gets its
// own shipping goroutine and WAL reader.
func (ss *ShipServer) Serve() error {
	ss.mu.Lock()
	ln := ss.ln
	ss.mu.Unlock()
	if ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			ss.mu.Lock()
			closed := ss.closed
			ss.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			nc.Close()
			return nil
		}
		ss.conns[nc] = struct{}{}
		ss.wg.Add(1)
		ss.mu.Unlock()
		go func() {
			defer ss.wg.Done()
			ss.serveConn(nc)
			ss.mu.Lock()
			delete(ss.conns, nc)
			ss.mu.Unlock()
		}()
	}
}

// Close stops the listener and disconnects every follower.
func (ss *ShipServer) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	ln := ss.ln
	for nc := range ss.conns {
		nc.Close()
	}
	ss.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	ss.wg.Wait()
	return err
}

func (ss *ShipServer) isClosed() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.closed
}

func (ss *ShipServer) logf(format string, args ...any) {
	if ss.logger != nil {
		ss.logger.Printf(format, args...)
	}
}

// shipLimit is the highest LSN safe to ship. Under FsyncAlways a follower
// must never hold a record the primary could lose in a crash, so shipping
// waits for the group-commit frontier; laxer policies accept that the
// whole suffix is volatile and ship the appended frontier.
func (ss *ShipServer) shipLimit() uint64 {
	if ss.log.Policy() == wal.FsyncAlways {
		return ss.log.SyncedLSN()
	}
	return ss.log.LastLSN()
}

// position resolves where to start shipping for a follower that has
// applied lastApplied: either the WAL still holds lastApplied+1 (ship the
// suffix directly) or the follower is behind the truncation horizon and
// needs the latest complete checkpoint plus the suffix after it.
//
// The pin-then-verify loop closes the race with a concurrent checkpoint:
// the suffix is pinned BEFORE checking it still exists. If the check fails
// the pin moved nothing (TruncateThrough had already won), so the pin is
// dropped, the latest complete snapshot is picked, and the loop re-pins at
// snapshotLSN+1 — a checkpoint that lands between those two steps just
// sends the loop around again with a newer snapshot. The returned pin is
// held (and advanced) for the life of the shipping connection, bounding
// WAL retention to the follower's unshipped suffix.
func (ss *ShipServer) position(lastApplied uint64) (snapRaw []byte, from uint64, pin *wal.Pin, err error) {
	from = lastApplied + 1
	for attempt := 0; attempt < 16; attempt++ {
		pin = ss.log.Pin(from)
		oldest, err := ss.log.OldestLSN()
		if err != nil {
			pin.Release()
			return nil, 0, nil, err
		}
		if from >= oldest {
			return snapRaw, from, pin, nil
		}
		pin.Release()
		if ss.ck == nil {
			return nil, 0, nil, fmt.Errorf("cluster: follower at lsn %d predates wal (oldest %d) and no checkpoints exist", lastApplied, oldest)
		}
		raw, snapLSN, err := ss.ck.LatestRaw()
		if err != nil {
			return nil, 0, nil, err
		}
		if raw == nil {
			return nil, 0, nil, fmt.Errorf("cluster: follower at lsn %d predates wal (oldest %d) and no checkpoint is available", lastApplied, oldest)
		}
		if testHookShipSnapshot != nil {
			testHookShipSnapshot()
		}
		snapRaw, from = raw, snapLSN+1
	}
	return nil, 0, nil, errors.New("cluster: could not pin a consistent snapshot+suffix (checkpoints outpacing handshake)")
}

func (ss *ShipServer) serveConn(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 4<<10)
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := readLine(br, 256)
	if err != nil {
		ss.logf("repl: handshake read: %v", err)
		return
	}
	rest, ok := strings.CutPrefix(line, "SYNC ")
	if !ok {
		ss.logf("repl: bad handshake %q", line)
		return
	}
	lastApplied, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		ss.logf("repl: bad SYNC lsn %q", rest)
		return
	}
	snapRaw, from, pin, err := ss.position(lastApplied)
	if err != nil {
		ss.logf("repl: position follower@%d: %v", lastApplied, err)
		return
	}
	defer pin.Release()

	gFollowers.Inc()
	defer gFollowers.Dec()

	// After the handshake the follower sends nothing; a read returning
	// means it hung up (or the link died) — close so blocked writes fail
	// fast instead of waiting out TCP buffers.
	nc.SetReadDeadline(time.Time{})
	go func() {
		var b [1]byte
		nc.Read(b[:])
		nc.Close()
	}()

	bw := bufio.NewWriterSize(nc, 64<<10)
	flush := func() error {
		nc.SetWriteDeadline(time.Now().Add(ss.opts.WriteTimeout))
		return bw.Flush()
	}
	if snapRaw != nil {
		fmt.Fprintf(bw, "SNAP %d %d\n", from-1, len(snapRaw))
		bw.Write(snapRaw)
		bw.WriteByte('\n')
		if err := flush(); err != nil {
			ss.logf("repl: follower@%d: snapshot send: %v", lastApplied, err)
			return
		}
	}

	rd := ss.log.NewReader(from)
	defer rd.Close()
	lastHB := time.Time{}
	pending := 0
	for {
		if ss.isClosed() {
			flush()
			return
		}
		if rd.NextLSN() <= ss.shipLimit() {
			rec, ok, err := rd.Next()
			if err != nil {
				// Includes wal.ErrTruncated: retention raced past this
				// reader (possible only if the pin was released by Close).
				// The follower reconnects and re-handshakes.
				ss.logf("repl: follower stream: %v", err)
				flush()
				return
			}
			if ok {
				fmt.Fprintf(bw, "REC %d %d %d %s\n", rec.LSN, rec.Type, time.Now().UnixNano(), rec.Payload)
				pin.Advance(rec.LSN + 1)
				pending++
				if pending >= 64 {
					if err := flush(); err != nil {
						ss.logf("repl: follower write: %v", err)
						return
					}
					pending = 0
				}
				continue
			}
		}
		// Caught up to the shippable frontier (or gated on durability):
		// drain the buffer, heartbeat if due, then poll.
		if err := flush(); err != nil {
			ss.logf("repl: follower write: %v", err)
			return
		}
		pending = 0
		if time.Since(lastHB) >= ss.opts.Heartbeat {
			fmt.Fprintf(bw, "HB %d %d\n", ss.shipLimit(), time.Now().UnixNano())
			if err := flush(); err != nil {
				ss.logf("repl: follower write: %v", err)
				return
			}
			lastHB = time.Now()
		}
		time.Sleep(ss.opts.Poll)
	}
}

// Decode a shipped checkpoint payload; kept here so follower code does not
// import the checkpoint wire format directly.
func decodeSnapshot(raw []byte) (*checkpoint.Snapshot, error) {
	return checkpoint.Decode(raw)
}
