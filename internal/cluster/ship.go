package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/server"
	"repro/internal/wal"
)

// Ship protocol, one conversation per follower connection. Every frame
// carries the sender's current epoch — a fencing token in the style of a
// Raft term, NOT a per-record attribute (the authoritative epoch history
// lives in journaled RecEpoch records that ship like any other record):
//
//	follower → primary:  SYNC <lastAppliedLSN> <epoch>
//	primary  → follower: FENCE <epoch>                                           (the follower announced a higher epoch; this node fences itself and closes)
//	primary  → follower: TRUNC <safeLSN> <epoch>                                 (stale-epoch rejoiner holds a diverged suffix; truncate to safeLSN and re-SYNC)
//	primary  → follower: SNAP <lsn> <epoch> <nbytes>\n<raw checkpoint bytes>\n   (only when the WAL suffix alone cannot catch the follower up)
//	primary  → follower: REC <lsn> <epoch> <type> <shipUnixNano> <payload>       (one per WAL record, in LSN order)
//	primary  → follower: HB <lastLSN> <epoch> <shipUnixNano>                     (idle heartbeat; carries the primary's durable frontier)
//
// A SYNC without an epoch field is rejected with an ERR line. Accepting it
// would be a rolling-upgrade trap: a pre-epoch follower would parse the
// epoch field of REC frames as the record type and silently apply garbage.
// Rejecting the handshake makes the version skew loud instead.
//
// The handshake pins the shipped suffix in the primary's WAL before
// checking whether it still exists, so a checkpoint+truncate running
// concurrently can never open a gap between the snapshot the follower gets
// and the first record shipped after it (see position).

// testHookShipSnapshot, when set, runs after a snapshot has been selected
// for shipping but before the WAL suffix is re-pinned — the window a
// concurrent checkpoint+truncate would race into.
var testHookShipSnapshot func()

// ShipOptions tunes the primary-side replication server. Zero values mean
// defaults.
type ShipOptions struct {
	// Heartbeat is the idle HB interval (default 100ms). Heartbeats carry
	// the primary's last durable LSN so followers measure lag while idle.
	Heartbeat time.Duration
	// Poll is how often the tail is re-checked when caught up (default 2ms).
	Poll time.Duration
	// WriteTimeout bounds one flush to a follower (default 10s). A stalled
	// follower is disconnected, never allowed to pin WAL retention forever.
	WriteTimeout time.Duration
}

func (o ShipOptions) normalize() ShipOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 100 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// ShipServer streams a primary's WAL to followers. It reads the same
// CRC-framed segment files the server writes — shipping is a pure observer
// of the durability layer and never blocks the ingest path. The server
// handle supplies the epoch used to stamp and fence frames.
type ShipServer struct {
	srv    *server.Server
	log    *wal.Log
	ck     *checkpoint.Manager
	logger *log.Logger
	opts   ShipOptions

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewShipServer wires a replication server to a durable server: it ships
// the server's WAL and checkpoints, stamps frames with the server's
// current epoch, and registers itself as the server's follower-count
// source for ROLE.
func NewShipServer(srv *server.Server, logger *log.Logger, opts ShipOptions) (*ShipServer, error) {
	if srv == nil || srv.WAL() == nil {
		return nil, errors.New("cluster: replication requires a durable server (nil WAL)")
	}
	ss := &ShipServer{
		srv:    srv,
		log:    srv.WAL(),
		ck:     srv.Checkpoints(),
		logger: logger,
		opts:   opts.normalize(),
		conns:  make(map[net.Conn]struct{}),
	}
	srv.SetFollowerCountFn(ss.followerCount)
	return ss, nil
}

// Listen binds the replication listener and returns the bound address. The
// address is also advertised through the server's ROLE reply (repl= field)
// so peers probing this node can learn where to follow it.
func (ss *ShipServer) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ss.mu.Lock()
	ss.ln = ln
	ss.mu.Unlock()
	bound := ln.Addr().String()
	ss.srv.SetReplAddrFn(func() string { return bound })
	return ln.Addr(), nil
}

// Serve accepts follower connections until Close. Each follower gets its
// own shipping goroutine and WAL reader.
func (ss *ShipServer) Serve() error {
	ss.mu.Lock()
	ln := ss.ln
	ss.mu.Unlock()
	if ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			ss.mu.Lock()
			closed := ss.closed
			ss.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			nc.Close()
			return nil
		}
		ss.conns[nc] = struct{}{}
		ss.wg.Add(1)
		ss.mu.Unlock()
		go func() {
			defer ss.wg.Done()
			ss.serveConn(nc)
			ss.mu.Lock()
			delete(ss.conns, nc)
			ss.mu.Unlock()
		}()
	}
}

// Close stops the listener and disconnects every follower.
func (ss *ShipServer) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	ln := ss.ln
	for nc := range ss.conns {
		nc.Close()
	}
	ss.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	ss.wg.Wait()
	return err
}

func (ss *ShipServer) isClosed() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.closed
}

func (ss *ShipServer) followerCount() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.conns)
}

func (ss *ShipServer) logf(format string, args ...any) {
	if ss.logger != nil {
		ss.logger.Printf(format, args...)
	}
}

// shipLimit is the highest LSN safe to ship. Under FsyncAlways a follower
// must never hold a record the primary could lose in a crash, so shipping
// waits for the group-commit frontier; laxer policies accept that the
// whole suffix is volatile and ship the appended frontier.
func (ss *ShipServer) shipLimit() uint64 {
	if ss.log.Policy() == wal.FsyncAlways {
		return ss.log.SyncedLSN()
	}
	return ss.log.LastLSN()
}

// position resolves where to start shipping for a follower that has
// applied lastApplied: either the WAL still holds lastApplied+1 (ship the
// suffix directly) or the follower is behind the truncation horizon and
// needs the latest complete checkpoint plus the suffix after it.
//
// The pin-then-verify loop closes the race with a concurrent checkpoint:
// the suffix is pinned BEFORE checking it still exists. If the check fails
// the pin moved nothing (TruncateThrough had already won), so the pin is
// dropped, the latest complete snapshot is picked, and the loop re-pins at
// snapshotLSN+1 — a checkpoint that lands between those two steps just
// sends the loop around again with a newer snapshot. The returned pin is
// held (and advanced) for the life of the shipping connection, bounding
// WAL retention to the follower's unshipped suffix.
func (ss *ShipServer) position(lastApplied uint64) (snapRaw []byte, from uint64, pin *wal.Pin, err error) {
	from = lastApplied + 1
	for attempt := 0; attempt < 16; attempt++ {
		pin = ss.log.Pin(from)
		oldest, err := ss.log.OldestLSN()
		if err != nil {
			pin.Release()
			return nil, 0, nil, err
		}
		if from >= oldest {
			return snapRaw, from, pin, nil
		}
		pin.Release()
		if ss.ck == nil {
			return nil, 0, nil, fmt.Errorf("cluster: follower at lsn %d predates wal (oldest %d) and no checkpoints exist", lastApplied, oldest)
		}
		raw, snapLSN, err := ss.ck.LatestRaw()
		if err != nil {
			return nil, 0, nil, err
		}
		if raw == nil {
			return nil, 0, nil, fmt.Errorf("cluster: follower at lsn %d predates wal (oldest %d) and no checkpoint is available", lastApplied, oldest)
		}
		if testHookShipSnapshot != nil {
			testHookShipSnapshot()
		}
		snapRaw, from = raw, snapLSN+1
	}
	return nil, 0, nil, errors.New("cluster: could not pin a consistent snapshot+suffix (checkpoints outpacing handshake)")
}

func (ss *ShipServer) serveConn(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 4<<10)
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := readLine(br, 256)
	if err != nil {
		ss.logf("repl: handshake read: %v", err)
		return
	}
	rest, ok := strings.CutPrefix(line, "SYNC ")
	if !ok {
		ss.logf("repl: bad handshake %q", line)
		return
	}
	reply := func(format string, args ...any) {
		nc.SetWriteDeadline(time.Now().Add(ss.opts.WriteTimeout))
		fmt.Fprintf(nc, format, args...)
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		// An epochless SYNC is a pre-epoch connector that cannot parse the
		// current frame formats; streaming to it would have it misread the
		// epoch field of REC frames as the record type. Fail the handshake
		// loudly instead.
		ss.logf("repl: rejecting epochless SYNC %q", rest)
		reply("ERR SYNC requires <lastAppliedLSN> <epoch>; upgrade the follower\n")
		return
	}
	lastApplied, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		ss.logf("repl: bad SYNC lsn %q", fields[0])
		reply("ERR bad SYNC lsn\n")
		return
	}
	reqEpoch, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil || reqEpoch == 0 {
		ss.logf("repl: bad SYNC epoch %q", fields[1])
		reply("ERR bad SYNC epoch\n")
		return
	}
	cur := ss.srv.Epoch()
	if reqEpoch > cur {
		// The connector has seen a higher epoch than ours: a newer primary
		// was promoted while this node thought it was current. Fence this
		// node (its dispatch starts rejecting writes with the stale-epoch
		// sentinel) and tell the connector why it gets no stream.
		ss.srv.Fence(reqEpoch)
		ss.logf("repl: fenced by follower@%d at epoch %d (local %d)", lastApplied, reqEpoch, cur)
		reply("FENCE %d\n", reqEpoch)
		return
	}
	if reqEpoch < cur {
		// Stale-epoch rejoiner. Anything it applied past the first LSN of a
		// newer epoch is diverged history that never happened here; it must
		// truncate that suffix before it can follow.
		if safe := ss.srv.SafeJoinLSN(reqEpoch, lastApplied); lastApplied > safe {
			ss.logf("repl: rejoiner@%d epoch %d diverged; truncate to %d (epoch %d)", lastApplied, reqEpoch, safe, cur)
			reply("TRUNC %d %d\n", safe, cur)
			return
		}
	}

	// After the handshake the follower sends nothing; a read returning
	// means it hung up (or the link died) — close so blocked writes fail
	// fast instead of waiting out TCP buffers. Started BEFORE position()
	// and the snapshot send: a peer that dies mid-snapshot must unblock
	// the write below, or this goroutine would hold its WAL pin forever.
	nc.SetReadDeadline(time.Time{})
	go func() {
		var b [1]byte
		nc.Read(b[:])
		nc.Close()
	}()

	snapRaw, from, pin, err := ss.position(lastApplied)
	if err != nil {
		ss.logf("repl: position follower@%d: %v", lastApplied, err)
		return
	}
	defer pin.Release()

	gFollowers.Inc()
	defer gFollowers.Dec()

	bw := bufio.NewWriterSize(nc, 64<<10)
	flush := func() error {
		nc.SetWriteDeadline(time.Now().Add(ss.opts.WriteTimeout))
		return bw.Flush()
	}
	if snapRaw != nil {
		fmt.Fprintf(bw, "SNAP %d %d %d\n", from-1, ss.srv.Epoch(), len(snapRaw))
		// The snapshot body can exceed the buffer, so this Write flushes to
		// the socket internally — it needs the same deadline as flush() or a
		// dead peer pins WAL retention until the TCP stack gives up.
		nc.SetWriteDeadline(time.Now().Add(ss.opts.WriteTimeout))
		bw.Write(snapRaw)
		bw.WriteByte('\n')
		if err := flush(); err != nil {
			ss.logf("repl: follower@%d: snapshot send: %v", lastApplied, err)
			return
		}
	}

	rd := ss.log.NewReader(from)
	defer rd.Close()
	lastHB := time.Time{}
	pending := 0
	for {
		if ss.isClosed() {
			flush()
			return
		}
		if rd.NextLSN() <= ss.shipLimit() {
			rec, ok, err := rd.Next()
			if err != nil {
				// Includes wal.ErrTruncated: retention raced past this
				// reader (possible only if the pin was released by Close).
				// The follower reconnects and re-handshakes.
				ss.logf("repl: follower stream: %v", err)
				flush()
				return
			}
			if ok {
				fmt.Fprintf(bw, "REC %d %d %d %d %s\n", rec.LSN, ss.srv.Epoch(), rec.Type, time.Now().UnixNano(), rec.Payload)
				pin.Advance(rec.LSN + 1)
				pending++
				if pending >= 64 {
					if err := flush(); err != nil {
						ss.logf("repl: follower write: %v", err)
						return
					}
					pending = 0
				}
				continue
			}
		}
		// Caught up to the shippable frontier (or gated on durability):
		// drain the buffer, heartbeat if due, then poll.
		if err := flush(); err != nil {
			ss.logf("repl: follower write: %v", err)
			return
		}
		pending = 0
		if time.Since(lastHB) >= ss.opts.Heartbeat {
			fmt.Fprintf(bw, "HB %d %d %d\n", ss.shipLimit(), ss.srv.Epoch(), time.Now().UnixNano())
			if err := flush(); err != nil {
				ss.logf("repl: follower write: %v", err)
				return
			}
			lastHB = time.Now()
		}
		time.Sleep(ss.opts.Poll)
	}
}

// Decode a shipped checkpoint payload; kept here so follower code does not
// import the checkpoint wire format directly.
func decodeSnapshot(raw []byte) (*checkpoint.Snapshot, error) {
	return checkpoint.Decode(raw)
}
