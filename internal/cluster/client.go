package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/randvar"
	"repro/internal/server"
	"repro/internal/stream"
)

// testHookRouteRetry, when set, runs before each ingest retry attempt
// (attempt numbering starts at 1). Chaos tests use it to promote a
// follower and kill the primary between the torn first attempt and the
// retry.
var testHookRouteRetry func(attempt int)

// ClientOptions tunes the cluster client. Zero values mean defaults.
type ClientOptions struct {
	// DialTimeout and OpTimeout are passed to each per-node connection
	// (defaults 5s, 30s).
	DialTimeout time.Duration
	OpTimeout   time.Duration
	// Retries is how many extra attempts an ingest gets across failover
	// targets after a transport failure (default 0 = fail fast). Every
	// ingest carries a request id when Retries > 0, so a retry whose
	// original applied is answered from the dedup window — on the primary
	// or on a promoted follower, which replicates the window.
	Retries int
	// RetryBase and RetryMax shape backoff between attempts (defaults
	// 50ms, 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes request ids and backoff jitter deterministic for tests;
	// 0 derives a seed from the clock.
	Seed uint64
}

func (o ClientOptions) normalize() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(time.Now().UnixNano()) | 1
	}
	return o
}

// Client routes commands across a cluster: streams shard to primaries by
// rendezvous hash, join inputs co-locate, reads fan out to replicas, and
// ingest retries fail over with exactly-once semantics. It multiplexes
// every node's asynchronous DATA results onto one channel.
type Client struct {
	topo *topo
	opts ClientOptions

	mu       sync.Mutex
	clients  map[string]*server.Client
	closed   bool
	reqSeq   uint64
	rngState uint64

	data     chan server.Data
	dataOnce sync.Once
	pumps    sync.WaitGroup
}

// NewClient builds a routing client over the given nodes. No connections
// are opened until the first command needs one.
func NewClient(nodes []Node, opts ClientOptions) (*Client, error) {
	t, err := newTopo(nodes)
	if err != nil {
		return nil, err
	}
	o := opts.normalize()
	return &Client{
		topo:     t,
		opts:     o,
		clients:  make(map[string]*server.Client),
		rngState: o.Seed,
		data:     make(chan server.Data, 1024),
	}, nil
}

// Data returns the merged stream of asynchronous query results from every
// node the client is subscribed on. Closed by Close.
func (c *Client) Data() <-chan server.Data { return c.data }

// Close closes every node connection and the Data channel.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	clients := make([]*server.Client, 0, len(c.clients))
	for _, cl := range c.clients {
		clients = append(clients, cl)
	}
	c.mu.Unlock()
	var first error
	for _, cl := range clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.pumps.Wait()
	c.dataOnce.Do(func() { close(c.data) })
	return first
}

// clientFor returns (dialing if needed) the connection to addr. Each
// node connection pumps its DATA results into the merged channel.
func (c *Client) clientFor(addr string) (*server.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("cluster: client closed")
	}
	if cl, ok := c.clients[addr]; ok {
		return cl, nil
	}
	cl, err := server.DialOpts(addr, server.DialOptions{
		DialTimeout: c.opts.DialTimeout,
		OpTimeout:   c.opts.OpTimeout,
		// Per-node retries stay off: the routing layer owns retry policy
		// (it must be able to switch nodes between attempts).
		Retries: 0,
		Seed:    c.opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	c.clients[addr] = cl
	c.pumps.Add(1)
	go func() {
		defer c.pumps.Done()
		for d := range cl.Data() {
			select {
			case c.data <- d:
			default:
				// A subscriber that stopped draining must not wedge every
				// node's read loop; dropping mirrors the server's own
				// slow-subscriber policy.
			}
		}
	}()
	return cl, nil
}

// dropClient discards a (likely broken) cached connection so the next
// attempt redials.
func (c *Client) dropClient(addr string, cl *server.Client) {
	c.mu.Lock()
	if c.clients[addr] == cl {
		delete(c.clients, addr)
	}
	c.mu.Unlock()
	cl.Close()
}

func (c *Client) nextReqID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqSeq++
	return fmt.Sprintf("c%x-%d", c.opts.Seed&0xffffffff, c.reqSeq)
}

func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase << uint(min(attempt-1, 16))
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	c.mu.Lock()
	c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
	r := c.rngState >> 33
	c.mu.Unlock()
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + r%half)
}

// RegisterStream registers a stream's schema on the node rendezvous
// hashing assigns it.
func (c *Client) RegisterStream(schema *stream.Schema) error {
	parts := make([]string, 0, schema.Arity()+1)
	parts = append(parts, schema.Name)
	for _, col := range schema.Columns {
		if col.Probabilistic {
			parts = append(parts, col.Name+":dist")
		} else {
			parts = append(parts, col.Name)
		}
	}
	ddl := strings.Join(parts, " ")
	node := c.topo.registerStream(schema.Name, ddl)
	cl, err := c.clientFor(c.topo.primaryAddr(node))
	if err != nil {
		return err
	}
	_, err = cl.Do("STREAM " + ddl)
	return err
}

// Query registers a continuous query on the node owning its input
// stream(s), first re-homing clean stream groups so a join's inputs share
// a node. Results arrive on Data() once subscribed.
func (c *Client) Query(id, sqlText string) error {
	if strings.ContainsAny(id, " \n") {
		return fmt.Errorf("cluster: query id %q contains whitespace", id)
	}
	node, moves, err := c.topo.placeQuery(id, sqlText)
	if err != nil {
		return err
	}
	for _, mv := range moves {
		cl, err := c.clientFor(c.topo.primaryAddr(mv.node))
		if err != nil {
			return err
		}
		if _, err := cl.Do("STREAM " + mv.ddl); err != nil {
			return fmt.Errorf("cluster: re-homing stream %s for query %s: %w", mv.stream, id, err)
		}
	}
	cl, err := c.clientFor(c.topo.primaryAddr(node))
	if err != nil {
		return err
	}
	_, err = cl.Do("QUERY " + id + " " + sqlText)
	return err
}

// Insert pushes one tuple to the stream's node; returns the number of
// query results it produced.
func (c *Client) Insert(streamName string, fields ...randvar.Field) (int, error) {
	parts := make([]string, 0, len(fields)+2)
	parts = append(parts, "INSERT", streamName)
	for _, f := range fields {
		parts = append(parts, server.FormatFieldSpec(f))
	}
	payload, err := c.ingest(streamName, strings.Join(parts, " "))
	if err != nil {
		return 0, err
	}
	n := 0
	fmt.Sscanf(payload, "inserted results=%d", &n)
	return n, nil
}

// InsertBatch pushes several tuples in one round trip to the stream's
// node; returns the number of query results the batch produced.
func (c *Client) InsertBatch(streamName string, rows ...[]randvar.Field) (int, error) {
	if len(rows) == 0 {
		return 0, errors.New("cluster: empty batch")
	}
	parts := make([]string, 0, 2+2*len(rows))
	parts = append(parts, "INSERTBATCH", streamName)
	for i, fields := range rows {
		if i > 0 {
			parts = append(parts, "|")
		}
		for _, f := range fields {
			parts = append(parts, server.FormatFieldSpec(f))
		}
	}
	payload, err := c.ingest(streamName, strings.Join(parts, " "))
	if err != nil {
		return 0, err
	}
	tuples, results := 0, 0
	fmt.Sscanf(payload, "inserted tuples=%d results=%d", &tuples, &results)
	return results, nil
}

// ingest routes one INSERT/INSERTBATCH line with failover retries. The
// line gets a request id whenever retries are enabled; attempt k targets
// failoverAddrs[k mod n], so the first attempt hits the primary and
// retries walk the replicas (a promoted one answers — deduplicated — and
// an unpromoted one refuses, sending the loop onward).
func (c *Client) ingest(streamName, line string) (string, error) {
	node, ok := c.topo.streamNode(streamName)
	if !ok {
		return "", fmt.Errorf("cluster: stream %s not registered", streamName)
	}
	c.topo.markDirty(streamName)
	if c.opts.Retries > 0 {
		line += " @" + c.nextReqID()
	}
	targets := c.topo.failoverAddrs(node)
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			mRouteRetries.Inc()
			if hook := testHookRouteRetry; hook != nil {
				hook(attempt)
			}
			time.Sleep(c.backoff(attempt))
		}
		addr := targets[attempt%len(targets)]
		cl, err := c.clientFor(addr)
		if err != nil {
			lastErr = err
			continue
		}
		payload, err := cl.Do(line)
		if err == nil {
			return payload, nil
		}
		var se server.ServerError
		if errors.As(err, &se) {
			// The server answered. "read-only replica" means this target is
			// a follower that has not been promoted (yet); "fenced: stale
			// epoch" means it is an ex-primary that lost a failover — keep
			// failing over either way. Any other ERR is a real rejection.
			if retryableIngestReject(string(se)) {
				lastErr = err
				continue
			}
			return "", err
		}
		// Transport failure: the connection is suspect, drop it so the
		// next attempt (possibly back on this address) redials.
		c.dropClient(addr, cl)
		lastErr = err
	}
	return "", lastErr
}

// Stats fetches a query's counters from a replica of its node (bounded
// staleness; the primary serves it when the node has no replicas).
func (c *Client) Stats(id string) (core.QueryStats, error) {
	cl, err := c.readClient(id)
	if err != nil {
		return core.QueryStats{}, err
	}
	return cl.Stats(id)
}

// QueryMetrics fetches a query's rolling accuracy metrics from a replica.
func (c *Client) QueryMetrics(id string) (server.QueryMetrics, error) {
	cl, err := c.readClient(id)
	if err != nil {
		return server.QueryMetrics{}, err
	}
	return cl.QueryMetrics(id)
}

// Explain fetches a query's plan from a replica.
func (c *Client) Explain(id string) (string, error) {
	cl, err := c.readClient(id)
	if err != nil {
		return "", err
	}
	return cl.Explain(id)
}

// Subscribe attaches to a query's result feed on a replica of its node;
// results arrive on Data().
func (c *Client) Subscribe(id string) error {
	cl, err := c.readClient(id)
	if err != nil {
		return err
	}
	return cl.Subscribe(id)
}

// CloseQuery deregisters a query on its primary.
func (c *Client) CloseQuery(id string) error {
	node, ok := c.topo.queryNode(id)
	if !ok {
		return fmt.Errorf("cluster: unknown query %s", id)
	}
	cl, err := c.clientFor(c.topo.primaryAddr(node))
	if err != nil {
		return err
	}
	if err := cl.CloseQuery(id); err != nil {
		return err
	}
	c.topo.dropQuery(id)
	return nil
}

func (c *Client) readClient(queryID string) (*server.Client, error) {
	node, ok := c.topo.queryNode(queryID)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown query %s", queryID)
	}
	return c.clientFor(c.topo.readAddr(node))
}
