package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// A follower that tails the live WAL serves byte-identical engine reads,
// rejects writes, and reports zero lag once caught up.
func TestReplicationBasic(t *testing.T) {
	p := startPrimary(t, 1, 1<<20, 0)
	f := startFollower(t, 1, p.shipAddr)

	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 8, 1)
	pc.mustOK("INSERTBATCH readings 9 N(75,16,9) | 10 S(55;52;58;61)")
	waitCaughtUp(t, p, f)

	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, f.addr)
	compareReplies(t, pr, fc,
		"STATS q1", "STATS q2", "METRICS q1", "METRICS q2", "EXPLAIN q1", "EXPLAIN q2")

	// Writes are rejected until promotion; reads and diagnostics are not.
	for _, cmd := range []string{
		"INSERT readings 99 N(1,1,1)",
		"INSERTBATCH readings 99 N(1,1,1)",
		"STREAM other x",
		"QUERY q9 SELECT temp FROM readings",
		"CLOSE q1",
		"SHED 1",
	} {
		rep := fc.cmd(cmd)
		last := rep[len(rep)-1]
		if !strings.HasPrefix(last, "ERR") || !strings.Contains(last, "read-only replica") {
			t.Fatalf("%q on follower: got %q, want read-only rejection", cmd, last)
		}
	}
	if rep := fc.cmd("SHED"); !strings.HasPrefix(rep[len(rep)-1], "OK") {
		t.Fatalf("bare SHED (status read) should work on a follower: %q", rep)
	}

	if got := gFollowers.Value(); got < 1 {
		t.Fatalf("asdb_repl_followers = %d, want >= 1", got)
	}
	if got := gLagRecords.Value(); got != 0 {
		t.Fatalf("asdb_repl_lag_records = %d after catch-up, want 0", got)
	}
	if got := gLagSeconds.Value(); got != 0 {
		t.Fatalf("asdb_repl_lag_seconds = %g after catch-up, want 0", got)
	}
}

// A follower arriving after checkpoints truncated the WAL bootstraps from
// the latest complete snapshot plus the exact WAL suffix.
func TestSnapshotCatchup(t *testing.T) {
	p := startPrimary(t, 1, 4, 256)
	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 24, 1)

	oldest, err := p.srv.WAL().OldestLSN()
	if err != nil {
		t.Fatal(err)
	}
	if oldest <= 1 {
		t.Fatalf("workload did not truncate the WAL (oldest=%d); snapshot path untested", oldest)
	}

	f := startFollower(t, 4, p.shipAddr)
	lsn := waitCaughtUp(t, p, f)
	if f.f.LastApplied() != lsn {
		t.Fatalf("lastApplied = %d, want %d", f.f.LastApplied(), lsn)
	}
	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, f.addr)
	// Telemetry (rolling CI widths) is observation-only and not part of
	// the checkpointed state, so METRICS is only byte-identical for
	// followers that replayed every record; snapshot bootstraps compare
	// the deterministic engine reads.
	compareReplies(t, pr, fc, "STATS q1", "STATS q2", "EXPLAIN q2")

	// Late writes still flow: the snapshot seeded state, the live tail
	// extends it.
	insertN(t, pc, 4, 100)
	waitCaughtUp(t, p, f)
	compareReplies(t, pr, fc, "STATS q1", "STATS q2")
}

// A follower that dies and is replaced catches up even when the primary
// truncated past the crash point in between.
func TestFollowerCrashRestartCatchup(t *testing.T) {
	p := startPrimary(t, 1, 4, 256)
	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 6, 1)

	f1 := startFollower(t, 1, p.shipAddr)
	waitCaughtUp(t, p, f1)
	f1.f.Close()
	f1.srv.Close()

	// The dead follower's position falls behind the truncation horizon.
	insertN(t, pc, 24, 50)

	f2 := startFollower(t, 2, p.shipAddr)
	waitCaughtUp(t, p, f2)
	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, f2.addr)
	compareReplies(t, pr, fc, "STATS q1", "STATS q2", "EXPLAIN q1")
}

// The handshake race: a checkpoint finishes (and truncates) between the
// primary choosing a snapshot for a connecting follower and pinning the
// suffix after it. The pin-then-verify loop must hand out the NEWER
// complete snapshot plus an exactly-adjacent suffix — no LSN gap, no
// double-apply.
func TestAttachDuringCheckpointPinsExactSuffix(t *testing.T) {
	p := startPrimary(t, 1, 2, 128)
	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 12, 1)
	oldest, err := p.srv.WAL().OldestLSN()
	if err != nil {
		t.Fatal(err)
	}
	if oldest <= 1 {
		t.Fatalf("workload did not truncate the WAL (oldest=%d)", oldest)
	}

	// On the first snapshot handoff, advance the primary by enough
	// inserts to complete another checkpoint + truncation before the
	// ship loop re-pins. Inserts run on a second connection so the hook
	// (ship goroutine) doesn't deadlock with the test goroutine.
	var hookOnce sync.Once
	fired := make(chan struct{})
	testHookShipSnapshot = func() {
		hookOnce.Do(func() {
			defer close(fired)
			hc := dialRaw(t, p.addr)
			insertN(t, hc, 6, 200)
		})
	}
	t.Cleanup(func() { testHookShipSnapshot = nil })

	f := startFollower(t, 1, p.shipAddr)
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot handshake hook never fired")
	}
	waitCaughtUp(t, p, f)
	if err := f.f.Err(); err != nil {
		t.Fatalf("follower hit terminal error (gap or divergence): %v", err)
	}
	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, f.addr)
	compareReplies(t, pr, fc, "STATS q1", "STATS q2", "EXPLAIN q2")
}

// An epochless SYNC (pre-epoch connector) must be rejected at the
// handshake: such a follower cannot parse the current REC frame format, and
// streaming to it would have it silently apply garbage. The rejection is a
// loud ERR line, not a silent close.
func TestEpochlessSyncRejected(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	for _, handshake := range []string{"SYNC 0", "SYNC 5", "SYNC 0 0", "SYNC 0 x"} {
		r := dialRaw(t, p.shipAddr)
		r.send(handshake)
		if line := r.line(); !strings.HasPrefix(line, "ERR") {
			t.Fatalf("%q: got %q, want ERR rejection", handshake, line)
		}
	}
	// A well-formed SYNC still gets the stream (heartbeat, not ERR).
	r := dialRaw(t, p.shipAddr)
	r.send("SYNC 0 1")
	if line := r.line(); !strings.HasPrefix(line, "HB ") {
		t.Fatalf("valid SYNC: got %q, want HB frame", line)
	}
}

// Promotion flips a caught-up follower writable; it then computes the
// exact continuation the primary would have (same RNG evolution).
func TestPromoteContinuesDeterministically(t *testing.T) {
	p := startPrimary(t, 1, 1<<20, 0)
	f := startFollower(t, 1, p.shipAddr)
	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 5, 1)
	waitCaughtUp(t, p, f)

	f.f.Promote()
	fc := dialRaw(t, f.addr)
	fc.mustOK("ATTACH q1")
	fc.mustOK("ATTACH q2")
	// The same next insert must produce byte-identical DATA frames and
	// reply on the (now isolated) promoted follower and on the primary
	// (pc owns the queries there, so it receives DATA synchronously).
	next := "INSERT readings 6 N(70,9,16)"
	gotF := strings.Join(fc.cmd(next), "\n")
	gotP := strings.Join(pc.cmd(next), "\n")
	if gotF != gotP {
		t.Fatalf("post-promotion divergence:\nfollower: %s\nprimary:  %s", gotF, gotP)
	}
	pr := dialRaw(t, p.addr)
	fr := dialRaw(t, f.addr)
	compareReplies(t, pr, fr, "STATS q1", "STATS q2")
}
