package cluster

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/randvar"
	"repro/internal/server"
)

// The ISSUE 10 acceptance scenario, end to end and fully automatic: the
// primary dies mid-INSERTBATCH, the FailoverManager detects the silence
// and promotes the durable follower (journaling the epoch bump first),
// the client's retry lands exactly once via the replicated dedup window,
// and the revived old primary is fenced with the stale-epoch sentinel,
// truncates its diverged suffix, and rejoins as a follower — converging
// byte-identical. Run at workers 1 and 8; the final state must also be
// byte-identical ACROSS worker counts.
func TestChaosAutoFailoverRejoin(t *testing.T) {
	transcripts := make(map[int]string)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			transcripts[workers] = runAutoFailoverRejoin(t, workers)
		})
	}
	t1, t8 := transcripts[1], transcripts[8]
	if t1 == "" || t8 == "" {
		return // a subtest already failed
	}
	if t1 != t8 {
		t.Errorf("post-failover state diverged across worker counts:\nworkers=1: %s\nworkers=8: %s", t1, t8)
	}
}

func runAutoFailoverRejoin(t *testing.T, workers int) string {
	p := startPrimary(t, workers, 0, 0)
	df := startDurableFollower(t, workers, p.shipAddr)

	pc := dialRaw(t, p.addr)
	pc.mustOK("STREAM temps seq temp:dist")
	pc.mustOK("QUERY q1 SELECT temp FROM temps")
	pc.mustOK("QUERY q2 SELECT AVG(temp) AS avg_temp FROM temps WINDOW 3 ROWS")
	waitCaughtUp(t, p, df)

	// The failure detector: rank 0 (sole replica), fast windows so the
	// test's kill→detect→promote cycle runs in a few hundred ms. On
	// promotion the new primary starts its own ship listener — the address
	// the fenced ex-primary will rejoin through.
	newShipAddrCh := make(chan string, 1)
	fm := NewFailoverManager(df.srv, df.f, quiet, FailoverOptions{
		Self:         df.addr,
		Primary:      p.shipAddr,
		Peers:        []string{df.addr},
		SuspectAfter: 120 * time.Millisecond,
		ProbeEvery:   5 * time.Millisecond,
		OnPromote: func(epoch uint64) {
			ship, err := NewShipServer(df.srv, quiet, ShipOptions{Heartbeat: 10 * time.Millisecond, Poll: time.Millisecond})
			if err != nil {
				t.Errorf("promoted ship server: %v", err)
				newShipAddrCh <- ""
				return
			}
			addr, err := ship.Listen("127.0.0.1:0")
			if err != nil {
				t.Errorf("promoted ship listen: %v", err)
				newShipAddrCh <- ""
				return
			}
			go ship.Serve()
			t.Cleanup(func() { ship.Close() })
			newShipAddrCh <- addr.String()
		},
	})
	fm.Start()
	t.Cleanup(fm.Stop)

	// Client side: the primary address goes through a proxy that tears the
	// FIRST ingest reply mid-line; the durable follower is the failover
	// target. DDL already happened out of band, so conn 0's fault budget is
	// spent entirely on the ingest exchange.
	proxy := shipProxy(t, p.addr, func(i int) fault.ConnFaults {
		if i == 0 {
			return fault.ConnFaults{DropAfterReadBytes: 5}
		}
		return fault.ConnFaults{}
	})
	cl, err := NewClient([]Node{{Primary: proxy.Addr(), Replicas: []string{df.addr}}}, ClientOptions{
		Retries:   12,
		RetryBase: 10 * time.Millisecond,
		RetryMax:  100 * time.Millisecond,
		OpTimeout: 2 * time.Second,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.topo.registerStream("temps", "temps seq temp:dist")

	// Kill the primary between the torn attempt and the first retry — and
	// do NOT promote anyone: the FailoverManager must notice on its own.
	var kill sync.Once
	testHookRouteRetry = func(int) {
		kill.Do(func() {
			if !df.f.WaitCaughtUp(p.srv.WAL().LastLSN(), 5*time.Second) {
				t.Error("durable follower never received the torn batch")
			}
			p.ship.Close()
			pc.nc.Close()
			p.srv.Close()
		})
	}
	t.Cleanup(func() { testHookRouteRetry = nil })

	rows := make([][]randvar.Field, 3)
	for i := range rows {
		fl, err := server.ParseFieldSpec(fmt.Sprintf("N(%d.5,2.25,%d)", 10+i, 20+i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = []randvar.Field{randvar.Det(float64(i)), fl}
	}
	failoversBefore := mFailovers.Value()
	results, err := cl.InsertBatch("temps", rows...)
	if err != nil {
		t.Fatalf("routed batch failed across automatic failover: %v", err)
	}
	// 3 rows through q1 plus q2's 3-row window filling once = 4 results;
	// anything else means the batch was lost or double-applied.
	if results != 4 {
		t.Fatalf("batch results = %d, want 4 (dedup window must return the primary's reply)", results)
	}
	if got := mFailovers.Value() - failoversBefore; got != 1 {
		t.Fatalf("asdb_failover_total delta = %d, want 1", got)
	}
	if !fm.Promoted() {
		t.Fatal("failover manager did not report the promotion")
	}
	if got := df.srv.Epoch(); got != 2 {
		t.Fatalf("promoted follower epoch = %d, want 2", got)
	}
	newShipAddr := <-newShipAddrCh
	if newShipAddr == "" {
		t.Fatal("promotion did not start a ship listener")
	}

	// Exactly once: the promoted follower holds 3 tuples, not 6.
	dfc := dialRaw(t, df.addr)
	rep := dfc.mustOK("STATS q1")
	if stats := rep[len(rep)-1]; !strings.Contains(stats, `"In":3,`) {
		t.Fatalf("promoted follower applied the batch more than once: %s", stats)
	}
	// The new primary keeps serving: a fresh batch extends epoch 2 history.
	if _, err := cl.InsertBatch("temps", rows[0]); err != nil {
		t.Fatalf("post-failover batch: %v", err)
	}

	// Revive the old primary from its data dir. It recovers at epoch 1,
	// writable, oblivious to the failover — and takes two writes that epoch
	// 2 never saw: the diverged suffix the rejoin must cut.
	eng, err := core.NewEngine(p.cfg)
	if err != nil {
		t.Fatal(err)
	}
	old, err := server.NewDurable(eng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	oldAddr, err := old.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go old.Serve()
	if got := old.Epoch(); got != 1 {
		t.Fatalf("revived primary epoch = %d, want 1", got)
	}
	oc := dialRaw(t, oldAddr.String())
	oc.mustOK("INSERT temps 500 N(50,4,25)")
	oc.mustOK("INSERT temps 501 N(51,4,25)")
	divergedLSN := old.WAL().LastLSN()

	// Point the ex-primary at the new one. The SYNC announces epoch 1 with
	// a diverged suffix, so the new primary answers TRUNC: the follower
	// loop fences the server and surfaces the terminal RejoinError.
	of := NewFollower(old, newShipAddr, quiet, FollowOptions{
		RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond, ReadTimeout: 2 * time.Second,
	})
	of.SetLastApplied(divergedLSN)
	of.Start()
	t.Cleanup(of.Close)
	var re *RejoinError
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := of.Err(); err != nil {
			if !errors.As(err, &re) {
				t.Fatalf("rejoiner terminal error = %v, want RejoinError", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rejoiner never received the divergence verdict")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if re.Epoch != 2 {
		t.Fatalf("RejoinError epoch = %d, want 2", re.Epoch)
	}
	if re.SafeLSN >= divergedLSN {
		t.Fatalf("RejoinError safe lsn %d does not cut the diverged suffix (last %d)", re.SafeLSN, divergedLSN)
	}

	// Fenced: the old primary now rejects writes with the sentinel, and the
	// rejection is counted.
	fencedBefore := mFencedRejects.Value()
	frep := oc.cmd("INSERT temps 502 N(52,4,25)")
	if last := frep[len(frep)-1]; !strings.HasPrefix(last, "ERR") || !strings.Contains(last, "fenced: stale epoch") {
		t.Fatalf("write on fenced ex-primary = %q, want ERR with the stale-epoch sentinel", last)
	}
	if got := mFencedRejects.Value() - fencedBefore; got == 0 {
		t.Fatal("asdb_fenced_rejects_total did not count the fenced write")
	}

	// Rejoin: cut the diverged WAL suffix, drop diverged checkpoints,
	// re-recover, and follow the new primary.
	rsrv, rf, err := Rejoin(old, p.cfg, re, quiet, newShipAddr, FollowOptions{
		RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond, ReadTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	raddr, err := rsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve()
	rf.Start()
	rnode := &tnode{srv: rsrv, addr: raddr.String(), f: rf, cfg: p.cfg}
	t.Cleanup(func() {
		rf.Close()
		rsrv.Close()
	})
	waitCaughtUp(t, df, rnode)
	if err := rf.Err(); err != nil {
		t.Fatalf("rejoined follower terminal error: %v", err)
	}
	if got := rsrv.Epoch(); got != 2 {
		t.Fatalf("rejoined follower epoch = %d, want 2 (RecEpoch must have shipped)", got)
	}

	// Byte identity between the promoted primary and the rejoined node —
	// the diverged inserts must be gone. (STATS, not METRICS: telemetry
	// rolling windows are observability state outside the checkpoint, so a
	// node recovered through a snapshot legitimately reports shorter ones.)
	nc1 := dialRaw(t, df.addr)
	nc2 := dialRaw(t, rnode.addr)
	compareReplies(t, nc1, nc2, "STATS q1", "STATS q2")

	// The transcript for cross-worker-count comparison.
	s1 := dialRaw(t, df.addr)
	return strings.Join(s1.cmd("STATS q1"), "\n") + "\n" + strings.Join(s1.cmd("STATS q2"), "\n")
}

// The multi-replica promotion race, end to end with real probes: a primary
// with TWO durable failover-enabled followers dies, and exactly one of them
// may end up writable. The ladder's designated successor promotes; the
// other follower's survey finds the promoted winner, stands down, and
// re-points its replication loop at the winner's advertised ship address —
// so the shard converges on one primary, one epoch, byte-identical state.
// Regression for the multi-promotion split-brain: without the survey both
// followers promoted to the SAME epoch, which fencing can never repair.
func TestChaosTwoFollowerSinglePromotion(t *testing.T) {
	p := startPrimary(t, 1, 0, 0)
	df1 := startDurableFollower(t, 1, p.shipAddr)
	df2 := startDurableFollower(t, 1, p.shipAddr)
	peers := []string{df1.addr, df2.addr}

	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 6, 1)
	waitCaughtUp(t, p, df1)
	waitCaughtUp(t, p, df2)

	// Both replicas run the full detector with the REAL prober: the loser
	// must discover the winner through an actual ROLE round trip on the
	// winner's client address.
	startFM := func(n *tnode) (*FailoverManager, chan string) {
		shipCh := make(chan string, 1)
		fm := NewFailoverManager(n.srv, n.f, quiet, FailoverOptions{
			Self:         n.addr,
			Primary:      p.shipAddr,
			Peers:        peers,
			SuspectAfter: 120 * time.Millisecond,
			ProbeEvery:   5 * time.Millisecond,
			OnPromote: func(epoch uint64) {
				ship, err := NewShipServer(n.srv, quiet, ShipOptions{Heartbeat: 10 * time.Millisecond, Poll: time.Millisecond})
				if err != nil {
					t.Errorf("promoted ship server: %v", err)
					shipCh <- ""
					return
				}
				addr, err := ship.Listen("127.0.0.1:0")
				if err != nil {
					t.Errorf("promoted ship listen: %v", err)
					shipCh <- ""
					return
				}
				go ship.Serve()
				t.Cleanup(func() { ship.Close() })
				shipCh <- addr.String()
			},
		})
		fm.Start()
		t.Cleanup(fm.Stop)
		return fm, shipCh
	}
	fm1, ship1 := startFM(df1)
	fm2, ship2 := startFM(df2)
	failoversBefore := mFailovers.Value()

	// Kill the primary outright; nothing tells the followers.
	p.ship.Close()
	pc.nc.Close()
	p.srv.Close()

	// One of the two detectors promotes.
	deadline := time.Now().Add(10 * time.Second)
	for !fm1.Promoted() && !fm2.Promoted() {
		if time.Now().After(deadline) {
			t.Fatal("no follower promoted after the primary died")
		}
		time.Sleep(5 * time.Millisecond)
	}
	winner, loser := df1, df2
	loserFM, winnerShipCh := fm2, ship1
	if fm2.Promoted() {
		winner, loser = df2, df1
		loserFM, winnerShipCh = fm1, ship2
	}
	winnerShip := <-winnerShipCh
	if winnerShip == "" {
		t.Fatal("promotion did not start a ship listener")
	}

	// The loser stands down and re-points its follower at the winner.
	deadline = time.Now().Add(10 * time.Second)
	for loser.f.Target() != winnerShip {
		if loserFM.Promoted() {
			t.Fatal("both followers promoted: multi-promotion split-brain")
		}
		if time.Now().After(deadline) {
			t.Fatalf("loser still follows %q, want the winner's ship addr %q", loser.f.Target(), winnerShip)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The winner owns its congruence class: its epoch is distinct from
	// anything the loser COULD ever journal.
	wantEpoch := nextCongruentEpoch(1, winner.addr, peers)
	if got := winner.srv.Epoch(); got != wantEpoch {
		t.Fatalf("winner epoch = %d, want %d", got, wantEpoch)
	}

	// The shard works again: writes land on the winner and replicate to the
	// stood-down loser, which adopts the winner's epoch from the shipped
	// RecEpoch record.
	wc := dialRaw(t, winner.addr)
	insertN(t, wc, 4, 100)
	waitCaughtUp(t, winner, loser)
	if got := loser.srv.Epoch(); got != wantEpoch {
		t.Fatalf("loser epoch = %d, want %d (RecEpoch must have shipped)", got, wantEpoch)
	}
	if loserFM.Promoted() {
		t.Fatal("loser promoted after standing down")
	}
	if !loser.srv.ReadOnly() {
		t.Fatal("stood-down loser is writable")
	}
	if got := mFailovers.Value() - failoversBefore; got != 1 {
		t.Fatalf("asdb_failover_total delta = %d, want exactly 1", got)
	}

	// Byte-identical state across the new primary and the survivor.
	lc := dialRaw(t, loser.addr)
	wc2 := dialRaw(t, winner.addr)
	compareReplies(t, wc2, lc, "STATS q1", "STATS q2")
}

// syncBuf is a goroutine-safe log sink for asserting a mechanism engaged.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// A crash-looping primary that repeatedly checkpoints and truncates past a
// partitioned follower's LSN: each heal must fast-forward the follower
// through a snapshot reinstall (never a silent gap skip), and the final
// states must be byte-identical. Two partition rounds prove the
// fast-forward works repeatedly, not just from a virgin follower.
func TestChaosCrashLoopPrimarySnapshotFastForward(t *testing.T) {
	// Checkpoint every 2 records into tiny segments: truncation constantly
	// races ahead of a stalled follower.
	p := startPrimary(t, 1, 2, 256)

	// Every proxied conn has a shipped-byte budget so the live conn dies on
	// its own mid-partition; while partitioned, reconnects die on the first
	// shipped byte.
	var partitioned atomic.Bool
	proxy := shipProxy(t, p.shipAddr, func(i int) fault.ConnFaults {
		if partitioned.Load() {
			return fault.ConnFaults{DropAfterReadBytes: 1}
		}
		return fault.ConnFaults{DropAfterReadBytes: 1200}
	})

	lb := &syncBuf{}
	eng, err := core.NewEngine(engineConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	fsrv, err := server.New(eng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	fsrv.SetOptions(server.Options{ReadOnly: true})
	faddr, err := fsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fsrv.Serve()
	f := NewFollower(fsrv, proxy.Addr(), log.New(lb, "", 0), FollowOptions{
		RetryBase: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond, ReadTimeout: 2 * time.Second,
	})
	f.Start()
	fnode := &tnode{srv: fsrv, addr: faddr.String(), f: f}
	t.Cleanup(func() {
		f.Close()
		fsrv.Close()
	})

	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 6, 1)
	waitCaughtUp(t, p, fnode)

	base := 100
	for round := 0; round < 2; round++ {
		partitioned.Store(true)
		// Keep writing until the retention horizon has moved past the
		// stalled follower — the state a plain suffix replay cannot fix.
		deadline := time.Now().Add(10 * time.Second)
		for {
			insertN(t, pc, 4, base)
			base += 4
			oldest, err := p.srv.WAL().OldestLSN()
			if err != nil {
				t.Fatal(err)
			}
			if oldest > f.LastApplied()+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: wal never truncated past the stalled follower (oldest %d, follower %d)",
					round, oldest, f.LastApplied())
			}
			time.Sleep(5 * time.Millisecond)
		}
		partitioned.Store(false)
		waitCaughtUp(t, p, fnode)
		if err := f.Err(); err != nil {
			t.Fatalf("round %d: follower terminal error: %v", round, err)
		}
	}

	// The convergence mechanism must have been the snapshot fast-forward —
	// a follower with state accepting a NEWER snapshot — not a fresh
	// bootstrap and not a skipped gap.
	if got := strings.Count(lb.String(), "fast-forward=true"); got < 2 {
		t.Fatalf("snapshot fast-forwards = %d, want >= 2\nlog:\n%s", got, lb.String())
	}

	// Identical state: if the gap detector ever silently skipped records,
	// the counts and aggregates here would differ. (STATS, not METRICS:
	// telemetry rolling windows live outside the checkpoint, so a
	// fast-forwarded follower legitimately reports shorter ones.)
	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, fnode.addr)
	compareReplies(t, pr, fc, "STATS q1", "STATS q2")
}
