package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// benchConn is a minimal request/reply connection for benchmarks
// (panics on error; RunParallel goroutines must not call b.Fatal).
type benchConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialBench(addr string) *benchConn {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		panic(err)
	}
	return &benchConn{nc: nc, br: bufio.NewReaderSize(nc, 1<<20), bw: bufio.NewWriter(nc)}
}

func (c *benchConn) do(line string) string {
	if _, err := c.bw.WriteString(line + "\n"); err != nil {
		panic(err)
	}
	if err := c.bw.Flush(); err != nil {
		panic(err)
	}
	for {
		s, err := readLine(c.br, maxShipLine)
		if err != nil {
			panic(err)
		}
		if strings.HasPrefix(s, "OK") {
			return s
		}
		if strings.HasPrefix(s, "ERR") {
			panic(s)
		}
	}
}

// BenchmarkReadFanout measures STATS round-trips against one node under
// concurrent readers: all traffic on the primary vs fanned out across two
// replicas. The replicas serve the identical bytes (replication is
// deterministic), so the fan-out buys pure read scaling.
func BenchmarkReadFanout(b *testing.B) {
	p := startPrimary(b, 0, 1<<20, 0)
	f1 := startFollower(b, 0, p.shipAddr)
	f2 := startFollower(b, 0, p.shipAddr)
	pc := dialRaw(b, p.addr)
	seedGolden(b, pc)
	insertN(b, pc, 32, 1)
	for _, f := range []*tnode{f1, f2} {
		lsn := p.srv.WAL().LastLSN()
		if !f.f.WaitCaughtUp(lsn, 10*time.Second) {
			b.Fatalf("follower stuck at %d, want %d", f.f.LastApplied(), lsn)
		}
	}

	cases := []struct {
		name  string
		addrs []string
	}{
		{"target=primary", []string{p.addr}},
		{"target=replicas", []string{f1.addr, f2.addr}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var next atomic.Uint32
			b.ReportAllocs()
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				addr := tc.addrs[int(next.Add(1))%len(tc.addrs)]
				c := dialBench(addr)
				defer c.nc.Close()
				for pb.Next() {
					c.do("STATS q2")
				}
			})
		})
	}
}

// BenchmarkRoutedIngest measures INSERTBATCH throughput through the
// cluster routing layer: one node vs four, streams sharded so concurrent
// writers spread across the primaries.
func BenchmarkRoutedIngest(b *testing.B) {
	const batch = "INSERTBATCH %s 1 N(60,4,25) | 2 N(40,9,16) | 3 N(75,16,9) | 4 S(55;52;58;61)"
	for _, nnodes := range []int{1, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nnodes), func(b *testing.B) {
			primaries := make([]*tnode, nnodes)
			nodes := make([]Node, nnodes)
			for i := range primaries {
				primaries[i] = startPrimary(b, 0, 1<<20, 0)
				nodes[i] = Node{Primary: primaries[i].addr}
			}
			// One stream per node: probe names until each node owns one.
			tp, err := newTopo(nodes)
			if err != nil {
				b.Fatal(err)
			}
			streams := make([]string, nnodes)
			for i := 0; i < 256; i++ {
				name := fmt.Sprintf("bench%d", i)
				n := tp.registerStream(name, "")
				if streams[n] == "" {
					streams[n] = name
					pc := dialBench(primaries[n].addr)
					pc.do("STREAM " + name + " seq temp:dist")
					pc.nc.Close()
				}
			}
			for i, s := range streams {
				if s == "" {
					b.Fatalf("no stream landed on node %d", i)
				}
			}
			var next atomic.Uint32
			b.ReportAllocs()
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker writes to one shard, workers round-robin
				// across shards — the cluster-client routing decision
				// precomputed, the per-node serving path measured.
				idx := int(next.Add(1)) % nnodes
				c := dialBench(primaries[idx].addr)
				defer c.nc.Close()
				line := fmt.Sprintf(batch, streams[idx])
				for pb.Next() {
					c.do(line)
				}
			})
		})
	}
}
