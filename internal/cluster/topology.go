package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sql"
)

// Node is one shard of the cluster: a primary that takes writes and zero
// or more read replicas following it.
type Node struct {
	Primary  string
	Replicas []string
}

// hash64 is FNV-1a; allocation-free (hash/fnv would escape the string).
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousPick returns the index of the node owning key under
// highest-random-weight hashing: every client and router computes the same
// owner with no coordination, and removing a node only moves the keys it
// owned.
func rendezvousPick(nodes []Node, key string) int {
	best, bestW := 0, uint64(0)
	kh := hash64(key)
	for i := range nodes {
		w := mix64(hash64(nodes[i].Primary) ^ kh)
		if i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// streamMove is a pending re-home: replay ddl ("name col[:dist]...") on
// node before routing the query that forced the move.
type streamMove struct {
	stream string
	ddl    string
	node   int
}

// topo tracks stream placement. Streams start where rendezvous hashing
// puts them; a JOIN merges its two inputs' groups (union-find) onto one
// node, re-homing a group only while it is clean — no routed ingest yet —
// because moving a stream that already holds tuples would need state
// migration, not just DDL replay. Shared by the embedded Client and the
// Router (one instance per process each; placement is deterministic, so
// independent routers agree on everything except clean-group join moves,
// which are an optimization clients must not interleave across routers).
type topo struct {
	nodes []Node
	rr    atomic.Uint32 // read fan-out round-robin cursor

	mu      sync.Mutex
	parent  map[string]string   // union-find, keyed by stream name
	members map[string][]string // root -> streams in the group
	home    map[string]int      // root -> node index
	ddl     map[string]string   // stream -> STREAM args for replay
	dirty   map[string]bool     // stream -> has taken routed ingest
	queries map[string]int      // query id -> node index
}

func newTopo(nodes []Node) (*topo, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n.Primary == "" {
			return nil, fmt.Errorf("cluster: node with empty primary address")
		}
		if seen[n.Primary] {
			return nil, fmt.Errorf("cluster: duplicate primary %s", n.Primary)
		}
		seen[n.Primary] = true
	}
	return &topo{
		nodes:   nodes,
		parent:  make(map[string]string),
		members: make(map[string][]string),
		home:    make(map[string]int),
		ddl:     make(map[string]string),
		dirty:   make(map[string]bool),
		queries: make(map[string]int),
	}, nil
}

// find with path compression; unseen names become singleton groups.
func (t *topo) find(x string) string {
	p, ok := t.parent[x]
	if !ok {
		t.parent[x] = x
		t.members[x] = []string{x}
		return x
	}
	if p == x {
		return x
	}
	root := t.find(p)
	t.parent[x] = root
	return root
}

// registerStream places a stream (idempotent) and returns its node.
func (t *topo) registerStream(name, ddl string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.find(name)
	if _, ok := t.home[root]; !ok {
		t.home[root] = rendezvousPick(t.nodes, root)
	}
	if _, ok := t.ddl[name]; !ok {
		t.ddl[name] = ddl
	}
	return t.home[root]
}

// streamNode returns the node owning a registered stream.
func (t *topo) streamNode(name string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.ddl[name]; !ok {
		return 0, false
	}
	return t.home[t.find(name)], true
}

// markDirty records that a stream's group has taken routed ingest — from
// now on the group is pinned to its node. Marked before the first insert
// is sent, not after it succeeds: a torn reply may hide an applied write.
func (t *topo) markDirty(name string) {
	t.mu.Lock()
	t.dirty[name] = true
	t.mu.Unlock()
}

func (t *topo) groupDirtyLocked(root string) bool {
	for _, s := range t.members[root] {
		if t.dirty[s] {
			return true
		}
	}
	return false
}

// placeQuery resolves the node for a query, merging the join inputs'
// groups if needed. The returned moves (possibly empty) are DDL replays
// the caller must perform on the target node before registering the query
// there. Unregistered streams are an error: placement cannot invent
// schemas.
func (t *topo) placeQuery(id, sqlText string) (int, []streamMove, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return 0, nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	streams := []string{stmt.From}
	if stmt.Join != nil {
		streams = append(streams, stmt.Join.Right)
	}
	for _, s := range streams {
		if _, ok := t.ddl[s]; !ok {
			return 0, nil, fmt.Errorf("cluster: query %s references unregistered stream %s", id, s)
		}
	}
	if len(streams) == 1 || t.find(streams[0]) == t.find(streams[1]) {
		n := t.home[t.find(streams[0])]
		t.queries[id] = n
		return n, nil, nil
	}

	ra, rb := t.find(streams[0]), t.find(streams[1])
	na, nb := t.home[ra], t.home[rb]
	da, db := t.groupDirtyLocked(ra), t.groupDirtyLocked(rb)
	var target int
	switch {
	case na == nb:
		target = na
	case da && db:
		return 0, nil, fmt.Errorf(
			"cluster: cannot co-locate %s (node %d) with %s (node %d): both groups already have ingested data on different nodes",
			streams[0], na, streams[1], nb)
	case da:
		target = na
	case db:
		target = nb
	default:
		// Both clean: deterministic pick so independent planners agree.
		canon := ra
		if rb < ra {
			canon = rb
		}
		target = t.home[canon]
	}

	var moves []streamMove
	for _, root := range []string{ra, rb} {
		if t.home[root] == target {
			continue
		}
		for _, s := range t.members[root] {
			moves = append(moves, streamMove{stream: s, ddl: t.ddl[s], node: target})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].stream < moves[j].stream })

	// Union: smaller root becomes canonical, group homed at target.
	lo, hi := ra, rb
	if hi < lo {
		lo, hi = hi, lo
	}
	t.parent[hi] = lo
	t.members[lo] = append(t.members[lo], t.members[hi]...)
	delete(t.members, hi)
	delete(t.home, hi)
	t.home[lo] = target
	t.queries[id] = target
	return target, moves, nil
}

// queryNode returns the node a query was placed on.
func (t *topo) queryNode(id string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.queries[id]
	return n, ok
}

func (t *topo) dropQuery(id string) {
	t.mu.Lock()
	delete(t.queries, id)
	t.mu.Unlock()
}

// primaryAddr is the write address for a node.
func (t *topo) primaryAddr(node int) string { return t.nodes[node].Primary }

// readAddr picks a read target for a node: round-robin over its replicas,
// falling back to the primary when it has none. Replicas serve reads with
// bounded staleness (replication lag); callers needing read-your-writes go
// to the primary.
func (t *topo) readAddr(node int) string {
	reps := t.nodes[node].Replicas
	if len(reps) == 0 {
		return t.nodes[node].Primary
	}
	i := t.rr.Add(1)
	return reps[int(i-1)%len(reps)]
}

// failoverAddrs lists ingest targets in retry order: primary first, then
// replicas (a retry landing on an unpromoted replica gets "read-only
// replica" and moves on; after promotion it is answered — from the
// replicated dedup window if the original attempt already applied).
func (t *topo) failoverAddrs(node int) []string {
	n := t.nodes[node]
	out := make([]string, 0, 1+len(n.Replicas))
	out = append(out, n.Primary)
	out = append(out, n.Replicas...)
	return out
}
