package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/randvar"
	"repro/internal/server"
)

// shipProxy fronts a primary's ship listener with a deterministic fault
// schedule keyed by connection index (each follower reconnect is a new
// index).
func shipProxy(t testing.TB, target string, faults func(i int) fault.ConnFaults) *fault.Proxy {
	t.Helper()
	pr, err := fault.NewProxy(target, faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pr.Close)
	return pr
}

// collectData reads n DATA lines from an attached follower connection
// (they arrive asynchronously as replicated records apply).
func collectData(t testing.TB, c *raw, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for len(out) < n {
		s := c.line()
		if !strings.HasPrefix(s, "DATA ") {
			t.Fatalf("expected DATA line, got %q", s)
		}
		out = append(out, s)
	}
	return out
}

// The tentpole correctness claim: followers behind latency, chunked
// writes, and repeated mid-message connection drops still produce DATA
// frames byte-identical to the primary's — at every worker count, and
// across followers with different worker counts, because WAL order is
// engine order and rendering is deterministic.
func TestChaosReplicaDataByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := startPrimary(t, workers, 1<<20, 0)
			// Conn 0 tears mid-stream after 2000 shipped bytes, conn 1
			// after 6000 more, with latency and tiny chunks throughout;
			// conn 2+ is slow but stable, letting the run finish.
			proxy := shipProxy(t, p.shipAddr, func(i int) fault.ConnFaults {
				switch i {
				case 0:
					return fault.ConnFaults{WriteLatency: time.Millisecond, ChunkBytes: 7, DropAfterReadBytes: 2000}
				case 1:
					return fault.ConnFaults{ChunkBytes: 13, DropAfterReadBytes: 6000}
				default:
					return fault.ConnFaults{WriteLatency: 200 * time.Microsecond, ChunkBytes: 64}
				}
			})
			// One follower at workers=1 and one at workers=8, both through
			// independent chaos proxies: cross-worker byte identity.
			proxy2 := shipProxy(t, p.shipAddr, func(i int) fault.ConnFaults {
				if i == 0 {
					return fault.ConnFaults{ChunkBytes: 11, DropAfterReadBytes: 4000}
				}
				return fault.ConnFaults{}
			})
			f1 := startFollower(t, 1, proxy.Addr())
			f8 := startFollower(t, 8, proxy2.Addr())

			pc := dialRaw(t, p.addr)
			seedGolden(t, pc)
			waitCaughtUp(t, p, f1)
			waitCaughtUp(t, p, f8)
			fc1 := dialRaw(t, f1.addr)
			fc8 := dialRaw(t, f8.addr)
			for _, fc := range []*raw{fc1, fc8} {
				fc.mustOK("ATTACH q1")
				fc.mustOK("ATTACH q2")
			}

			// The workload: enough inserts that the shipped stream spans
			// both injected tears, plus batches (single-frame records).
			var primaryData []string
			for i := 0; i < 20; i++ {
				rep := pc.mustOK(fmt.Sprintf("INSERT readings %d N(%d,4,25)", i+1, 40+i))
				primaryData = append(primaryData, rep[:len(rep)-1]...)
			}
			rep := pc.mustOK("INSERTBATCH readings 100 N(75,16,9) | 101 S(55;52;58;61) | 102 N(66,9,12)")
			primaryData = append(primaryData, rep[:len(rep)-1]...)

			waitCaughtUp(t, p, f1)
			waitCaughtUp(t, p, f8)
			got1 := collectData(t, fc1, len(primaryData))
			got8 := collectData(t, fc8, len(primaryData))
			for i := range primaryData {
				if got1[i] != primaryData[i] {
					t.Fatalf("workers=1 follower frame %d diverged:\nprimary:  %s\nfollower: %s", i, primaryData[i], got1[i])
				}
				if got8[i] != primaryData[i] {
					t.Fatalf("workers=8 follower frame %d diverged:\nprimary:  %s\nfollower: %s", i, primaryData[i], got8[i])
				}
			}

			pr := dialRaw(t, p.addr)
			compareReplies(t, pr, fc1, "STATS q1", "STATS q2", "METRICS q1", "METRICS q2")
			pr2 := dialRaw(t, p.addr)
			compareReplies(t, pr2, fc8, "STATS q1", "STATS q2", "METRICS q1", "METRICS q2")
		})
	}
}

// A partition (proxy refusing all traffic by dropping every byte) heals:
// the follower reconnects with SYNC lastApplied and resumes with no gap
// and no duplicate.
func TestChaosPartitionHeal(t *testing.T) {
	p := startPrimary(t, 2, 1<<20, 0)
	// Conns 0 and 1 die almost immediately (partition); conn 2+ is clean.
	proxy := shipProxy(t, p.shipAddr, func(i int) fault.ConnFaults {
		if i < 2 {
			return fault.ConnFaults{DropAfterReadBytes: 1}
		}
		return fault.ConnFaults{}
	})
	f := startFollower(t, 1, proxy.Addr())
	pc := dialRaw(t, p.addr)
	seedGolden(t, pc)
	insertN(t, pc, 10, 1)
	waitCaughtUp(t, p, f)
	if err := f.f.Err(); err != nil {
		t.Fatalf("follower terminal error after partition heal: %v", err)
	}
	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, f.addr)
	compareReplies(t, pr, fc, "STATS q1", "STATS q2", "METRICS q1", "METRICS q2")
}

// The acceptance scenario: a routed INSERTBATCH whose reply is torn by
// the network, retried after the primary dies and the follower is
// promoted, applies exactly once — the promoted follower answers the
// retry from its replicated dedup window with the primary's exact reply.
func TestChaosFailoverExactlyOnce(t *testing.T) {
	p := startPrimary(t, 1, 1<<20, 0)
	f := startFollower(t, 1, p.shipAddr)

	pc := dialRaw(t, p.addr)
	pc.mustOK("STREAM temps seq temp:dist")
	pc.mustOK("QUERY q1 SELECT temp FROM temps")
	waitCaughtUp(t, p, f)

	// Client side: node whose primary address goes through a proxy that
	// tears the FIRST ingest reply mid-line, with the follower as the
	// failover target. DDL already happened out of band, so conn 0's
	// fault budget is spent entirely on the ingest exchange.
	proxy := shipProxy(t, p.addr, func(i int) fault.ConnFaults {
		if i == 0 {
			return fault.ConnFaults{DropAfterReadBytes: 5}
		}
		return fault.ConnFaults{}
	})
	cl, err := NewClient([]Node{{Primary: proxy.Addr(), Replicas: []string{f.addr}}}, ClientOptions{
		Retries:   3,
		RetryBase: 2 * time.Millisecond,
		OpTimeout: 2 * time.Second,
		Seed:      99,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	// The stream exists server-side; seed this client's placement map.
	cl.topo.registerStream("temps", "temps seq temp:dist")

	// Between the torn attempt and the retry: make sure the batch has
	// replicated, then promote the follower and kill the primary — the
	// failover the retry must survive.
	var failover sync.Once
	testHookRouteRetry = func(int) {
		failover.Do(func() {
			if !f.f.WaitCaughtUp(p.srv.WAL().LastLSN(), 5*time.Second) {
				t.Error("follower never received the torn batch")
			}
			f.f.Promote()
			p.ship.Close()
			pc.nc.Close() // Close waits for live connections to drain.
			p.srv.Close()
		})
	}
	t.Cleanup(func() { testHookRouteRetry = nil })

	rows := make([][]randvar.Field, 3)
	for i := range rows {
		fl, err := server.ParseFieldSpec(fmt.Sprintf("N(%d.5,2.25,%d)", 10+i, 20+i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = []randvar.Field{randvar.Det(float64(i)), fl}
	}
	retriesBefore := mRouteRetries.Value()
	results, err := cl.InsertBatch("temps", rows...)
	if err != nil {
		t.Fatalf("routed batch failed across failover: %v", err)
	}
	if results != 3 {
		t.Fatalf("batch results = %d, want 3 (the dedup window must return the primary's reply)", results)
	}
	if got := mRouteRetries.Value() - retriesBefore; got == 0 {
		t.Fatal("expected asdb_route_retries_total to count the failover retry")
	}

	// Exactly once: the promoted follower holds 3 tuples, not 6.
	fc := dialRaw(t, f.addr)
	rep := fc.mustOK("STATS q1")
	stats := rep[len(rep)-1]
	if !strings.Contains(stats, `"In":3,`) {
		t.Fatalf("promoted follower applied the batch more than once: %s", stats)
	}

	// And the promoted node keeps serving: a fresh (non-deduped) batch
	// applies normally.
	if _, err := cl.InsertBatch("temps", rows[0]); err != nil {
		t.Fatalf("post-failover batch: %v", err)
	}
	rep = fc.mustOK("STATS q1")
	if stats = rep[len(rep)-1]; !strings.Contains(stats, `"In":4,`) {
		t.Fatalf("post-failover batch not applied: %s", stats)
	}
}
