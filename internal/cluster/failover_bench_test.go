package cluster

import (
	"strings"
	"testing"
	"time"
)

// BenchmarkFailoverRecovery measures time-to-recovery: from the instant
// the primary dies (heartbeats stop — the start of detection) until the
// first write accepted by the automatically promoted successor. Each
// iteration builds a fresh primary + durable follower pair, kills the
// primary, and hammers the follower with INSERTs until one lands; ns/op
// is the full detect → promote → journal-epoch → first-accepted-write
// path with SuspectAfter=50ms and ProbeEvery=2ms.
func BenchmarkFailoverRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := startPrimary(b, 1, 0, 0)
		df := startDurableFollower(b, 1, p.shipAddr)
		pc := dialRaw(b, p.addr)
		seedGolden(b, pc)
		insertN(b, pc, 10, 1)
		waitCaughtUp(b, p, df)

		fm := NewFailoverManager(df.srv, df.f, quiet, FailoverOptions{
			Self:         df.addr,
			Primary:      p.shipAddr,
			Peers:        []string{df.addr},
			SuspectAfter: 50 * time.Millisecond,
			ProbeEvery:   2 * time.Millisecond,
		})
		fm.Start()

		wc := dialRaw(b, df.addr)
		p.ship.Close()
		pc.nc.Close()
		p.srv.Close()
		b.StartTimer()

		for {
			rep := wc.cmd("INSERT readings 999 N(60,4,25)")
			last := rep[len(rep)-1]
			if strings.HasPrefix(last, "OK") {
				break
			}
			if !strings.Contains(last, "read-only replica") {
				b.Fatalf("unexpected reject during failover: %s", last)
			}
		}
		b.StopTimer()
		fm.Stop()
	}
}
