package cluster

import (
	"strings"
	"testing"
)

// A follower replaying a primary whose queries share planner state serves
// byte-identical reads: shared groups form from the same replayed QUERY
// records in the same order on both nodes, so STATS, EXPLAIN (including
// the shared-state plan annotation and sharer counts), and subsequent
// DATA-producing state are indistinguishable.
func TestReplicaSharedStateByteIdentical(t *testing.T) {
	p := startPrimary(t, 1, 1<<20, 0)
	f := startFollower(t, 4, p.shipAddr)

	pc := dialRaw(t, p.addr)
	pc.mustOK("STREAM readings sensor temp:dist")
	for _, q := range []string{
		"QUERY s1 SELECT AVG(temp) AS a FROM readings WINDOW 3 ROWS",
		"QUERY s2 SELECT AVG(temp) AS a FROM readings WINDOW 3 ROWS",
		"QUERY s3 SELECT AVG(temp) AS a FROM readings WINDOW 3 ROWS",
		"QUERY s4 SELECT MIN(temp) AS lo FROM readings WHERE temp > 45 WINDOW 2 ROWS",
	} {
		pc.mustOK(q)
	}
	insertN(t, pc, 12, 1)
	waitCaughtUp(t, p, f)

	pr := dialRaw(t, p.addr)
	fc := dialRaw(t, f.addr)
	compareReplies(t, pr, fc,
		"STATS s1", "STATS s2", "STATS s3", "STATS s4",
		"EXPLAIN s1", "EXPLAIN s2", "EXPLAIN s3", "EXPLAIN s4")

	// Both nodes must report the same shared group, not merely agree.
	rep := strings.Join(fc.cmd("EXPLAIN s1"), "\n")
	if !strings.Contains(rep, "3 sharer(s)") {
		t.Fatalf("follower EXPLAIN s1 lost the shared group: %q", rep)
	}

	// The tail keeps flowing through shared state on both nodes.
	insertN(t, pc, 6, 100)
	waitCaughtUp(t, p, f)
	compareReplies(t, pr, fc, "STATS s1", "STATS s2", "STATS s3", "STATS s4")
}
