// Package parallel provides the bounded worker pool behind the engine's
// accuracy hot paths (BOOTSTRAP-ACCURACY-INFO resamples, classic bootstrap
// resamples, Monte Carlo draws from result distributions).
//
// The paper's Lemma 4 establishes that the d.f. resamples of
// BOOTSTRAP-ACCURACY-INFO are independent by construction, so per-resample
// statistics can be computed in any order — including concurrently — without
// changing the result. The helpers here exploit exactly that structure: work
// items are identified by index, each item writes only to its own output
// slot, and the partition of [0, n) into contiguous chunks is a pure
// function of (workers, n). Combined with per-item RNG substreams
// (dist.NewRandStream), results are bit-identical for every worker count,
// and Workers=1 degenerates to a plain inline loop with no goroutines.
package parallel

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Pool observability. All instruments are observation-only: they never
// influence chunking, scheduling, or results. The inline (workers ≤ 1) path
// pays exactly two atomic adds; chunk timing and occupancy tracking exist
// only on the spawning path, where goroutine dispatch already dominates.
var (
	mInline = metrics.Default.Counter("asdb_parallel_inline_total",
		"parallel-for calls executed inline on the calling goroutine")
	mDispatch = metrics.Default.Counter("asdb_parallel_dispatch_total",
		"parallel-for calls that spawned worker goroutines")
	mChunks = metrics.Default.Counter("asdb_parallel_chunks_total",
		"work chunks executed (inline calls count as one chunk)")
	mItems = metrics.Default.Counter("asdb_parallel_items_total",
		"work items processed by parallel-for loops")
	gActive = metrics.Default.Gauge("asdb_parallel_active_workers",
		"worker goroutines (including the caller) currently inside a chunk")
	hChunk = metrics.Default.Histogram("asdb_parallel_chunk_seconds",
		"wall time of one work chunk on the spawning path", metrics.DefBuckets)
)

// Pool is a bounded degree of parallelism. It is stateless (no persistent
// goroutines), so a Pool is safe for concurrent use by multiple queries and
// costs nothing while idle.
type Pool struct {
	workers int
}

// New returns a pool running at most workers goroutines per call.
// workers < 1 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's parallelism bound.
func (p *Pool) Workers() int { return p.workers }

// For runs fn(i) for every i in [0, n).
func (p *Pool) For(n int, fn func(i int)) { For(p.workers, n, fn) }

// ForChunks partitions [0, n) into at most Workers contiguous chunks and
// runs fn(lo, hi) once per chunk.
func (p *Pool) ForChunks(n int, fn func(lo, hi int)) { ForChunks(p.workers, n, fn) }

// For runs fn(i) for every i in [0, n) using at most workers goroutines.
// With workers <= 1 (or n <= 1) the loop runs inline on the calling
// goroutine — exactly the serial code path, no goroutines, no channels.
//
// fn must be safe to call concurrently for distinct i; the usual pattern is
// that fn(i) writes only to the i-th slot of a pre-sized output slice.
func For(workers, n int, fn func(i int)) {
	ForChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunks partitions [0, n) into at most workers contiguous chunks of
// near-equal size and runs fn(lo, hi) once per chunk, concurrently. The
// chunk boundaries depend only on (workers, n), never on scheduling. The
// calling goroutine executes the last chunk itself, so workers <= 1 (or a
// single chunk) performs no goroutine spawn at all.
//
// Chunked dispatch lets callers hoist per-worker scratch state (resample
// buffers, RNG structs) out of the inner loop: allocate once per chunk, use
// for every item in [lo, hi).
func ForChunks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		mInline.Inc()
		mChunks.Inc()
		mItems.Add(uint64(n))
		fn(0, n)
		return
	}
	mDispatch.Inc()
	mChunks.Add(uint64(workers))
	mItems.Add(uint64(n))
	timedFn := func(lo, hi int) {
		gActive.Inc()
		t0 := time.Now()
		fn(lo, hi)
		hChunk.ObserveSince(t0)
		gActive.Dec()
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for c := 0; c < workers-1; c++ {
		lo, hi := chunkBounds(c, workers, n)
		go func() {
			defer wg.Done()
			timedFn(lo, hi)
		}()
	}
	lo, hi := chunkBounds(workers-1, workers, n)
	timedFn(lo, hi)
	wg.Wait()
}

// chunkBounds returns the half-open range of chunk c when [0, n) is split
// into `chunks` near-equal contiguous pieces (the first n%chunks pieces are
// one element longer).
func chunkBounds(c, chunks, n int) (lo, hi int) {
	size, rem := n/chunks, n%chunks
	lo = c*size + min(c, rem)
	hi = lo + size
	if c < rem {
		hi++
	}
	return lo, hi
}
