package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks that each index is visited exactly once
// for a spread of worker counts and sizes, including the degenerate ones.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 3, 5, 16, 100, 1000} {
			counts := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestForChunksPartition checks the chunks form a disjoint cover of [0, n)
// in order, with at most `workers` chunks.
func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{1, 2, 7, 8, 9, 64, 101} {
			seen := make([]int32, n)
			var chunks int32
			ForChunks(workers, n, func(lo, hi int) {
				atomic.AddInt32(&chunks, 1)
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			if int(chunks) > workers {
				t.Errorf("workers=%d n=%d: %d chunks", workers, n, chunks)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestChunkBoundsDeterministic checks the partition is a pure function of
// (workers, n) and balanced to within one element.
func TestChunkBoundsDeterministic(t *testing.T) {
	for _, chunks := range []int{1, 2, 3, 7} {
		for _, n := range []int{7, 20, 21, 1000} {
			if chunks > n {
				continue
			}
			prev := 0
			minSize, maxSize := n, 0
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(c, chunks, n)
				if lo != prev {
					t.Fatalf("chunks=%d n=%d: chunk %d starts at %d, want %d", chunks, n, c, lo, prev)
				}
				size := hi - lo
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("chunks=%d n=%d: cover ends at %d", chunks, n, prev)
			}
			if maxSize-minSize > 1 {
				t.Errorf("chunks=%d n=%d: unbalanced sizes [%d, %d]", chunks, n, minSize, maxSize)
			}
		}
	}
}

// TestSerialIsInline checks Workers<=1 runs on the calling goroutine (the
// documented "exact serial behavior" contract): writes need no
// synchronization and happen in index order.
func TestSerialIsInline(t *testing.T) {
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestPoolDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d", got)
	}
	if got := New(6).Workers(); got != 6 {
		t.Errorf("New(6).Workers() = %d", got)
	}
	sum := 0
	New(4).For(10, func(i int) { /* concurrent */ })
	New(1).ForChunks(10, func(lo, hi int) { sum += hi - lo })
	if sum != 10 {
		t.Errorf("pool ForChunks covered %d of 10", sum)
	}
}
