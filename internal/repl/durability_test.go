package repl

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func durableREPL(t *testing.T, dir string, ckEvery int) (*REPL, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	r, err := New(core.Config{
		Method:          core.AccuracyBootstrap,
		Level:           0.9,
		Seed:            11,
		DataDir:         dir,
		FsyncPolicy:     "none",
		CheckpointEvery: ckEvery,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return r, &buf
}

func durInsert(i int) string {
	return fmt.Sprintf("INSERT temps %d N(%d.5,2.25,%d)", i, 10+i, 20+i)
}

// dataLines extracts the query-result lines ("q1 => {...}") from REPL output.
func dataLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, " => ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestREPLDurableResume splits one session across two REPL processes and
// checks the second half's results are byte-identical to an uninterrupted
// reference session — for both recovery paths (checkpoint+suffix, WAL-only).
func TestREPLDurableResume(t *testing.T) {
	const phase1, total = 5, 10

	ref, refBuf := newTestREPLBootstrap(t)
	exec(t, ref, "STREAM temps key val:dist")
	exec(t, ref, "QUERY q1 SELECT AVG(val) FROM temps WINDOW 3 ROWS")
	for i := 0; i < total; i++ {
		exec(t, ref, durInsert(i))
	}
	refData := dataLines(refBuf.String())
	if len(refData) != total-2 {
		t.Fatalf("reference emitted %d results, want %d", len(refData), total-2)
	}

	for _, ckEvery := range []int{3, 1024} {
		t.Run(fmt.Sprintf("ckEvery=%d", ckEvery), func(t *testing.T) {
			dir := t.TempDir()
			r1, _ := durableREPL(t, dir, ckEvery)
			exec(t, r1, "STREAM temps key val:dist")
			exec(t, r1, "QUERY q1 SELECT AVG(val) FROM temps WINDOW 3 ROWS")
			for i := 0; i < phase1; i++ {
				exec(t, r1, durInsert(i))
			}
			if err := r1.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			r2, buf2 := durableREPL(t, dir, ckEvery)
			defer r2.Close()
			for i := phase1; i < total; i++ {
				exec(t, r2, durInsert(i))
			}
			got := dataLines(buf2.String())
			want := refData[len(refData)-len(got):]
			if len(got) != total-phase1 {
				t.Fatalf("resumed session emitted %d results, want %d", len(got), total-phase1)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("result %d diverged after resume:\nreference: %s\nresumed:   %s",
						i, want[i], got[i])
				}
			}
		})
	}
}

// newTestREPLBootstrap matches durableREPL's engine config minus durability,
// so its output is the in-memory reference for resume comparisons.
func newTestREPLBootstrap(t *testing.T) (*REPL, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	r, err := New(core.Config{Method: core.AccuracyBootstrap, Level: 0.9, Seed: 11}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return r, &buf
}
