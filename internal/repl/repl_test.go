package repl

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

// newTestREPL builds a REPL writing to a buffer.
func newTestREPL(t *testing.T) (*REPL, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	r, err := New(core.Config{Method: core.AccuracyAnalytical}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return r, &buf
}

// exec runs a command and fails the test on error.
func exec(t *testing.T, r *REPL, line string) {
	t.Helper()
	if err := r.Exec(line); err != nil {
		t.Fatalf("%s: %v", line, err)
	}
}

func TestREPLEndToEnd(t *testing.T) {
	r, buf := newTestREPL(t)
	exec(t, r, "STREAM traffic road_id delay:dist")
	exec(t, r, "QUERY q1 SELECT road_id, delay FROM traffic WHERE PROB(delay > 50) >= 0.66")
	exec(t, r, "INSERT traffic 19 S(56;38;97)")
	exec(t, r, "INSERT traffic 20 N(62,120,50)")
	exec(t, r, "STATS q1")
	out := buf.String()
	for _, want := range []string{
		"stream traffic registered",
		"query q1:",
		`"mean":63.66`, // road 19's learned mean
		`"n":50`,       // road 20's sample size
		"in=2 out=2 dropped=0 unsure=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLExplain(t *testing.T) {
	r, buf := newTestREPL(t)
	exec(t, r, "STREAM s k x:dist")
	exec(t, r, "QUERY agg SELECT k, AVG(x) FROM s GROUP BY k WINDOW 4 ROWS")
	exec(t, r, "EXPLAIN agg")
	out := buf.String()
	if !strings.Contains(out, "grouped by k") || !strings.Contains(out, "count window of 4 rows") {
		t.Errorf("explain output:\n%s", out)
	}
	if err := r.Exec("EXPLAIN nosuch"); err == nil {
		t.Error("EXPLAIN of unknown query: want error")
	}
}

func TestREPLLoad(t *testing.T) {
	r, buf := newTestREPL(t)
	csv := `segment_id,time_sec,delay_sec
19,50,56
19,51,38
19,51,97
20,49,72
20,51,59
`
	r.OpenFile = func(path string) (io.ReadCloser, error) {
		if path != "test.csv" {
			return nil, errors.New("unexpected path")
		}
		return io.NopCloser(strings.NewReader(csv)), nil
	}
	exec(t, r, "STREAM roads segment_id delay:dist")
	exec(t, r, "QUERY all SELECT segment_id, delay FROM roads")
	exec(t, r, "LOAD roads test.csv KEY segment_id VALUE delay_sec TIME time_sec")
	out := buf.String()
	if !strings.Contains(out, "loaded 2 tuples (2 results)") {
		t.Errorf("load output:\n%s", out)
	}
	// File errors propagate.
	r.OpenFile = func(string) (io.ReadCloser, error) { return nil, errors.New("no such file") }
	if err := r.Exec("LOAD roads gone.csv KEY a VALUE b"); err == nil {
		t.Error("missing file: want error")
	}
}

func TestREPLJoinRouting(t *testing.T) {
	r, buf := newTestREPL(t)
	exec(t, r, "STREAM a k x:dist")
	exec(t, r, "STREAM b k y:dist")
	exec(t, r, "QUERY j SELECT a.x, b.y FROM a JOIN b ON k = k")
	exec(t, r, "INSERT a 5 N(10,4,20)")
	exec(t, r, "INSERT b 5 N(3,1,20)")
	exec(t, r, "STATS j")
	out := buf.String()
	if !strings.Contains(out, `"a.x"`) {
		t.Errorf("join result missing:\n%s", out)
	}
	if !strings.Contains(out, "joined=1") {
		t.Errorf("join stats missing:\n%s", out)
	}
}

func TestREPLErrorsAndHelp(t *testing.T) {
	r, buf := newTestREPL(t)
	bad := []string{
		"FROB",
		"STREAM",
		"STREAM solo",
		"QUERY nospace",
		"QUERY q SELECT x FROM nosuch",
		"INSERT",
		"INSERT nosuch 1",
		"STATS nosuch",
		"CLOSE nosuch",
		"LOAD a b KEY",
	}
	for _, line := range bad {
		if err := r.Exec(line); err == nil {
			t.Errorf("%q: want error", line)
		}
	}
	// Comments and blanks are no-ops.
	exec(t, r, "# a comment")
	exec(t, r, "   ")
	exec(t, r, "HELP")
	if !strings.Contains(buf.String(), "EXPLAIN") {
		t.Error("HELP output missing commands")
	}
	// Duplicate query ids rejected; CLOSE then reuse works.
	exec(t, r, "STREAM s x:dist")
	exec(t, r, "QUERY q SELECT x FROM s")
	if err := r.Exec("QUERY q SELECT x FROM s"); err == nil {
		t.Error("duplicate id: want error")
	}
	exec(t, r, "CLOSE q")
	exec(t, r, "QUERY q SELECT x FROM s")
}
