// Package repl implements the interactive shell over an embedded engine —
// the logic behind cmd/asdb, factored out so it can be tested. It accepts
// the same STREAM / QUERY / INSERT / LOAD / STATS / EXPLAIN / CLOSE
// commands as the network protocol and prints results (with accuracy
// information) to its output writer.
package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/randvar"
	"repro/internal/server"
	"repro/internal/sql"
)

// REPL owns the embedded engine and registered queries. Not safe for
// concurrent use.
type REPL struct {
	eng     *core.Engine
	queries map[string]*replQuery
	out     io.Writer
	// OpenFile loads CSVs for the LOAD command; defaults to os.Open and
	// is injectable for tests.
	OpenFile func(string) (io.ReadCloser, error)
}

type replQuery struct {
	query   *core.Query
	streams map[string]bool // lower-cased input streams (2 for joins)
}

// New builds a REPL over a fresh engine.
func New(cfg core.Config, out io.Writer) (*REPL, error) {
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &REPL{
		eng:      eng,
		queries:  make(map[string]*replQuery),
		out:      out,
		OpenFile: func(path string) (io.ReadCloser, error) { return os.Open(path) },
	}, nil
}

// Engine exposes the underlying engine (examples and tests).
func (r *REPL) Engine() *core.Engine { return r.eng }

// HelpText describes the commands.
const HelpText = `commands:
  STREAM  <name> <col>[:dist] ...   register a stream
  QUERY   <id> <sql>                compile a continuous query
  INSERT  <stream> <field> ...      push a tuple (fields: 12.5 | N(mu,s2,n) | S(v;v;...) | H(e,e|c,c))
  LOAD    <stream> <file> KEY <col> VALUE <col> [TIME <col>]
                                    learn per-key distributions from a CSV and insert them
  EXPLAIN <id>                      show a query's compiled plan
  STATS   <id>                      query counters
  CLOSE   <id>                      drop a query
  HELP                              this text
`

// Exec executes one command line and prints its effects.
func (r *REPL) Exec(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	cmd, rest := line, ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	switch strings.ToUpper(cmd) {
	case "STREAM":
		return r.cmdStream(rest)
	case "QUERY":
		return r.cmdQuery(rest)
	case "INSERT":
		return r.cmdInsert(rest)
	case "LOAD":
		return r.cmdLoad(rest)
	case "EXPLAIN":
		return r.cmdExplain(rest)
	case "STATS":
		return r.cmdStats(rest)
	case "CLOSE":
		return r.cmdClose(rest)
	case "HELP":
		fmt.Fprint(r.out, HelpText)
		return nil
	}
	return fmt.Errorf("unknown command %q (try HELP)", cmd)
}

func (r *REPL) cmdStream(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := server.ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return err
	}
	if err := r.eng.RegisterStream(schema); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "stream %s registered: %s\n", schema.Name, schema)
	return nil
}

func (r *REPL) cmdQuery(rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return fmt.Errorf("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	if _, dup := r.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	q, err := r.eng.Compile(sqlText)
	if err != nil {
		return err
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return err
	}
	streams := map[string]bool{strings.ToLower(stmt.From): true}
	if stmt.Join != nil {
		streams[strings.ToLower(stmt.Join.Right)] = true
	}
	r.queries[id] = &replQuery{query: q, streams: streams}
	fmt.Fprintf(r.out, "query %s: %s\n", id, q)
	return nil
}

// pushTuple routes a tuple to every query reading the stream, printing
// results as JSON lines.
func (r *REPL) pushTuple(streamName string, vals []randvar.Field, ts int64) (int, error) {
	t, err := r.eng.NewTuple(streamName, vals)
	if err != nil {
		return 0, err
	}
	t.Time = ts
	want := strings.ToLower(streamName)
	emitted := 0
	for id, rq := range r.queries {
		if !rq.streams[want] {
			continue
		}
		results, err := rq.query.Push(t)
		if err != nil {
			return emitted, fmt.Errorf("query %s: %w", id, err)
		}
		for _, res := range results {
			payload, err := json.Marshal(server.EncodeResult(res))
			if err != nil {
				return emitted, err
			}
			fmt.Fprintf(r.out, "%s => %s\n", id, payload)
			emitted++
		}
	}
	return emitted, nil
}

func (r *REPL) cmdInsert(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: INSERT <stream> <field> ...")
	}
	vals := make([]randvar.Field, 0, len(fields)-1)
	for _, spec := range fields[1:] {
		f, err := server.ParseFieldSpec(spec)
		if err != nil {
			return err
		}
		vals = append(vals, f)
	}
	_, err := r.pushTuple(fields[0], vals, 0)
	return err
}

func (r *REPL) cmdLoad(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 6 || !strings.EqualFold(fields[2], "KEY") || !strings.EqualFold(fields[4], "VALUE") {
		return fmt.Errorf("usage: LOAD <stream> <file> KEY <col> VALUE <col> [TIME <col>]")
	}
	spec := ingest.Spec{KeyColumn: fields[3], ValueColumn: fields[5]}
	if len(fields) >= 8 && strings.EqualFold(fields[6], "TIME") {
		spec.TimeColumn = fields[7]
	}
	f, err := r.OpenFile(fields[1])
	if err != nil {
		return err
	}
	tuples, err := ingest.Read(f, spec)
	f.Close()
	if err != nil {
		return err
	}
	inserted, emitted := 0, 0
	for _, lt := range tuples {
		n, err := r.pushTuple(fields[0], []randvar.Field{randvar.Det(lt.Key), lt.Field}, lt.Time)
		emitted += n
		if err != nil {
			return err
		}
		inserted++
	}
	fmt.Fprintf(r.out, "loaded %d tuples (%d results)\n", inserted, emitted)
	return nil
}

func (r *REPL) cmdExplain(rest string) error {
	rq, ok := r.queries[strings.TrimSpace(rest)]
	if !ok {
		return fmt.Errorf("unknown query %q", rest)
	}
	fmt.Fprint(r.out, rq.query.Explain())
	return nil
}

func (r *REPL) cmdStats(rest string) error {
	rq, ok := r.queries[rest]
	if !ok {
		return fmt.Errorf("unknown query %q", rest)
	}
	st := rq.query.Stats()
	fmt.Fprintf(r.out, "in=%d out=%d dropped=%d unsure=%d joined=%d\n",
		st.In, st.Out, st.Dropped, st.Unsure, st.Joined)
	return nil
}

func (r *REPL) cmdClose(rest string) error {
	if _, ok := r.queries[rest]; !ok {
		return fmt.Errorf("unknown query %q", rest)
	}
	delete(r.queries, rest)
	fmt.Fprintf(r.out, "closed %s\n", rest)
	return nil
}
