// Package repl implements the interactive shell over an embedded engine —
// the logic behind cmd/asdb, factored out so it can be tested. It accepts
// the same STREAM / QUERY / INSERT / INSERTBATCH / LOAD / STATS / EXPLAIN /
// CLOSE commands as the network protocol and prints results (with accuracy
// information) to its output writer.
//
// With Config.DataDir set the REPL is durable: state-changing commands are
// journaled to a write-ahead log and the engine is checkpointed
// periodically, exactly like the network daemon. On startup the REPL
// recovers the latest checkpoint plus the WAL suffix (replay output is
// suppressed — those results were already printed by the previous run).
// LOAD and INSERTBATCH are journaled as one WAL batch of per-tuple insert
// records (one fsync for the whole batch under fsync=always), so replaying
// a LOAD does not need the source CSV to still exist, and a crash
// mid-batch recovers the durable prefix of the batch.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/randvar"
	"repro/internal/server"
	"repro/internal/wal"
)

// loadChunk is how many tuples LOAD pushes (and journals) per engine
// batch: large enough to amortize lock and fsync costs, small enough to
// keep result output flowing.
const loadChunk = 128

// REPL owns the embedded engine and registered queries. Not safe for
// concurrent use.
type REPL struct {
	eng     *core.Engine
	queries map[string]*replQuery
	out     io.Writer
	// OpenFile loads CSVs for the LOAD command; defaults to os.Open and
	// is injectable for tests.
	OpenFile func(string) (io.ReadCloser, error)

	wal     *wal.Log
	ck      *checkpoint.Manager
	ckEvery int
	sinceCk int
}

type replQuery struct {
	query   *core.Query
	sqlText string
}

// New builds a REPL over a fresh engine, recovering durable state when the
// configuration names a data directory.
func New(cfg core.Config, out io.Writer) (*REPL, error) {
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	r := &REPL{
		eng:      eng,
		queries:  make(map[string]*replQuery),
		out:      out,
		OpenFile: func(path string) (io.ReadCloser, error) { return os.Open(path) },
	}
	cfg = eng.Config()
	if cfg.DataDir == "" {
		return r, nil
	}
	policy, err := wal.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, err
	}
	ckm, err := checkpoint.NewManager(filepath.Join(cfg.DataDir, "checkpoints"))
	if err != nil {
		return nil, err
	}
	snap, err := ckm.LoadLatest()
	if err != nil {
		return nil, err
	}
	// Recovery mode reroutes steady-state ingest metrics to a dedicated
	// counter so the recovered process reports the same values as one
	// that never crashed.
	eng.SetRecovering(true)
	defer eng.SetRecovering(false)
	from := uint64(1)
	if snap != nil {
		restored, err := checkpoint.Restore(eng, snap)
		if err != nil {
			return nil, fmt.Errorf("repl: restoring checkpoint (lsn %d): %w", snap.LSN, err)
		}
		for _, q := range restored {
			if err := eng.Bind(q.ID, q.Query); err != nil {
				return nil, fmt.Errorf("repl: restored query %s: %w", q.ID, err)
			}
			r.queries[q.ID] = &replQuery{query: q.Query, sqlText: q.SQL}
		}
		from = snap.LSN + 1
	}
	wlog, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Options{Policy: policy})
	if err != nil {
		return nil, err
	}
	// Replay with output suppressed: the previous run already printed
	// these results, and recovery must be silent besides its summary.
	liveOut := r.out
	r.out = io.Discard
	replayErr := wlog.Replay(from, r.applyRecord)
	r.out = liveOut
	if replayErr != nil {
		wlog.Close()
		return nil, fmt.Errorf("repl: wal replay: %w", replayErr)
	}
	r.wal = wlog
	r.ck = ckm
	r.ckEvery = cfg.CheckpointEvery
	if snap != nil || wlog.LastLSN() >= from {
		fmt.Fprintf(r.out, "recovered %d queries, %d streams (wal lsn %d)\n",
			len(r.queries), len(eng.Streams()), wlog.LastLSN())
	}
	return r, nil
}

// Close writes a final checkpoint and closes the WAL. Safe to call on a
// non-durable REPL and more than once.
func (r *REPL) Close() error {
	if r.wal == nil {
		return nil
	}
	var err error
	if lsn := r.wal.LastLSN(); lsn > 0 {
		err = r.checkpointNow(lsn)
	}
	if serr := r.wal.Sync(); err == nil {
		err = serr
	}
	if cerr := r.wal.Close(); err == nil {
		err = cerr
	}
	r.wal = nil
	return err
}

// Engine exposes the underlying engine (examples and tests).
func (r *REPL) Engine() *core.Engine { return r.eng }

// HelpText describes the commands.
const HelpText = `commands:
  STREAM  <name> <col>[:dist] ...   register a stream
  QUERY   <id> <sql>                compile a continuous query
  INSERT  <stream> <field> ...      push a tuple (fields: 12.5 | N(mu,s2,n) | S(v;v;...) | H(e,e|c,c))
  INSERTBATCH <stream> <field> ... | <field> ...
                                    push several tuples in one engine batch
                                    ("|" separates tuples; one WAL fsync)
  LOAD    <stream> <file> KEY <col> VALUE <col> [TIME <col>]
                                    learn per-key distributions from a CSV and insert them
  EXPLAIN <id> [TIMING]             show a query's compiled plan (TIMING
                                    adds per-stage counters; node-local)
  STATS   <id>                      query counters
  METRICS [<id>]                    process metrics (Prometheus text), or one
                                    query's accuracy telemetry as JSON
  CLOSE   <id>                      drop a query
  ROLE                              replication role, epoch, and lag
  HELP                              this text
`

// Exec executes one command line and prints its effects.
func (r *REPL) Exec(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	cmd, rest := line, ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	switch strings.ToUpper(cmd) {
	case "STREAM":
		return r.cmdStream(rest)
	case "QUERY":
		return r.cmdQuery(rest)
	case "INSERT":
		return r.cmdInsert(rest)
	case "INSERTBATCH":
		return r.cmdInsertBatch(rest)
	case "LOAD":
		return r.cmdLoad(rest)
	case "EXPLAIN":
		return r.cmdExplain(rest)
	case "STATS":
		return r.cmdStats(rest)
	case "METRICS":
		return r.cmdMetrics(rest)
	case "CLOSE":
		return r.cmdClose(rest)
	case "ROLE":
		return r.cmdRole()
	case "HELP":
		fmt.Fprint(r.out, HelpText)
		return nil
	}
	return fmt.Errorf("unknown command %q (try HELP)", cmd)
}

// cmdRole reports the node's replication role in the same shape the
// server's ROLE verb uses. The standalone REPL is always its own primary
// at epoch 1; the verb exists so scripts written against a cluster node
// also run here.
func (r *REPL) cmdRole() error {
	lsn := uint64(0)
	if r.wal != nil {
		lsn = r.wal.LastLSN()
	}
	fmt.Fprintf(r.out, "role=primary epoch=1 followers=0 last_lsn=%d lag_records=0\n", lsn)
	return nil
}

// journal appends one record to the WAL. No-op while non-durable
// (including during replay, before r.wal is set). Callers follow up with
// maybeCheckpoint once the command's engine effects are complete —
// checkpointing re-enters the engine, so it must never run inside an
// ingest commit hook.
func (r *REPL) journal(typ wal.RecordType, payload string) error {
	if r.wal == nil {
		return nil
	}
	if _, err := r.wal.Append(typ, []byte(payload)); err != nil {
		return fmt.Errorf("wal append failed: %w", err)
	}
	r.sinceCk++
	return nil
}

// journalBatch appends per-tuple records as one WAL batch: a single flush
// and (under fsync=always) a single fsync for the whole batch. A crash
// mid-batch leaves a valid prefix of records, which recovery replays —
// matching the engine, whose durable state is exactly the committed
// prefix.
func (r *REPL) journalBatch(typ wal.RecordType, payloads [][]byte) error {
	if r.wal == nil || len(payloads) == 0 {
		return nil
	}
	if _, _, err := r.wal.AppendBatch(typ, payloads); err != nil {
		return fmt.Errorf("wal append failed: %w", err)
	}
	r.sinceCk += len(payloads)
	return nil
}

// maybeCheckpoint writes a checkpoint when the record cadence is due.
func (r *REPL) maybeCheckpoint() {
	if r.wal == nil || r.ckEvery <= 0 || r.sinceCk < r.ckEvery {
		return
	}
	lsn := r.wal.LastLSN()
	if err := r.checkpointNow(lsn); err != nil {
		// Non-fatal: the WAL still covers everything since the last
		// successful checkpoint.
		fmt.Fprintf(r.out, "checkpoint at lsn %d failed: %v\n", lsn, err)
		return
	}
	r.sinceCk = 0
}

func (r *REPL) checkpointNow(lsn uint64) error {
	defs := make([]checkpoint.QueryDef, 0, len(r.queries))
	for id, rq := range r.queries {
		defs = append(defs, checkpoint.QueryDef{ID: id, SQL: rq.sqlText, Query: rq.query})
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	snap, err := checkpoint.Capture(r.eng, lsn, defs)
	if err != nil {
		return err
	}
	if err := r.ck.Save(snap); err != nil {
		return err
	}
	if err := r.wal.TruncateThrough(lsn); err != nil {
		fmt.Fprintf(r.out, "wal truncate through %d failed: %v\n", lsn, err)
	}
	return nil
}

// applyRecord re-executes one journaled command during recovery.
func (r *REPL) applyRecord(rec wal.Record) error {
	payload := string(rec.Payload)
	var err error
	switch rec.Type {
	case wal.RecStream:
		err = r.applyStream(payload)
	case wal.RecQuery:
		id, sqlText := payload, ""
		if idx := strings.IndexByte(payload, ' '); idx >= 0 {
			id, sqlText = payload[:idx], payload[idx+1:]
		}
		err = r.applyQuery(id, sqlText)
	case wal.RecInsert:
		// Per-query push errors were already reported by the live run and
		// leave deterministic state; only pre-state failures abort replay.
		var hard bool
		hard, err = r.applyInsertRecord(payload)
		if !hard {
			err = nil
		}
	case wal.RecClose:
		err = r.applyClose(payload)
	default:
		err = fmt.Errorf("unknown record type %d", rec.Type)
	}
	if err != nil {
		return fmt.Errorf("lsn %d: %w", rec.LSN, err)
	}
	return nil
}

func (r *REPL) applyStream(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := server.ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return err
	}
	if err := r.eng.RegisterStream(schema); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "stream %s registered: %s\n", schema.Name, schema)
	return nil
}

func (r *REPL) cmdStream(rest string) error {
	if err := r.applyStream(rest); err != nil {
		return err
	}
	if err := r.journal(wal.RecStream, rest); err != nil {
		return err
	}
	r.maybeCheckpoint()
	return nil
}

func (r *REPL) applyQuery(id, sqlText string) error {
	if id == "" || sqlText == "" {
		return fmt.Errorf("usage: QUERY <id> <sql>")
	}
	if _, dup := r.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	q, err := r.eng.Compile(sqlText)
	if err != nil {
		return err
	}
	if err := r.eng.Bind(id, q); err != nil {
		return err
	}
	r.queries[id] = &replQuery{query: q, sqlText: q.SQL()}
	fmt.Fprintf(r.out, "query %s: %s\n", id, q)
	return nil
}

func (r *REPL) cmdQuery(rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return fmt.Errorf("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	if err := r.applyQuery(id, sqlText); err != nil {
		return err
	}
	// Journal the normalized statement so replay compiles the exact text
	// the checkpoint will reference.
	if err := r.journal(wal.RecQuery, id+" "+r.queries[id].sqlText); err != nil {
		return err
	}
	r.maybeCheckpoint()
	return nil
}

// insertRecord is the WAL payload of one tuple: "<stream> <ts> <spec> ...".
func insertRecord(streamName string, row core.IngestRow) []byte {
	specs := make([]string, len(row.Fields))
	for i, f := range row.Fields {
		specs[i] = server.FormatFieldSpec(f)
	}
	return []byte(streamName + " " + strconv.FormatInt(row.Time, 10) + " " + strings.Join(specs, " "))
}

// ingestRows pushes a batch through the engine's sharded ingest path. The
// per-tuple WAL records are appended as one batch inside the engine's
// commit hook (so journal order provably equals engine sequence order),
// results are printed per query in sorted query-id order, and per-query
// push errors are aggregated after every query has seen the batch.
func (r *REPL) ingestRows(streamName string, rows []core.IngestRow) (int, error) {
	payloads := make([][]byte, len(rows))
	for i, row := range rows {
		payloads[i] = insertRecord(streamName, row)
	}
	commit := func() error { return r.journalBatch(wal.RecInsert, payloads) }
	results, err := r.eng.IngestBatch(streamName, rows, commit)
	if err != nil {
		return 0, err
	}
	emitted := 0
	var pushErrs []string
	for _, qr := range results {
		if qr.Err != nil {
			pushErrs = append(pushErrs, fmt.Sprintf("query %s: %v", qr.ID, qr.Err))
		}
		for _, res := range qr.Results {
			payload, merr := json.Marshal(server.EncodeResult(res))
			if merr != nil {
				return emitted, merr
			}
			fmt.Fprintf(r.out, "%s => %s\n", qr.ID, payload)
			emitted++
		}
	}
	r.maybeCheckpoint()
	if len(pushErrs) > 0 {
		return emitted, errors.New(strings.Join(pushErrs, "; "))
	}
	return emitted, nil
}

// applyInsertRecord replays one journaled insert ("<stream> <ts> <spec>
// ..."). hard reports whether the failure happened before engine state
// changed (those abort recovery; per-query push errors do not).
func (r *REPL) applyInsertRecord(payload string) (hard bool, err error) {
	fields := strings.Fields(payload)
	if len(fields) < 3 {
		return true, fmt.Errorf("malformed insert record %q", payload)
	}
	ts, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return true, fmt.Errorf("malformed insert timestamp %q", fields[1])
	}
	vals := make([]randvar.Field, 0, len(fields)-2)
	for _, spec := range fields[2:] {
		f, err := server.ParseFieldSpec(spec)
		if err != nil {
			return true, err
		}
		vals = append(vals, f)
	}
	results, err := r.eng.IngestBatch(fields[0], []core.IngestRow{{Fields: vals, Time: ts}}, nil)
	if err != nil {
		return true, err
	}
	for _, qr := range results {
		if qr.Err != nil {
			return false, fmt.Errorf("query %s: %w", qr.ID, qr.Err)
		}
	}
	return false, nil
}

func parseFieldSpecs(specs []string) ([]randvar.Field, error) {
	vals := make([]randvar.Field, 0, len(specs))
	for _, spec := range specs {
		f, err := server.ParseFieldSpec(spec)
		if err != nil {
			return nil, err
		}
		vals = append(vals, f)
	}
	return vals, nil
}

func (r *REPL) cmdInsert(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: INSERT <stream> <field> ...")
	}
	vals, err := parseFieldSpecs(fields[1:])
	if err != nil {
		return err
	}
	_, err = r.ingestRows(fields[0], []core.IngestRow{{Fields: vals}})
	return err
}

func (r *REPL) cmdInsertBatch(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: INSERTBATCH <stream> <field> ... | <field> ...")
	}
	var rows []core.IngestRow
	var cur []string
	flush := func() error {
		if len(cur) == 0 {
			return fmt.Errorf("empty tuple in batch")
		}
		vals, err := parseFieldSpecs(cur)
		if err != nil {
			return err
		}
		rows = append(rows, core.IngestRow{Fields: vals})
		cur = cur[:0]
		return nil
	}
	for _, tok := range fields[1:] {
		if tok == "|" {
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		cur = append(cur, tok)
	}
	if err := flush(); err != nil {
		return err
	}
	emitted, err := r.ingestRows(fields[0], rows)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "inserted %d tuples (%d results)\n", len(rows), emitted)
	return nil
}

func (r *REPL) cmdLoad(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 6 || !strings.EqualFold(fields[2], "KEY") || !strings.EqualFold(fields[4], "VALUE") {
		return fmt.Errorf("usage: LOAD <stream> <file> KEY <col> VALUE <col> [TIME <col>]")
	}
	spec := ingest.Spec{KeyColumn: fields[3], ValueColumn: fields[5]}
	if len(fields) >= 8 && strings.EqualFold(fields[6], "TIME") {
		spec.TimeColumn = fields[7]
	}
	f, err := r.OpenFile(fields[1])
	if err != nil {
		return err
	}
	tuples, err := ingest.Read(f, spec)
	f.Close()
	if err != nil {
		return err
	}
	// Chunked batches: each chunk is one engine ingest (shard locks taken
	// once) and one WAL batch of per-tuple records (journaled so replay
	// never re-reads the CSV; a crash mid-load recovers the durable
	// prefix).
	inserted, emitted := 0, 0
	for start := 0; start < len(tuples); start += loadChunk {
		end := start + loadChunk
		if end > len(tuples) {
			end = len(tuples)
		}
		rows := make([]core.IngestRow, 0, end-start)
		for _, lt := range tuples[start:end] {
			rows = append(rows, core.IngestRow{
				Fields: []randvar.Field{randvar.Det(lt.Key), lt.Field},
				Time:   lt.Time,
			})
		}
		n, err := r.ingestRows(fields[0], rows)
		emitted += n
		if err != nil {
			return err
		}
		inserted += len(rows)
	}
	fmt.Fprintf(r.out, "loaded %d tuples (%d results)\n", inserted, emitted)
	return nil
}

func (r *REPL) cmdExplain(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 || (len(fields) == 2 && !strings.EqualFold(fields[1], "TIMING")) {
		return errors.New("usage: EXPLAIN <id> [TIMING]")
	}
	rq, ok := r.queries[fields[0]]
	if !ok {
		return fmt.Errorf("unknown query %q", fields[0])
	}
	if len(fields) == 2 {
		fmt.Fprint(r.out, rq.query.ExplainTiming())
		return nil
	}
	fmt.Fprint(r.out, rq.query.Explain())
	return nil
}

func (r *REPL) cmdStats(rest string) error {
	rq, ok := r.queries[rest]
	if !ok {
		return fmt.Errorf("unknown query %q", rest)
	}
	st := rq.query.Stats()
	fmt.Fprintf(r.out, "in=%d out=%d dropped=%d unsure=%d joined=%d\n",
		st.In, st.Out, st.Dropped, st.Unsure, st.Joined)
	return nil
}

// cmdMetrics prints the process registry as a Prometheus text page, or —
// given a query id — that query's counters plus accuracy telemetry (rolling
// CI half-widths, tuple-probability interval widths, d.f. sample sizes) as
// indented JSON.
func (r *REPL) cmdMetrics(rest string) error {
	id := strings.TrimSpace(rest)
	if id == "" {
		return metrics.Default.WriteProm(r.out)
	}
	rq, ok := r.queries[id]
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	payload, err := json.MarshalIndent(struct {
		ID        string          `json:"id"`
		Stats     core.QueryStats `json:"stats"`
		Telemetry core.Telemetry  `json:"telemetry"`
	}{id, rq.query.Stats(), rq.query.Telemetry()}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "%s\n", payload)
	return nil
}

func (r *REPL) applyClose(id string) error {
	if _, ok := r.queries[id]; !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	delete(r.queries, id)
	r.eng.Unbind(id)
	fmt.Fprintf(r.out, "closed %s\n", id)
	return nil
}

func (r *REPL) cmdClose(rest string) error {
	if err := r.applyClose(rest); err != nil {
		return err
	}
	if err := r.journal(wal.RecClose, rest); err != nil {
		return err
	}
	r.maybeCheckpoint()
	return nil
}
