// Package repl implements the interactive shell over an embedded engine —
// the logic behind cmd/asdb, factored out so it can be tested. It accepts
// the same STREAM / QUERY / INSERT / LOAD / STATS / EXPLAIN / CLOSE
// commands as the network protocol and prints results (with accuracy
// information) to its output writer.
//
// With Config.DataDir set the REPL is durable: state-changing commands are
// journaled to a write-ahead log and the engine is checkpointed
// periodically, exactly like the network daemon. On startup the REPL
// recovers the latest checkpoint plus the WAL suffix (replay output is
// suppressed — those results were already printed by the previous run).
// LOAD is journaled per learned tuple, so replaying a LOAD does not need
// the source CSV to still exist.
package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/randvar"
	"repro/internal/server"
	"repro/internal/sql"
	"repro/internal/stream"
	"repro/internal/wal"
)

// REPL owns the embedded engine and registered queries. Not safe for
// concurrent use.
type REPL struct {
	eng     *core.Engine
	queries map[string]*replQuery
	out     io.Writer
	// OpenFile loads CSVs for the LOAD command; defaults to os.Open and
	// is injectable for tests.
	OpenFile func(string) (io.ReadCloser, error)

	wal     *wal.Log
	ck      *checkpoint.Manager
	ckEvery int
	sinceCk int
}

type replQuery struct {
	query   *core.Query
	sqlText string
	streams map[string]bool // lower-cased input streams (2 for joins)
}

// New builds a REPL over a fresh engine, recovering durable state when the
// configuration names a data directory.
func New(cfg core.Config, out io.Writer) (*REPL, error) {
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	r := &REPL{
		eng:      eng,
		queries:  make(map[string]*replQuery),
		out:      out,
		OpenFile: func(path string) (io.ReadCloser, error) { return os.Open(path) },
	}
	cfg = eng.Config()
	if cfg.DataDir == "" {
		return r, nil
	}
	policy, err := wal.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, err
	}
	ckm, err := checkpoint.NewManager(filepath.Join(cfg.DataDir, "checkpoints"))
	if err != nil {
		return nil, err
	}
	snap, err := ckm.LoadLatest()
	if err != nil {
		return nil, err
	}
	from := uint64(1)
	if snap != nil {
		restored, err := checkpoint.Restore(eng, snap)
		if err != nil {
			return nil, fmt.Errorf("repl: restoring checkpoint (lsn %d): %w", snap.LSN, err)
		}
		for _, q := range restored {
			streams, err := sourceStreams(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("repl: restored query %s: %w", q.ID, err)
			}
			r.queries[q.ID] = &replQuery{query: q.Query, sqlText: q.SQL, streams: streams}
		}
		from = snap.LSN + 1
	}
	wlog, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Options{Policy: policy})
	if err != nil {
		return nil, err
	}
	// Replay with output suppressed: the previous run already printed
	// these results, and recovery must be silent besides its summary.
	liveOut := r.out
	r.out = io.Discard
	replayErr := wlog.Replay(from, r.applyRecord)
	r.out = liveOut
	if replayErr != nil {
		wlog.Close()
		return nil, fmt.Errorf("repl: wal replay: %w", replayErr)
	}
	r.wal = wlog
	r.ck = ckm
	r.ckEvery = cfg.CheckpointEvery
	if snap != nil || wlog.LastLSN() >= from {
		fmt.Fprintf(r.out, "recovered %d queries, %d streams (wal lsn %d)\n",
			len(r.queries), len(eng.Streams()), wlog.LastLSN())
	}
	return r, nil
}

func sourceStreams(sqlText string) (map[string]bool, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	streams := map[string]bool{strings.ToLower(stmt.From): true}
	if stmt.Join != nil {
		streams[strings.ToLower(stmt.Join.Right)] = true
	}
	return streams, nil
}

// Close writes a final checkpoint and closes the WAL. Safe to call on a
// non-durable REPL and more than once.
func (r *REPL) Close() error {
	if r.wal == nil {
		return nil
	}
	var err error
	if lsn := r.wal.LastLSN(); lsn > 0 {
		err = r.checkpointNow(lsn)
	}
	if serr := r.wal.Sync(); err == nil {
		err = serr
	}
	if cerr := r.wal.Close(); err == nil {
		err = cerr
	}
	r.wal = nil
	return err
}

// Engine exposes the underlying engine (examples and tests).
func (r *REPL) Engine() *core.Engine { return r.eng }

// HelpText describes the commands.
const HelpText = `commands:
  STREAM  <name> <col>[:dist] ...   register a stream
  QUERY   <id> <sql>                compile a continuous query
  INSERT  <stream> <field> ...      push a tuple (fields: 12.5 | N(mu,s2,n) | S(v;v;...) | H(e,e|c,c))
  LOAD    <stream> <file> KEY <col> VALUE <col> [TIME <col>]
                                    learn per-key distributions from a CSV and insert them
  EXPLAIN <id>                      show a query's compiled plan
  STATS   <id>                      query counters
  METRICS [<id>]                    process metrics (Prometheus text), or one
                                    query's accuracy telemetry as JSON
  CLOSE   <id>                      drop a query
  HELP                              this text
`

// Exec executes one command line and prints its effects.
func (r *REPL) Exec(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	cmd, rest := line, ""
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		cmd, rest = line[:idx], strings.TrimSpace(line[idx+1:])
	}
	switch strings.ToUpper(cmd) {
	case "STREAM":
		return r.cmdStream(rest)
	case "QUERY":
		return r.cmdQuery(rest)
	case "INSERT":
		return r.cmdInsert(rest)
	case "LOAD":
		return r.cmdLoad(rest)
	case "EXPLAIN":
		return r.cmdExplain(rest)
	case "STATS":
		return r.cmdStats(rest)
	case "METRICS":
		return r.cmdMetrics(rest)
	case "CLOSE":
		return r.cmdClose(rest)
	case "HELP":
		fmt.Fprint(r.out, HelpText)
		return nil
	}
	return fmt.Errorf("unknown command %q (try HELP)", cmd)
}

// journal appends one record and checkpoints when due. No-op while
// non-durable (including during replay, before r.wal is set).
func (r *REPL) journal(typ wal.RecordType, payload string) error {
	if r.wal == nil {
		return nil
	}
	lsn, err := r.wal.Append(typ, []byte(payload))
	if err != nil {
		return fmt.Errorf("wal append failed: %w", err)
	}
	r.sinceCk++
	if r.ckEvery > 0 && r.sinceCk >= r.ckEvery {
		if err := r.checkpointNow(lsn); err != nil {
			// Non-fatal: the WAL still covers everything since the last
			// successful checkpoint.
			fmt.Fprintf(r.out, "checkpoint at lsn %d failed: %v\n", lsn, err)
		} else {
			r.sinceCk = 0
		}
	}
	return nil
}

func (r *REPL) checkpointNow(lsn uint64) error {
	defs := make([]checkpoint.QueryDef, 0, len(r.queries))
	for id, rq := range r.queries {
		defs = append(defs, checkpoint.QueryDef{ID: id, SQL: rq.sqlText, Query: rq.query})
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	snap, err := checkpoint.Capture(r.eng, lsn, defs)
	if err != nil {
		return err
	}
	if err := r.ck.Save(snap); err != nil {
		return err
	}
	if err := r.wal.TruncateThrough(lsn); err != nil {
		fmt.Fprintf(r.out, "wal truncate through %d failed: %v\n", lsn, err)
	}
	return nil
}

// applyRecord re-executes one journaled command during recovery.
func (r *REPL) applyRecord(rec wal.Record) error {
	payload := string(rec.Payload)
	var err error
	switch rec.Type {
	case wal.RecStream:
		err = r.applyStream(payload)
	case wal.RecQuery:
		id, sqlText := payload, ""
		if idx := strings.IndexByte(payload, ' '); idx >= 0 {
			id, sqlText = payload[:idx], payload[idx+1:]
		}
		err = r.applyQuery(id, sqlText)
	case wal.RecInsert:
		// Per-query push errors were already reported by the live run and
		// leave deterministic state; only pre-state failures abort replay.
		var hard bool
		hard, err = r.applyInsertRecord(payload)
		if !hard {
			err = nil
		}
	case wal.RecClose:
		err = r.applyClose(payload)
	default:
		err = fmt.Errorf("unknown record type %d", rec.Type)
	}
	if err != nil {
		return fmt.Errorf("lsn %d: %w", rec.LSN, err)
	}
	return nil
}

func (r *REPL) applyStream(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: STREAM <name> <col>[:dist] ...")
	}
	schema, err := server.ParseStreamDef(fields[0], fields[1:])
	if err != nil {
		return err
	}
	if err := r.eng.RegisterStream(schema); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "stream %s registered: %s\n", schema.Name, schema)
	return nil
}

func (r *REPL) cmdStream(rest string) error {
	if err := r.applyStream(rest); err != nil {
		return err
	}
	return r.journal(wal.RecStream, rest)
}

func (r *REPL) applyQuery(id, sqlText string) error {
	if id == "" || sqlText == "" {
		return fmt.Errorf("usage: QUERY <id> <sql>")
	}
	if _, dup := r.queries[id]; dup {
		return fmt.Errorf("query id %q already in use", id)
	}
	streams, err := sourceStreams(sqlText)
	if err != nil {
		return err
	}
	q, err := r.eng.Compile(sqlText)
	if err != nil {
		return err
	}
	r.queries[id] = &replQuery{query: q, sqlText: q.SQL(), streams: streams}
	fmt.Fprintf(r.out, "query %s: %s\n", id, q)
	return nil
}

func (r *REPL) cmdQuery(rest string) error {
	idx := strings.IndexByte(rest, ' ')
	if idx < 0 {
		return fmt.Errorf("usage: QUERY <id> <sql>")
	}
	id, sqlText := rest[:idx], strings.TrimSpace(rest[idx+1:])
	if err := r.applyQuery(id, sqlText); err != nil {
		return err
	}
	// Journal the normalized statement so replay compiles the exact text
	// the checkpoint will reference.
	return r.journal(wal.RecQuery, id+" "+r.queries[id].sqlText)
}

// deliver pushes a built tuple to every query reading its stream (in
// query-id order, so partial effects of a failing push are deterministic)
// and prints results as JSON lines. The first push error is returned after
// every query has been offered the tuple.
func (r *REPL) deliver(streamName string, t *stream.Tuple) (int, error) {
	want := strings.ToLower(streamName)
	ids := make([]string, 0, len(r.queries))
	for id, rq := range r.queries {
		if rq.streams[want] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	emitted := 0
	var firstErr error
	for _, id := range ids {
		results, err := r.queries[id].query.Push(t)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("query %s: %w", id, err)
		}
		for _, res := range results {
			payload, err := json.Marshal(server.EncodeResult(res))
			if err != nil {
				return emitted, err
			}
			fmt.Fprintf(r.out, "%s => %s\n", id, payload)
			emitted++
		}
	}
	return emitted, firstErr
}

// pushTuple builds a tuple, delivers it, then journals the insert.
func (r *REPL) pushTuple(streamName string, vals []randvar.Field, ts int64) (int, error) {
	t, err := r.eng.NewTuple(streamName, vals)
	if err != nil {
		return 0, err
	}
	t.Time = ts
	emitted, firstErr := r.deliver(streamName, t)
	// The tuple consumed engine state (sequence number, query pushes), so
	// journal even when a query errored — replay must repeat the effects.
	specs := make([]string, len(vals))
	for i, f := range vals {
		specs[i] = server.FormatFieldSpec(f)
	}
	payload := streamName + " " + strconv.FormatInt(ts, 10) + " " + strings.Join(specs, " ")
	if jerr := r.journal(wal.RecInsert, payload); jerr != nil && firstErr == nil {
		firstErr = jerr
	}
	return emitted, firstErr
}

// applyInsertRecord replays one journaled insert ("<stream> <ts> <spec>
// ..."). hard reports whether the failure happened before engine state
// changed (those abort recovery; per-query push errors do not).
func (r *REPL) applyInsertRecord(payload string) (hard bool, err error) {
	fields := strings.Fields(payload)
	if len(fields) < 3 {
		return true, fmt.Errorf("malformed insert record %q", payload)
	}
	ts, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return true, fmt.Errorf("malformed insert timestamp %q", fields[1])
	}
	vals := make([]randvar.Field, 0, len(fields)-2)
	for _, spec := range fields[2:] {
		f, err := server.ParseFieldSpec(spec)
		if err != nil {
			return true, err
		}
		vals = append(vals, f)
	}
	t, err := r.eng.NewTuple(fields[0], vals)
	if err != nil {
		return true, err
	}
	t.Time = ts
	_, err = r.deliver(fields[0], t)
	return false, err
}

func (r *REPL) cmdInsert(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: INSERT <stream> <field> ...")
	}
	vals := make([]randvar.Field, 0, len(fields)-1)
	for _, spec := range fields[1:] {
		f, err := server.ParseFieldSpec(spec)
		if err != nil {
			return err
		}
		vals = append(vals, f)
	}
	_, err := r.pushTuple(fields[0], vals, 0)
	return err
}

func (r *REPL) cmdLoad(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 6 || !strings.EqualFold(fields[2], "KEY") || !strings.EqualFold(fields[4], "VALUE") {
		return fmt.Errorf("usage: LOAD <stream> <file> KEY <col> VALUE <col> [TIME <col>]")
	}
	spec := ingest.Spec{KeyColumn: fields[3], ValueColumn: fields[5]}
	if len(fields) >= 8 && strings.EqualFold(fields[6], "TIME") {
		spec.TimeColumn = fields[7]
	}
	f, err := r.OpenFile(fields[1])
	if err != nil {
		return err
	}
	tuples, err := ingest.Read(f, spec)
	f.Close()
	if err != nil {
		return err
	}
	inserted, emitted := 0, 0
	for _, lt := range tuples {
		// pushTuple journals each learned tuple individually, so replay
		// never re-reads (or depends on) the CSV.
		n, err := r.pushTuple(fields[0], []randvar.Field{randvar.Det(lt.Key), lt.Field}, lt.Time)
		emitted += n
		if err != nil {
			return err
		}
		inserted++
	}
	fmt.Fprintf(r.out, "loaded %d tuples (%d results)\n", inserted, emitted)
	return nil
}

func (r *REPL) cmdExplain(rest string) error {
	rq, ok := r.queries[strings.TrimSpace(rest)]
	if !ok {
		return fmt.Errorf("unknown query %q", rest)
	}
	fmt.Fprint(r.out, rq.query.Explain())
	return nil
}

func (r *REPL) cmdStats(rest string) error {
	rq, ok := r.queries[rest]
	if !ok {
		return fmt.Errorf("unknown query %q", rest)
	}
	st := rq.query.Stats()
	fmt.Fprintf(r.out, "in=%d out=%d dropped=%d unsure=%d joined=%d\n",
		st.In, st.Out, st.Dropped, st.Unsure, st.Joined)
	return nil
}

// cmdMetrics prints the process registry as a Prometheus text page, or —
// given a query id — that query's counters plus accuracy telemetry (rolling
// CI half-widths, tuple-probability interval widths, d.f. sample sizes) as
// indented JSON.
func (r *REPL) cmdMetrics(rest string) error {
	id := strings.TrimSpace(rest)
	if id == "" {
		return metrics.Default.WriteProm(r.out)
	}
	rq, ok := r.queries[id]
	if !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	payload, err := json.MarshalIndent(struct {
		ID        string          `json:"id"`
		Stats     core.QueryStats `json:"stats"`
		Telemetry core.Telemetry  `json:"telemetry"`
	}{id, rq.query.Stats(), rq.query.Telemetry()}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "%s\n", payload)
	return nil
}

func (r *REPL) applyClose(id string) error {
	if _, ok := r.queries[id]; !ok {
		return fmt.Errorf("unknown query %q", id)
	}
	delete(r.queries, id)
	fmt.Fprintf(r.out, "closed %s\n", id)
	return nil
}

func (r *REPL) cmdClose(rest string) error {
	if err := r.applyClose(rest); err != nil {
		return err
	}
	return r.journal(wal.RecClose, rest)
}
