package ingest

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/learn"
)

const sampleCSV = `segment_id,length_m,time_sec,delay_sec,speed_limit
19,200,50,56,25
19,200,51,38,25
19,200,51,97,25
20,150,49,72,30
20,150,51,59,30
20,150,52,61,30
20,150,53,70,30
7,80,10,5,25
`

func TestReadGroups(t *testing.T) {
	groups, err := ReadGroups(strings.NewReader(sampleCSV), Spec{
		KeyColumn:   "segment_id",
		ValueColumn: "delay_sec",
		TimeColumn:  "time_sec",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Segment 7 has a single observation → dropped (MinSamples 2).
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Key != 19 || groups[1].Key != 20 {
		t.Fatalf("keys = %v, %v", groups[0].Key, groups[1].Key)
	}
	if groups[0].Sample.Size() != 3 || groups[1].Sample.Size() != 4 {
		t.Errorf("sizes = %d, %d", groups[0].Sample.Size(), groups[1].Sample.Size())
	}
	if groups[0].LastTime != 51 || groups[1].LastTime != 53 {
		t.Errorf("times = %d, %d", groups[0].LastTime, groups[1].LastTime)
	}
	mean, _ := groups[0].Sample.Mean()
	if math.Abs(mean-(56+38+97)/3.0) > 1e-9 {
		t.Errorf("segment 19 mean = %g", mean)
	}
}

func TestReadGroupsErrors(t *testing.T) {
	good := Spec{KeyColumn: "segment_id", ValueColumn: "delay_sec"}
	cases := []struct {
		name string
		csv  string
		spec Spec
	}{
		{"missing key column", sampleCSV, Spec{KeyColumn: "nope", ValueColumn: "delay_sec"}},
		{"missing value column", sampleCSV, Spec{KeyColumn: "segment_id", ValueColumn: "nope"}},
		{"missing time column", sampleCSV, Spec{KeyColumn: "segment_id", ValueColumn: "delay_sec", TimeColumn: "nope"}},
		{"no spec", sampleCSV, Spec{}},
		{"empty input", "", good},
		{"bad key", "segment_id,delay_sec\nx,1\n", good},
		{"bad value", "segment_id,delay_sec\n1,x\n", good},
		{"bad time", "segment_id,delay_sec,time_sec\n1,2,x\n",
			Spec{KeyColumn: "segment_id", ValueColumn: "delay_sec", TimeColumn: "time_sec"}},
		{"ragged row", "segment_id,delay_sec\n1,2,3\n", good},
		{"negative min samples", sampleCSV, Spec{KeyColumn: "segment_id", ValueColumn: "delay_sec", MinSamples: -1}},
	}
	for _, c := range cases {
		if _, err := ReadGroups(strings.NewReader(c.csv), c.spec); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestLearnGroupsAndRead(t *testing.T) {
	tuples, err := Read(strings.NewReader(sampleCSV), Spec{
		KeyColumn:   "segment_id",
		ValueColumn: "delay_sec",
		TimeColumn:  "time_sec",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("tuples = %d", len(tuples))
	}
	lt := tuples[0]
	if lt.Key != 19 || lt.Field.N != 3 || lt.Time != 51 {
		t.Errorf("tuple = %+v", lt)
	}
	nd, ok := lt.Field.Dist.(dist.Normal)
	if !ok {
		t.Fatalf("learned %T, want Normal", lt.Field.Dist)
	}
	if math.Abs(nd.Mu-63.6666666667) > 1e-6 {
		t.Errorf("learned mean = %g", nd.Mu)
	}
}

func TestReadWithCustomLearner(t *testing.T) {
	tuples, err := Read(strings.NewReader(sampleCSV), Spec{
		KeyColumn:   "segment_id",
		ValueColumn: "delay_sec",
		Learner:     learn.EmpiricalLearner{},
		MinSamples:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only segment 20 has ≥ 4 observations.
	if len(tuples) != 1 || tuples[0].Key != 20 {
		t.Fatalf("tuples = %+v", tuples)
	}
	if _, ok := tuples[0].Field.Dist.(*dist.Discrete); !ok {
		t.Errorf("learned %T, want *dist.Discrete", tuples[0].Field.Dist)
	}
}

func TestMinSamplesOne(t *testing.T) {
	groups, err := ReadGroups(strings.NewReader(sampleCSV), Spec{
		KeyColumn:   "segment_id",
		ValueColumn: "delay_sec",
		MinSamples:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 with MinSamples=1", len(groups))
	}
}
