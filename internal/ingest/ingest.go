// Package ingest turns raw-observation CSV files into learned probabilistic
// fields — the batch counterpart of Example 1's pipeline: rows like
// Figure 1's (segment_id, ..., delay) are grouped by a key column, each
// group's value column becomes an iid sample, and a learner fits a
// distribution whose sample size rides along for accuracy tracking.
//
// The CSV must have a header row; columns are referenced by header name
// (case-insensitive). cmd/datagen produces compatible files.
//
// Determinism: the pipeline is a pure function of the CSV bytes and the
// Spec — groups are emitted sorted by key and learners see observations in
// file order, so repeated Reads yield identical tuples in identical order.
// The durability layer relies on this: a journaled LOAD replays as the
// same per-tuple insert sequence the original run produced.
package ingest

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/learn"
	"repro/internal/randvar"
)

// Spec describes how to interpret a raw-observation CSV.
type Spec struct {
	// KeyColumn groups rows (e.g. "segment_id"). Required.
	KeyColumn string
	// ValueColumn holds the observation (e.g. "delay_sec"). Required.
	ValueColumn string
	// TimeColumn optionally holds a timestamp in seconds; the group
	// records the latest.
	TimeColumn string
	// Learner fits each group's distribution; defaults to Gaussian MLE.
	Learner learn.Learner
	// MinSamples skips groups with fewer observations (default 2 — one
	// observation cannot carry accuracy information).
	MinSamples int
}

func (s Spec) normalize() (Spec, error) {
	if s.KeyColumn == "" || s.ValueColumn == "" {
		return s, errors.New("ingest: KeyColumn and ValueColumn are required")
	}
	if s.Learner == nil {
		s.Learner = learn.GaussianLearner{}
	}
	if s.MinSamples == 0 {
		s.MinSamples = 2
	}
	if s.MinSamples < 1 {
		return s, fmt.Errorf("ingest: MinSamples %d must be ≥ 1", s.MinSamples)
	}
	return s, nil
}

// Group is the raw sample of one key.
type Group struct {
	Key      float64
	Sample   *learn.Sample
	LastTime int64 // latest TimeColumn value, 0 when no TimeColumn
}

// ReadGroups parses the CSV and groups the value column by key. Groups
// smaller than MinSamples are dropped. The result is sorted by key.
func ReadGroups(r io.Reader, spec Spec) ([]Group, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: reading header: %w", err)
	}
	keyIdx, valIdx, timeIdx := -1, -1, -1
	for i, h := range header {
		switch {
		case strings.EqualFold(strings.TrimSpace(h), spec.KeyColumn):
			keyIdx = i
		case strings.EqualFold(strings.TrimSpace(h), spec.ValueColumn):
			valIdx = i
		case spec.TimeColumn != "" && strings.EqualFold(strings.TrimSpace(h), spec.TimeColumn):
			timeIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("ingest: key column %q not in header %v", spec.KeyColumn, header)
	}
	if valIdx < 0 {
		return nil, fmt.Errorf("ingest: value column %q not in header %v", spec.ValueColumn, header)
	}
	if spec.TimeColumn != "" && timeIdx < 0 {
		return nil, fmt.Errorf("ingest: time column %q not in header %v", spec.TimeColumn, header)
	}
	groups := make(map[float64]*Group)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		key, err := strconv.ParseFloat(strings.TrimSpace(rec[keyIdx]), 64)
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: bad key %q", line, rec[keyIdx])
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rec[valIdx]), 64)
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: bad value %q", line, rec[valIdx])
		}
		g, ok := groups[key]
		if !ok {
			g = &Group{Key: key, Sample: learn.NewSample(nil)}
			groups[key] = g
		}
		g.Sample.Add(val)
		if timeIdx >= 0 {
			ts, err := strconv.ParseFloat(strings.TrimSpace(rec[timeIdx]), 64)
			if err != nil {
				return nil, fmt.Errorf("ingest: line %d: bad time %q", line, rec[timeIdx])
			}
			if int64(ts) > g.LastTime {
				g.LastTime = int64(ts)
			}
		}
	}
	out := make([]Group, 0, len(groups))
	for _, g := range groups {
		if g.Sample.Size() >= spec.MinSamples {
			out = append(out, *g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// LearnedTuple is one (key, learned field) pair ready to insert.
type LearnedTuple struct {
	Key   float64
	Field randvar.Field
	Time  int64
}

// LearnGroups fits the spec's learner to every group.
func LearnGroups(groups []Group, spec Spec) ([]LearnedTuple, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	out := make([]LearnedTuple, 0, len(groups))
	for _, g := range groups {
		d, err := spec.Learner.Learn(g.Sample)
		if err != nil {
			return nil, fmt.Errorf("ingest: learning key %g: %w", g.Key, err)
		}
		out = append(out, LearnedTuple{
			Key:   g.Key,
			Field: randvar.Field{Dist: d, N: g.Sample.Size()},
			Time:  g.LastTime,
		})
	}
	return out, nil
}

// Read is the one-call pipeline: parse, group, and learn.
func Read(r io.Reader, spec Spec) ([]LearnedTuple, error) {
	groups, err := ReadGroups(r, spec)
	if err != nil {
		return nil, err
	}
	return LearnGroups(groups, spec)
}
