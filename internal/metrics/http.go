package metrics

// Exposition: Prometheus text format, an http.Handler for the daemon's
// -debug-addr listener, and an expvar bridge. All three read the same
// registry snapshots; none holds the registry lock while writing to the
// network.

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, plain samples for counters and
// gauges, and cumulative le-labeled buckets plus _sum and _count series for
// histograms.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
		}
		// Prometheus has no separate float-gauge type; both expose as gauge.
		typ := e.kind.String()
		if e.kind == kindFloatGauge {
			typ = "gauge"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, typ)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.g.Value())
		case kindFloatGauge:
			fmt.Fprintf(bw, "%s %g\n", e.name, e.fg.Value())
		case kindHistogram:
			s := e.h.Snapshot()
			cum := uint64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, formatBound(b), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(bw, "%s_sum %g\n", e.name, s.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", e.name, s.Count)
		}
	}
	return bw.Flush()
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as Prometheus text —
// mounted at /debug/metrics by the daemon's -debug-addr listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// PublishExpvar publishes the registry as a single expvar variable (a JSON
// Snapshot), so /debug/vars carries the same series as /debug/metrics.
// Call at most once per (name, process); expvar panics on duplicates, so
// the helper guards with Get.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
