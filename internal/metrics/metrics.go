// Package metrics is the engine's stdlib-only observability substrate: a
// registry of named counters, gauges, and fixed-bucket histograms whose hot
// paths are single atomic operations — no locks, no allocations, no maps.
//
// The design constraints come from the engine it instruments:
//
//   - Observation-only. Nothing here touches engine state or RNG streams,
//     so instrumented code remains bit-deterministic at any worker count
//     (verified by the determinism and crash-recovery suites running with
//     metrics enabled).
//   - Allocation-free on the hot path. Counter.Add and Gauge.Set are one
//     atomic op; Histogram.Observe is a branch-free bucket search plus two
//     atomic adds and a CAS loop for the sum. The throughput paths
//     (query push, WAL append, bootstrap resampling) call these per tuple.
//   - Stdlib only. Exposition is Prometheus text format (see WriteProm),
//     expvar, and a JSON snapshot for the METRICS protocol command —
//     no third-party client library.
//
// Metrics are registered once (typically in package-level var blocks) and
// then shared; registering the same name twice returns the same metric, so
// independent packages can safely name their instruments at init time.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (occupancy, queue depth, size).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64-valued gauge stored as atomic bits — for
// quantities like replication lag seconds where integer resolution is too
// coarse. Same 0-alloc hot path as Gauge.
type FloatGauge struct {
	v atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket cumulative histogram of float64 observations
// (latencies in seconds, interval widths, byte counts). Bucket bounds are
// immutable after construction; an implicit +Inf bucket catches the tail.
type Histogram struct {
	bounds []float64 // ascending upper bounds (inclusive: v ≤ bound)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Branchy linear scan beats binary search for the small (≤ ~16) bucket
	// counts used here, and keeps the path allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in seconds — the idiom for
// latency instrumentation: defer h.ObserveSince(time.Now()) or an explicit
// pair around the timed region.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram for exposition.
// Counts has len(Bounds)+1 entries; the last is the +Inf bucket. Counts are
// per-bucket (not cumulative); WriteProm accumulates for the `le` series.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. The copy is not atomic
// across buckets (observations may land mid-copy), which is fine for
// monitoring: every observation is eventually visible.
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: h.bounds, // immutable; shared
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// DefBuckets are the default latency buckets in seconds, spanning 1µs to
// ~10s — wide enough for both in-memory pushes and fsync-bound appends.
var DefBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	2.5e-3, 10e-3, 50e-3, 250e-3, 1, 10,
}

// ExpBuckets returns n buckets starting at start, each factor× the last.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n buckets start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("metrics: LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindFloatGauge
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindFloatGauge:
		return "float gauge"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

type entry struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fg   *FloatGauge
}

// Registry holds named metrics. Registration is idempotent by name; a name
// collision across kinds panics (a programming error, caught at init).
// The zero Registry is not usable; call NewRegistry or use Default.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry every instrumented package
// registers into; the daemon's /debug/metrics page and the METRICS
// protocol command expose it.
var Default = NewRegistry()

func (r *Registry) lookup(name string, k kind) *entry {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e != nil {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, e.kind, k))
		}
		return e
	}
	return nil
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	if e := r.lookup(name, kindCounter); e != nil {
		return e.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[name]; e != nil {
		if e.kind != kindCounter {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as counter", name, e.kind))
		}
		return e.c
	}
	c := &Counter{}
	r.entries[name] = &entry{name: name, help: help, kind: kindCounter, c: c}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	if e := r.lookup(name, kindGauge); e != nil {
		return e.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[name]; e != nil {
		if e.kind != kindGauge {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as gauge", name, e.kind))
		}
		return e.g
	}
	g := &Gauge{}
	r.entries[name] = &entry{name: name, help: help, kind: kindGauge, g: g}
	return g
}

// FloatGauge returns the float gauge registered under name, creating it
// if new.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if e := r.lookup(name, kindFloatGauge); e != nil {
		return e.fg
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[name]; e != nil {
		if e.kind != kindFloatGauge {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as float gauge", name, e.kind))
		}
		return e.fg
	}
	fg := &FloatGauge{}
	r.entries[name] = &entry{name: name, help: help, kind: kindFloatGauge, fg: fg}
	return fg
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if new (bounds of an existing histogram win).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if e := r.lookup(name, kindHistogram); e != nil {
		return e.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[name]; e != nil {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as histogram", name, e.kind))
		}
		return e.h
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := newHistogram(bounds)
	r.entries[name] = &entry{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

// sorted returns the entries in name order (a fresh slice; safe to iterate
// without the lock).
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot is a point-in-time copy of a registry, JSON-encodable for the
// METRICS protocol command. Maps marshal with sorted keys, so the wire form
// is deterministic for deterministic values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// FloatGauges is omitted while empty so snapshots from processes without
	// float gauges keep their pre-existing wire shape.
	FloatGauges map[string]float64 `json:"float_gauges,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			out.Counters[e.name] = e.c.Value()
		case kindGauge:
			out.Gauges[e.name] = e.g.Value()
		case kindHistogram:
			out.Histograms[e.name] = e.h.Snapshot()
		case kindFloatGauge:
			if out.FloatGauges == nil {
				out.FloatGauges = make(map[string]float64)
			}
			out.FloatGauges[e.name] = e.fg.Value()
		}
	}
	return out
}
