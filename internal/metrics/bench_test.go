package metrics

import (
	"testing"
	"time"
)

// The registry microbenchmarks quantify the per-event cost the
// instrumentation adds to the engine's hot paths (recorded in BENCH_3.json
// alongside the instrumented Fig 5(c) reruns).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DefBuckets)
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter("c"+string(rune('a'+i))+"_total", "").Inc()
	}
	r.Histogram("h_seconds", "", DefBuckets).Observe(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
