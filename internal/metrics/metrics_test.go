package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", ""); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// NaN is dropped; 0.5 and 1 land in ≤1; 1.5 in ≤2; 3 in ≤4; 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.5+3+100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hc", "", []float64{0.5})
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*each {
		t.Fatalf("count = %d, want %d", got, goroutines*each)
	}
	if got := h.Sum(); math.Abs(got-0.25*goroutines*each) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, 0.25*goroutines*each)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 0.5, 3)
	if want := []float64{0, 0.5, 1}; !equalF(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Counter("a_total", "").Add(1)
	r.Gauge("g", "").Set(-3)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	j1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", j1, j2)
	}
	var s Snapshot
	if err := json.Unmarshal(j1, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a_total"] != 1 || s.Counters["b_total"] != 2 || s.Gauges["g"] != -3 {
		t.Fatalf("roundtrip snapshot mismatch: %+v", s)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "total requests").Add(3)
	r.Gauge("depth", "queue depth").Set(2)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 3",
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Metric families appear in name order for a stable page.
	if strings.Index(out, "depth") > strings.Index(out, "lat_seconds") ||
		strings.Index(out, "lat_seconds") > strings.Index(out, "requests_total") {
		t.Fatalf("prom output not name-sorted:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("handler output missing sample:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "").Inc()
	r.PublishExpvar("metrics_test_registry")
	r.PublishExpvar("metrics_test_registry") // second call must not panic
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	fg := r.FloatGauge("test_lag_seconds", "replication lag")
	if v := fg.Value(); v != 0 {
		t.Fatalf("zero value = %g", v)
	}
	fg.Set(0.25)
	if v := fg.Value(); v != 0.25 {
		t.Fatalf("Value = %g, want 0.25", v)
	}
	if again := r.FloatGauge("test_lag_seconds", ""); again != fg {
		t.Fatal("re-registration returned a different gauge")
	}
	snap := r.Snapshot()
	if snap.FloatGauges["test_lag_seconds"] != 0.25 {
		t.Fatalf("snapshot float gauges = %v", snap.FloatGauges)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE test_lag_seconds gauge\n") ||
		!strings.Contains(out, "test_lag_seconds 0.25\n") {
		t.Fatalf("prometheus exposition missing float gauge:\n%s", out)
	}
}

func TestSnapshotOmitsEmptyFloatGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Inc()
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "float_gauges") {
		t.Fatalf("empty float gauge map must be omitted: %s", b)
	}
}
