package plan

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sql"
)

func parse(t *testing.T, query string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return stmt
}

func TestAnalyzeVerdicts(t *testing.T) {
	cases := []struct {
		sql       string
		shareable bool
		reason    string // substring of Reason when not shareable
	}{
		{"SELECT AVG(delay) FROM traffic WINDOW 4 ROWS", true, ""},
		{"SELECT AVG(delay) AS a, MAX(delay2) AS m FROM traffic WINDOW 4 ROWS", true, ""},
		{"SELECT AVG(delay) FROM traffic WHERE delay > 50 WINDOW 4 ROWS", true, ""},
		{"SELECT AVG(delay) FROM traffic WHERE PROB(delay > 50) >= 0.8 WINDOW 4 ROWS", true, ""},
		{"SELECT AVG(delay) FROM traffic WHERE MTEST(delay, '>', 50, 0.05) WINDOW 4 ROWS", true, ""},
		{"SELECT AVG(delay) FROM traffic WHERE PTEST(delay > 50, 0.5, 0.05) WINDOW 4 ROWS", true, ""},
		{"SELECT AVG(delay) FROM traffic WHERE delay > 50 AND road_id = 1 WINDOW 4 ROWS", true, ""},

		{"SELECT delay FROM traffic", false, "no window state"},
		{"SELECT delay FROM traffic WHERE delay > 50", false, "no window state"},
		{"SELECT AVG(delay) FROM traffic", false, "no WINDOW clause"},
		{"SELECT AVG(delay) FROM traffic WINDOW 10 SECONDS", false, "time windows"},
		{"SELECT road_id, AVG(delay) FROM traffic GROUP BY road_id WINDOW 4 ROWS", false, "per-key"},
		{"SELECT AVG(d) FROM a JOIN b ON x = y WINDOW 4 ROWS", false, "join"},
		// delay > delay2 falls back to Monte Carlo over the per-query RNG.
		{"SELECT AVG(delay) FROM traffic WHERE delay > delay2 WINDOW 4 ROWS", false, "randomness"},
		{"SELECT AVG(delay) FROM traffic WHERE delay + 1 > 50 WINDOW 4 ROWS", false, "randomness"},
	}
	for _, c := range cases {
		d := Analyze(parse(t, c.sql), "analytical")
		if d.Shareable != c.shareable {
			t.Errorf("Analyze(%q).Shareable = %v, want %v (reason %q)", c.sql, d.Shareable, c.shareable, d.Reason)
			continue
		}
		if !c.shareable && !strings.Contains(d.Reason, c.reason) {
			t.Errorf("Analyze(%q).Reason = %q, want substring %q", c.sql, d.Reason, c.reason)
		}
	}
	if d := Analyze(nil, "analytical"); d.Shareable || !strings.Contains(d.Reason, "nil") {
		t.Errorf("Analyze(nil) = %+v", d)
	}
}

func TestFilterShareable(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"delay > 50", true},
		{"50 > delay", true},
		{"delay = -3", true},
		{"NOT delay > 50", true},
		{"delay > 50 OR delay < 10", true},
		{"PROB(delay > 50) >= 0.8", true},
		{"0.8 <= PROB(delay > 50)", true},
		{"MTEST(delay, '>', 50, 0.05)", true},
		{"MDTEST(delay, delay2, '>', 0, 0.05)", true},
		{"KSTEST(delay, delay2, 0.05)", true},
		{"PTEST(delay > 50, 0.5, 0.05)", true},

		{"delay > delay2", false},
		{"delay + 1 > 50", false},
		{"PROB(delay > delay2) >= 0.8", false},
		{"PTEST(PROB(delay > 50) >= 0.5, 0.5, 0.05)", false},
		{"delay > 50 AND delay > delay2", false},
	}
	for _, c := range cases {
		e, err := sql.ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if got := FilterShareable(e); got != c.want {
			t.Errorf("FilterShareable(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
	if !FilterShareable(nil) {
		t.Error("FilterShareable(nil) = false, want true (no filter)")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Stream: "traffic", Rows: 4, Backend: "analytical"}
	if got := k.String(); got != "stream=traffic rows=4 backend=analytical" {
		t.Errorf("Key.String() = %q", got)
	}
	k.Filter = "(delay > 50)"
	k.Sig = "a:1:AVG"
	s := k.String()
	for _, want := range []string{`filter="(delay > 50)"`, "aggs=a:1:AVG"} {
		if !strings.Contains(s, want) {
			t.Errorf("Key.String() = %q, missing %q", s, want)
		}
	}
}

func TestRegistryAcquireRelease(t *testing.T) {
	r := NewRegistry()
	k := Key{Stream: "s", Rows: 4, Backend: "analytical"}
	type group struct{ id int }

	accept := func(any) bool { return true }
	g1, joined := r.Acquire(k, accept, func() any { return &group{1} })
	if joined || g1.(*group).id != 1 {
		t.Fatalf("first Acquire: joined=%v g=%+v", joined, g1)
	}
	g2, joined := r.Acquire(k, accept, func() any { return &group{2} })
	if !joined || g2 != g1 {
		t.Fatalf("second Acquire should join the first group")
	}
	// A rejecting join predicate (content mismatch after recovery) forks a
	// second group under the same key.
	g3, joined := r.Acquire(k, func(any) bool { return false }, func() any { return &group{3} })
	if joined || g3.(*group).id != 3 {
		t.Fatalf("rejected join should create: joined=%v g=%+v", joined, g3)
	}
	if r.Groups() != 2 {
		t.Fatalf("Groups() = %d, want 2", r.Groups())
	}
	if r.Hits() != 1 || r.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", r.Hits(), r.Misses())
	}
	r.Release(k, g3)
	r.Release(k, g1)
	if r.Groups() != 0 {
		t.Fatalf("Groups() after releases = %d, want 0", r.Groups())
	}
	// Releasing an unknown group is a no-op.
	r.Release(k, g1)
}

func TestStageTimer(t *testing.T) {
	var st StageTimer
	if st.Enabled() {
		t.Fatal("timer enabled before Enable")
	}
	// Observations before Enable are still recorded (callers gate on
	// Enabled themselves); what matters is the snapshot shape.
	st.Enable()
	if !st.Enabled() {
		t.Fatal("timer not enabled after Enable")
	}
	st.Observe(StageFilter, 5*time.Nanosecond)
	st.Observe(StageFilter, 7*time.Nanosecond)
	st.Observe(StageAccuracy, time.Microsecond)
	snap := st.Snapshot()
	if len(snap) != int(NumStages) {
		t.Fatalf("snapshot has %d stages, want %d", len(snap), NumStages)
	}
	if snap[StageFilter].Count != 2 || snap[StageFilter].Nanos != 12 {
		t.Errorf("filter stage = %+v, want 2 runs / 12 ns", snap[StageFilter])
	}
	if snap[StageWindow].Count != 0 {
		t.Errorf("window stage = %+v, want empty", snap[StageWindow])
	}
	if snap[StageAccuracy].Nanos != 1000 {
		t.Errorf("accuracy stage = %+v, want 1000 ns", snap[StageAccuracy])
	}
	for s := StageFilter; s < NumStages; s++ {
		if strings.HasPrefix(s.String(), "Stage(") {
			t.Errorf("stage %d has no name", s)
		}
	}
}
