// Package plan is the engine's multi-query planner pass. Production load
// for an accuracy-aware stream database is thousands of continuous queries
// over a handful of streams, and most of them differ only in labels or in
// which aggregates they request — so the expensive per-push state (the
// learned window buffer, the closed-form moment scan, the accuracy
// intervals) can be computed once per (stream, filter, window, backend)
// equivalence class and reused by every query in the class.
//
// The package deliberately splits three concerns, in the style of the
// planner/executor/annotations split of datalog engines:
//
//   - Analyze is the pure, static planner pass: it inspects a parsed
//     statement and decides whether the query's window state is shareable
//     at all, returning a Decision with a human-readable reason when it is
//     not. The analysis is conservative: a query is shareable only when
//     every part of its pre-aggregation pipeline is provably free of
//     per-query randomness, so sharing can never change a single bit of
//     output.
//   - Registry is the executor-side shared-state table: refcount-free
//     (the engine owns membership), keyed by Key, holding one opaque
//     group state per equivalence class with content-equality admission
//     delegated to the caller.
//   - StageTimer collects per-stage wall-clock timing for EXPLAIN
//     annotations, atomically gated so the disabled fast path costs one
//     atomic load per stage.
//
// The engine half — window aliasing, the per-sequence emission cache,
// fused aggregate evaluation — lives in internal/core (plan_shared.go),
// which consumes this package.
package plan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sql"
)

// Key identifies one shared-state equivalence class: every query with the
// same key consumes the same stream prefix through the same filter into a
// window of the same shape under the same accuracy backend, so the window
// contents — and everything derived from them without per-query randomness
// — are identical across the class.
type Key struct {
	// Stream is the canonical (lower-cased) source stream name.
	Stream string
	// Filter is the canonical rendering of the WHERE clause ("" when
	// absent). sql.Expr.String() parenthesizes nested boolean structure,
	// so equal strings imply equal filter semantics.
	Filter string
	// Rows is the count-window size.
	Rows int
	// Backend is the effective accuracy backend the query runs with
	// (engine default or BACKEND override).
	Backend string
	// Sig is the aggregate-plan signature for backends whose window state
	// depends on the aggregate list (the sketch backend tracks one moment
	// sketch per aggregate item); empty for columnar windows, which hold
	// every schema column regardless of which aggregates read them.
	Sig string
}

func (k Key) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream=%s rows=%d backend=%s", k.Stream, k.Rows, k.Backend)
	if k.Filter != "" {
		fmt.Fprintf(&b, " filter=%q", k.Filter)
	}
	if k.Sig != "" {
		fmt.Fprintf(&b, " aggs=%s", k.Sig)
	}
	return b.String()
}

// Decision is the outcome of the static shareability analysis.
type Decision struct {
	// Shareable reports whether the query's window state may join a
	// shared-state group.
	Shareable bool
	// Reason explains a false Shareable in EXPLAIN output.
	Reason string
}

func no(reason string) Decision { return Decision{Reason: reason} }

// Analyze decides whether a parsed statement's window state is shareable.
// backend is the effective accuracy backend string (the engine default or
// the statement's BACKEND override, lower-cased as core.AccuracyMethod
// prints it). The analysis is static and conservative: only ungrouped
// count-windowed aggregates whose filter is provably free of per-query
// randomness qualify, because those are exactly the queries whose window
// contents and filter outcomes are a pure function of (stream history,
// key) — sharing them cannot change any output bit.
func Analyze(stmt *sql.SelectStmt, backend string) Decision {
	if stmt == nil {
		return no("nil statement")
	}
	if stmt.Join != nil {
		return no("join queries keep per-query symmetric windows")
	}
	if stmt.GroupBy != "" {
		return no("GROUP BY windows are per-key")
	}
	if !hasAggregate(stmt) {
		return no("scalar query has no window state")
	}
	if stmt.Window == nil {
		return no("no WINDOW clause")
	}
	if stmt.Window.Seconds > 0 {
		return no("time windows use per-query row buffers")
	}
	if !FilterShareable(stmt.Where) {
		return no("filter may consume per-query randomness")
	}
	return Decision{Shareable: true}
}

// hasAggregate reports whether any select item is an aggregate call.
func hasAggregate(stmt *sql.SelectStmt) bool {
	for _, it := range stmt.Items {
		if call, ok := it.Expr.(*sql.CallExpr); ok {
			switch call.Func {
			case "AVG", "SUM", "COUNT", "MIN", "MAX":
				return true
			}
		}
	}
	return false
}

// FilterShareable reports whether a WHERE expression is statically free of
// per-query randomness, i.e. its outcome for a given tuple is identical
// for every query evaluating it. Column-vs-constant comparisons compile to
// closed-form probability integrals, PROB threshold forms reuse them, and
// the significance predicates (MTEST, MDTEST, KSTEST, and PTEST over a
// closed-form comparison) are deterministic hypothesis tests — none touch
// the query's Monte Carlo evaluator. Everything else (general
// expression-vs-expression comparisons can fall back to Monte Carlo over
// the per-query RNG stream) is conservatively unshareable.
func FilterShareable(e sql.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sql.LogicalExpr:
		return FilterShareable(x.L) && FilterShareable(x.R)
	case *sql.NotExpr:
		return FilterShareable(x.X)
	case *sql.CmpExpr:
		return cmpShareable(x)
	case *sql.CallExpr:
		return callShareable(x)
	}
	return false
}

// cmpShareable covers the comparison forms that compile to closed-form
// probability integrals: column-vs-constant (either order) and
// PROB(column cmp constant) against a constant threshold (either order).
func cmpShareable(c *sql.CmpExpr) bool {
	if (isColumn(c.L) && isConst(c.R)) || (isConst(c.L) && isColumn(c.R)) {
		return true
	}
	if isProbCall(c.L) && isConst(c.R) {
		return true
	}
	if isConst(c.L) && isProbCall(c.R) {
		return true
	}
	return false
}

// callShareable covers the deterministic hypothesis-test predicates.
func callShareable(c *sql.CallExpr) bool {
	switch c.Func {
	case "MTEST", "MDTEST", "KSTEST":
		return true
	case "PTEST":
		if len(c.Args) == 0 {
			return false
		}
		inner, ok := c.Args[0].(*sql.CmpExpr)
		return ok && cmpShareable(inner) && !isProbCall(inner.L) && !isProbCall(inner.R)
	}
	return false
}

func isColumn(e sql.Expr) bool {
	_, ok := e.(*sql.ColumnRef)
	return ok
}

// isConst matches the constant forms the predicate compiler accepts: a
// number literal, possibly under unary minus.
func isConst(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.NumberLit:
		return true
	case *sql.UnaryExpr:
		if x.Op != "-" {
			return false
		}
		_, ok := x.X.(*sql.NumberLit)
		return ok
	}
	return false
}

// isProbCall matches PROB(column cmp constant).
func isProbCall(e sql.Expr) bool {
	call, ok := e.(*sql.CallExpr)
	if !ok || call.Func != "PROB" || len(call.Args) != 1 {
		return false
	}
	inner, ok := call.Args[0].(*sql.CmpExpr)
	if !ok {
		return false
	}
	return (isColumn(inner.L) && isConst(inner.R)) || (isConst(inner.L) && isColumn(inner.R))
}

// Registry is the shared-state table: one entry list per Key, each entry
// an opaque group state owned by the engine. Admission is two-phase — key
// equality selects the list, then the caller's join predicate checks
// content equality (after crash recovery, queries re-merge only when their
// restored windows hold identical contents), so a key can momentarily hold
// several groups that converge as the stream advances.
//
// Locking: Acquire and Release run under the engine's control plane
// (Exclusive or single-threaded registration), so the mutex only guards
// against concurrent read-side introspection (EXPLAIN, stats).
type Registry struct {
	mu     sync.Mutex
	groups map[Key][]any

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[Key][]any)}
}

// Acquire returns the first group under k accepted by join, or — when none
// is — a fresh group built by create. The boolean reports whether an
// existing group was joined.
func (r *Registry) Acquire(k Key, join func(state any) bool, create func() any) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.groups[k] {
		if join(g) {
			r.hits.Add(1)
			return g, true
		}
	}
	r.misses.Add(1)
	g := create()
	r.groups[k] = append(r.groups[k], g)
	return g, false
}

// Release removes a group whose last member detached.
func (r *Registry) Release(k Key, state any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.groups[k]
	for i, g := range list {
		if g == state {
			r.groups[k] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(r.groups[k]) == 0 {
		delete(r.groups, k)
	}
}

// Groups returns the number of live shared-state groups.
func (r *Registry) Groups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, list := range r.groups {
		n += len(list)
	}
	return n
}

// Hits returns how many Acquire calls joined an existing group.
func (r *Registry) Hits() uint64 { return r.hits.Load() }

// Misses returns how many Acquire calls created a new group.
func (r *Registry) Misses() uint64 { return r.misses.Load() }

// Stage names one instrumented phase of the per-push pipeline.
type Stage int

const (
	// StageFilter is WHERE evaluation.
	StageFilter Stage = iota
	// StageWindow is window maintenance (push/evict).
	StageWindow
	// StageAggregate is aggregate evaluation over the window.
	StageAggregate
	// StageAccuracy is accuracy-information computation.
	StageAccuracy
	// NumStages bounds the stage enumeration.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageFilter:
		return "filter"
	case StageWindow:
		return "window"
	case StageAggregate:
		return "aggregate"
	case StageAccuracy:
		return "accuracy"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// StageStat is one stage's cumulative observation.
type StageStat struct {
	Count uint64
	Nanos uint64
}

// StageTimer accumulates per-stage wall time. Collection is off until
// Enable (the first EXPLAIN … TIMING), so steady-state pushes pay one
// atomic load per stage and take no timestamps. Timing is observational
// only — it never feeds back into results, so enabling it cannot perturb
// determinism.
type StageTimer struct {
	enabled atomic.Bool
	count   [NumStages]atomic.Uint64
	nanos   [NumStages]atomic.Uint64
}

// Enable turns collection on.
func (t *StageTimer) Enable() { t.enabled.Store(true) }

// Enabled reports whether collection is on.
func (t *StageTimer) Enabled() bool { return t.enabled.Load() }

// Observe records one stage execution.
func (t *StageTimer) Observe(s Stage, d time.Duration) {
	if s < 0 || s >= NumStages {
		return
	}
	t.count[s].Add(1)
	t.nanos[s].Add(uint64(d.Nanoseconds()))
}

// Snapshot returns the cumulative per-stage observations.
func (t *StageTimer) Snapshot() [NumStages]StageStat {
	var out [NumStages]StageStat
	for s := range out {
		out[s] = StageStat{Count: t.count[s].Load(), Nanos: t.nanos[s].Load()}
	}
	return out
}
