package checkpoint

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestSaveFsyncFailureKeepsPrevious injects an fsync failure into the
// atomic-save path and checks that Save reports it, leaves no half-written
// checkpoint under a valid name, and LoadLatest still returns the previous
// snapshot.
func TestSaveFsyncFailureKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil)
	m, err := NewManagerFS(dir, ifs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := Capture(eng, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snap1); err != nil {
		t.Fatalf("healthy save: %v", err)
	}

	// Every fsync on the temp file now fails.
	ifs.AddRule(fault.Rule{Op: fault.OpSync, Path: "tmp-", Err: fault.ErrFsync})
	snap2, err := Capture(eng, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snap2); !errors.Is(err, syscall.EIO) {
		t.Fatalf("save over failed fsync: got %v, want EIO", err)
	}

	got, err := m.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got == nil || got.LSN != 10 {
		t.Fatalf("LoadLatest after failed save = %+v, want the LSN-10 snapshot", got)
	}
}

// TestSaveENOSPCTornTemp tears the temp-file write (half the bytes land)
// and checks the failed save never becomes loadable.
func TestSaveENOSPCTornTemp(t *testing.T) {
	dir := t.TempDir()
	ifs := fault.NewInjectFS(nil, fault.Rule{
		Op: fault.OpWrite, Path: "tmp-", Torn: true, Err: fault.ErrNoSpace,
	})
	m, err := NewManagerFS(dir, ifs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Capture(eng, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snap); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save on full disk: got %v, want ENOSPC", err)
	}
	got, err := m.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got != nil {
		t.Fatalf("LoadLatest after torn save = %+v, want nil", got)
	}

	// Once the disk heals the manager saves fine.
	ifs.Clear()
	if err := m.Save(snap); err != nil {
		t.Fatalf("save after healing: %v", err)
	}
	got, err = m.LoadLatest()
	if err != nil || got == nil || got.LSN != 5 {
		t.Fatalf("LoadLatest after healing = %+v, %v", got, err)
	}
}

// TestDegradeRoundTrip checks the shed level survives capture → restore.
func TestDegradeRoundTrip(t *testing.T) {
	eng, err := core.NewEngine(core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetDegradeLevel(2)
	snap, err := Capture(eng, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Degrade != 2 {
		t.Fatalf("captured degrade = %d, want 2", snap.Degrade)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := core.NewEngine(core.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(eng2, back); err != nil {
		t.Fatal(err)
	}
	if eng2.DegradeLevel() != 2 {
		t.Fatalf("restored degrade = %d, want 2", eng2.DegradeLevel())
	}
}
