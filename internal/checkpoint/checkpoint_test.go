package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

func testConfig() core.Config {
	return core.Config{Level: 0.9, Method: core.AccuracyBootstrap, Seed: 7, Workers: 2}
}

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := stream.NewSchema("temps",
		stream.Column{Name: "key"},
		stream.Column{Name: "val", Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		t.Fatal(err)
	}
	return eng
}

func pushOne(t *testing.T, eng *core.Engine, q *core.Query, key, mu, sigma2 float64, n int) []core.Result {
	t.Helper()
	nd, err := dist.NewNormal(mu, sigma2)
	if err != nil {
		t.Fatal(err)
	}
	tup, err := eng.NewTuple("temps", []randvar.Field{randvar.Det(key), {Dist: nd, N: n}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := q.Push(tup)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// fingerprint renders a result's numeric content with full bit precision
// so "equal" means bit-identical.
func fingerprint(results []core.Result) string {
	var b strings.Builder
	iv := func(p *accuracy.Interval) {
		if p != nil {
			fmt.Fprintf(&b, "[%x,%x@%x]", p.Lo, p.Hi, p.Level)
		}
	}
	for _, r := range results {
		fmt.Fprintf(&b, "seq=%d prob=%x probn=%d unsure=%v |", r.Tuple.Seq, r.Tuple.Prob, r.Tuple.ProbN, r.Unsure)
		for i, f := range r.Tuple.Fields {
			name := r.Tuple.Schema.Columns[i].Name
			fmt.Fprintf(&b, " %s=%x/%x/%d", name, f.Dist.Mean(), f.Dist.Variance(), f.N)
			if info := r.Fields[name]; info != nil {
				m, v := info.Mean, info.Variance
				iv(&m)
				iv(&v)
				for _, bin := range info.Bins {
					fmt.Fprintf(&b, "bin(%x,%x,%x)", bin.Lo, bin.Hi, bin.Estimate)
					ivv := bin.Interval
					iv(&ivv)
				}
			}
		}
		iv(r.TupleProb)
		b.WriteString("\n")
	}
	return b.String()
}

const testSQL = "SELECT AVG(val) FROM temps WINDOW 3 ROWS"

// TestCaptureRestoreEquivalence checkpoints a mid-stream query, restores
// it into a fresh engine, and verifies both produce bit-identical results
// for the same subsequent inserts — including the bootstrap accuracy RNG.
func TestCaptureRestoreEquivalence(t *testing.T) {
	engA := newEngine(t)
	qA, err := engA.Compile(testSQL)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: window partially full, RNGs advanced past their seeds.
	for i := 0; i < 5; i++ {
		pushOne(t, engA, qA, float64(i), 10+float64(i), 2.5, 20+i)
	}

	snap, err := Capture(engA, 42, []QueryDef{{ID: "q1", SQL: qA.SQL(), Query: qA}})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if snap.LSN != 42 || snap.Version != 1 || len(snap.Streams) != 1 || len(snap.Queries) != 1 {
		t.Fatalf("snapshot = %+v, want lsn 42, 1 stream, 1 query", snap)
	}

	// Round-trip through the on-disk encoding to prove serialization is
	// part of the equivalence, not just in-memory copying.
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(engB, snap2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(restored) != 1 || restored[0].ID != "q1" {
		t.Fatalf("restored = %v, want [q1]", restored)
	}
	qB := restored[0].Query
	if engB.Seq() != engA.Seq() {
		t.Fatalf("restored seq %d != captured seq %d", engB.Seq(), engA.Seq())
	}

	for i := 5; i < 12; i++ {
		ra := pushOne(t, engA, qA, float64(i), 10+float64(i), 2.5, 20+i)
		rb := pushOne(t, engB, qB, float64(i), 10+float64(i), 2.5, 20+i)
		if fa, fb := fingerprint(ra), fingerprint(rb); fa != fb {
			t.Fatalf("push %d diverged:\noriginal:  %srestored: %s", i, fa, fb)
		}
	}
	if sa, sb := qA.Stats(), qB.Stats(); sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
}

// TestCaptureRestoreGroupBy exercises per-group window state.
func TestCaptureRestoreGroupBy(t *testing.T) {
	const sql = "SELECT key, AVG(val) FROM temps GROUP BY key WINDOW 2 ROWS"
	engA := newEngine(t)
	qA, err := engA.Compile(sql)
	if err != nil {
		t.Skipf("engine does not compile %q: %v", sql, err)
	}
	for i := 0; i < 6; i++ {
		pushOne(t, engA, qA, float64(i%2), 10+float64(i), 2.0, 15)
	}
	snap, err := Capture(engA, 7, []QueryDef{{ID: "g", SQL: qA.SQL(), Query: qA}})
	if err != nil {
		t.Fatal(err)
	}
	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(engB, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	qB := restored[0].Query
	for i := 6; i < 10; i++ {
		ra := pushOne(t, engA, qA, float64(i%2), 10+float64(i), 2.0, 15)
		rb := pushOne(t, engB, qB, float64(i%2), 10+float64(i), 2.0, 15)
		if fa, fb := fingerprint(ra), fingerprint(rb); fa != fb {
			t.Fatalf("push %d diverged:\noriginal:  %srestored: %s", i, fa, fb)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	snap := &Snapshot{Version: 1, LSN: 9, Seq: 3}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":     data[:4],
		"bad magic": append([]byte("XXXXXXXX"), data[8:]...),
		"bad crc":   flipLastByte(data),
	}
	for name, bad := range cases {
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
	truncated := make([]byte, len(data)-2)
	copy(truncated, data)
	if _, err := Decode(truncated); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: Decode = %v, want ErrCorrupt", err)
	}
}

func flipLastByte(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	out[len(out)-1] ^= 0xff
	return out
}

func TestRestoreRejectsUnknownVersion(t *testing.T) {
	eng, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(eng, &Snapshot{Version: 99}); err == nil {
		t.Fatal("Restore accepted an unknown snapshot version")
	}
	if _, err := Restore(eng, nil); err == nil {
		t.Fatal("Restore accepted a nil snapshot")
	}
}

func TestManagerSaveLoadPrune(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := m.LoadLatest(); err != nil || snap != nil {
		t.Fatalf("LoadLatest on empty dir = (%v, %v), want (nil, nil)", snap, err)
	}
	for _, lsn := range []uint64{10, 20, 30, 40} {
		if err := m.Save(&Snapshot{Version: 1, LSN: lsn, Seq: lsn * 2}); err != nil {
			t.Fatalf("Save(%d): %v", lsn, err)
		}
	}
	files, err := m.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != keepFiles {
		t.Fatalf("%d checkpoint files kept, want %d", len(files), keepFiles)
	}
	snap, err := m.LoadLatest()
	if err != nil || snap == nil || snap.LSN != 40 {
		t.Fatalf("LoadLatest = (%+v, %v), want lsn 40", snap, err)
	}
}

// TestManagerDropAfter covers the rejoin path: checkpoints taken past the
// epoch boundary capture diverged state and must be removed so recovery
// falls back to the last epoch-consistent one.
func TestManagerDropAfter(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, lsn := range []uint64{8, 25} {
		if err := m.Save(&Snapshot{Version: 1, LSN: lsn, Seq: lsn}); err != nil {
			t.Fatalf("Save(%d): %v", lsn, err)
		}
	}
	if err := m.DropAfter(10); err != nil {
		t.Fatalf("DropAfter: %v", err)
	}
	snap, err := m.LoadLatest()
	if err != nil || snap == nil || snap.LSN != 8 {
		t.Fatalf("LoadLatest after DropAfter = (%+v, %v), want lsn 8", snap, err)
	}
	// Boundary is inclusive-keep; dropping everything leaves a loadable nil.
	if err := m.DropAfter(7); err != nil {
		t.Fatalf("DropAfter(7): %v", err)
	}
	if snap, err := m.LoadLatest(); err != nil || snap != nil {
		t.Fatalf("LoadLatest after dropping all = (%+v, %v), want (nil, nil)", snap, err)
	}
	// Epoch fields round-trip through the on-disk encoding.
	save := &Snapshot{Version: 1, LSN: 30, Seq: 30, Epoch: 3,
		EpochHist: []EpochBound{{Epoch: 2, Start: 12}, {Epoch: 3, Start: 21}}}
	if err := m.Save(save); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadLatest()
	if err != nil || got == nil || got.Epoch != 3 || len(got.EpochHist) != 2 || got.EpochHist[1].Start != 21 {
		t.Fatalf("epoch round-trip = (%+v, %v)", got, err)
	}
}

// TestLoadLatestSkipsCorrupt simulates a crash mid-snapshot: the newest
// checkpoint file is garbage, and recovery must fall back to the previous
// valid one.
func TestLoadLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&Snapshot{Version: 1, LSN: 5, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// A half-written "newer" checkpoint under a valid name.
	bad := filepath.Join(dir, "ckpt-00000000000000ff.ck")
	if err := os.WriteFile(bad, []byte("ASDBCKP1 then garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := m.LoadLatest()
	if err != nil || snap == nil || snap.LSN != 5 {
		t.Fatalf("LoadLatest = (%+v, %v), want fallback to lsn 5", snap, err)
	}
	// A stray temp file must also be ignored.
	if err := os.WriteFile(filepath.Join(dir, "tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, err := m.LoadLatest(); err != nil || snap.LSN != 5 {
		t.Fatalf("LoadLatest with stray temp = (%+v, %v), want lsn 5", snap, err)
	}
}

func TestLatestRawRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if raw, lsn, err := m.LatestRaw(); raw != nil || lsn != 0 || err != nil {
		t.Fatalf("empty dir: LatestRaw = (%d bytes, %d, %v), want (nil, 0, nil)", len(raw), lsn, err)
	}
	if err := m.Save(&Snapshot{Version: 1, LSN: 9, Seq: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&Snapshot{Version: 1, LSN: 17, Seq: 8}); err != nil {
		t.Fatal(err)
	}
	// A corrupt "newer" file must be skipped, like LoadLatest does.
	bad := filepath.Join(dir, "ckpt-00000000000000ff.ck")
	if err := os.WriteFile(bad, []byte("ASDBCKP1 then garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, lsn, err := m.LatestRaw()
	if err != nil || lsn != 17 {
		t.Fatalf("LatestRaw = (_, %d, %v), want lsn 17", lsn, err)
	}
	snap, err := Decode(raw)
	if err != nil {
		t.Fatalf("shipped bytes do not decode: %v", err)
	}
	if snap.LSN != 17 || snap.Seq != 8 {
		t.Fatalf("decoded snapshot = LSN %d Seq %d, want 17/8", snap.LSN, snap.Seq)
	}
}
