package checkpoint

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// pushHist pushes a tuple whose probabilistic field is a histogram — a
// slotOther occupant in the columnar window, forcing the snapshot through
// the codec-encoded Other path and the aggregate through the Monte Carlo
// fallback.
func pushHist(t *testing.T, eng *core.Engine, q *core.Query, key float64, counts []int) []core.Result {
	t.Helper()
	h, err := dist.HistogramFromCounts([]float64{0, 10, 20, 30}, counts)
	if err != nil {
		t.Fatal(err)
	}
	tup, err := eng.NewTuple("temps", []randvar.Field{randvar.Det(key), {Dist: h, N: 9}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := q.Push(tup)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestColumnarCheckpointRoundTrip drives a columnar window into a wrapped
// ring with mixed Gaussian and histogram slots, round-trips the snapshot
// through the on-disk encoding, and demands bit-identical pushes after
// restore. It also pins that the snapshot actually uses the columnar form.
func TestColumnarCheckpointRoundTrip(t *testing.T) {
	engA := newEngine(t)
	qA, err := engA.Compile(testSQL)
	if err != nil {
		t.Fatal(err)
	}
	// More pushes than the window holds → the ring has wrapped (head != 0)
	// when captured; every third tuple is a histogram (Other slot).
	for i := 0; i < 8; i++ {
		if i%3 == 2 {
			pushHist(t, engA, qA, float64(i), []int{1 + i, 2, 3})
		} else {
			pushOne(t, engA, qA, float64(i), 10+float64(i), 2.5, 20+i)
		}
	}
	snap, err := Capture(engA, 5, []QueryDef{{ID: "q1", SQL: qA.SQL(), Query: qA}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"col_window"`) {
		t.Fatal("snapshot of a columnar engine does not carry col_window state")
	}
	snap2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(engB, snap2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	qB := restored[0].Query
	for i := 8; i < 15; i++ {
		var ra, rb []core.Result
		if i%3 == 2 {
			ra = pushHist(t, engA, qA, float64(i), []int{1 + i, 2, 3})
			rb = pushHist(t, engB, qB, float64(i), []int{1 + i, 2, 3})
		} else {
			ra = pushOne(t, engA, qA, float64(i), 10+float64(i), 2.5, 20+i)
			rb = pushOne(t, engB, qB, float64(i), 10+float64(i), 2.5, 20+i)
		}
		if fa, fb := fingerprint(ra), fingerprint(rb); fa != fb {
			t.Fatalf("push %d diverged:\noriginal:  %srestored: %s", i, fa, fb)
		}
	}
}

// TestCrossFormRestore proves the snapshot forms interchange: a columnar
// engine's checkpoint restores into a row-window engine (and vice versa)
// with bit-identical subsequent results — upgrades and rollbacks across
// the storage change keep their durability story.
func TestCrossFormRestore(t *testing.T) {
	rowCfg := testConfig()
	rowCfg.RowWindows = true
	for _, dir := range []struct {
		name             string
		fromRow, intoRow bool
	}{
		{"col-to-row", false, true},
		{"row-to-col", true, false},
	} {
		t.Run(dir.name, func(t *testing.T) {
			cfgA, cfgB := testConfig(), testConfig()
			if dir.fromRow {
				cfgA = rowCfg
			}
			if dir.intoRow {
				cfgB = rowCfg
			}
			engA, err := core.NewEngine(cfgA)
			if err != nil {
				t.Fatal(err)
			}
			schema, err := stream.NewSchema("temps",
				stream.Column{Name: "key"},
				stream.Column{Name: "val", Probabilistic: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := engA.RegisterStream(schema); err != nil {
				t.Fatal(err)
			}
			qA, err := engA.Compile(testSQL)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 7; i++ {
				if i%3 == 1 {
					pushHist(t, engA, qA, float64(i), []int{2, 4 + i, 1})
				} else {
					pushOne(t, engA, qA, float64(i), 30+float64(i), 1.5, 12+i)
				}
			}
			snap, err := Capture(engA, 3, []QueryDef{{ID: "q1", SQL: qA.SQL(), Query: qA}})
			if err != nil {
				t.Fatal(err)
			}
			data, err := snap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Contains(string(data), `"col_window"`); got == dir.fromRow {
				t.Fatalf("col_window present=%v, want %v", got, !dir.fromRow)
			}
			snap2, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			engB, err := core.NewEngine(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(engB, snap2)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			qB := restored[0].Query
			for i := 7; i < 13; i++ {
				var ra, rb []core.Result
				if i%3 == 1 {
					ra = pushHist(t, engA, qA, float64(i), []int{2, 4 + i, 1})
					rb = pushHist(t, engB, qB, float64(i), []int{2, 4 + i, 1})
				} else {
					ra = pushOne(t, engA, qA, float64(i), 30+float64(i), 1.5, 12+i)
					rb = pushOne(t, engB, qB, float64(i), 30+float64(i), 1.5, 12+i)
				}
				if fa, fb := fingerprint(ra), fingerprint(rb); fa != fb {
					t.Fatalf("push %d diverged:\noriginal:  %srestored: %s", i, fa, fb)
				}
			}
		})
	}
}
