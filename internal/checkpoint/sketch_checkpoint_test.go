package checkpoint

import (
	"strings"
	"testing"

	"repro/internal/core"
)

const sketchSQL = "SELECT COUNT(val) AS c, AVG(val) AS a, SUM(val) AS s FROM temps WINDOW 4 ROWS BACKEND SKETCH"

// TestCaptureRestoreSketch checkpoints a sketch-backed query mid-window —
// sealed blocks, a partially filled active block, accumulated quantile
// compactions — round-trips it through the on-disk encoding, and verifies
// the restored query continues bit-identically.
func TestCaptureRestoreSketch(t *testing.T) {
	engA := newEngine(t)
	qA, err := engA.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	// 7 pushes on a 4-row window: full, with eviction history behind it.
	for i := 0; i < 7; i++ {
		pushOne(t, engA, qA, float64(i), 10+float64(i), 2.5, 20+i)
	}

	snap, err := Capture(engA, 99, []QueryDef{{ID: "qs", SQL: qA.SQL(), Query: qA}})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if snap.Queries[0].Sketch == nil {
		t.Fatal("captured sketch query state has no sketch window")
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Queries[0].Sketch == nil {
		t.Fatal("sketch window lost in the on-disk encoding")
	}
	if err := snap2.Queries[0].Sketch.Validate(); err != nil {
		t.Fatalf("decoded sketch window invalid: %v", err)
	}

	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(engB, snap2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	qB := restored[0].Query

	for i := 7; i < 18; i++ {
		ra := pushOne(t, engA, qA, float64(i), 10+float64(i), 2.5, 20+i)
		rb := pushOne(t, engB, qB, float64(i), 10+float64(i), 2.5, 20+i)
		if fa, fb := fingerprint(ra), fingerprint(rb); fa != fb {
			t.Fatalf("push %d diverged after sketch restore:\noriginal: %srestored: %s", i, fa, fb)
		}
	}
	if sa, sb := qA.Stats(), qB.Stats(); sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
}

// TestRestoreSketchRejectsCorruption: a tampered sketch payload must fail
// closed at Restore, not produce silently wrong summaries.
func TestRestoreSketchRejectsCorruption(t *testing.T) {
	eng := newEngine(t)
	q, err := eng.Compile(sketchSQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		pushOne(t, eng, q, float64(i), 12, 2.0, 15)
	}
	snap, err := Capture(eng, 1, []QueryDef{{ID: "qs", SQL: q.SQL(), Query: q}})
	if err != nil {
		t.Fatal(err)
	}
	snap.Queries[0].Sketch.LiveRows++ // break the row-sum invariant

	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(engB, snap); err == nil {
		t.Fatal("corrupted sketch state restored without error")
	} else if !strings.Contains(err.Error(), "sketch") {
		t.Fatalf("error %v does not identify the sketch state", err)
	}
}
