package checkpoint

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/randvar"
)

// sharedDefs is a planner workload: three identical queries (one shared
// group), plus a distinct class over the same stream.
var sharedDefs = []string{
	"SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"SELECT AVG(val) AS a FROM temps WINDOW 3 ROWS",
	"SELECT MIN(val) AS lo, COUNT(key) AS c FROM temps WINDOW 4 ROWS",
}

func bindShared(t *testing.T, eng *core.Engine) []QueryDef {
	t.Helper()
	defs := make([]QueryDef, len(sharedDefs))
	for i, s := range sharedDefs {
		q, err := eng.Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("q%d", i)
		if err := eng.Bind(id, q); err != nil {
			t.Fatal(err)
		}
		defs[i] = QueryDef{ID: id, SQL: q.SQL(), Query: q}
	}
	return defs
}

func ingestTemps(t *testing.T, eng *core.Engine, i int) []core.QueryResults {
	t.Helper()
	nd, err := dist.NewNormal(10+float64(i%13), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	rows := []core.IngestRow{{Fields: []randvar.Field{randvar.Det(float64(i)), {Dist: nd, N: 20 + i%5}}, Time: int64(i)}}
	out, err := eng.IngestBatch("temps", rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func batchFingerprint(out []core.QueryResults) string {
	var b strings.Builder
	for _, qr := range out {
		fmt.Fprintf(&b, "%s: %s", qr.ID, fingerprint(qr.Results))
		if qr.Err != nil {
			fmt.Fprintf(&b, " err=%v", qr.Err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestSharedStateCheckpointRoundTrip checkpoints an engine whose queries
// share planner state mid-stream, restores it, re-binds, and demands (a)
// the restored queries re-merge into their shared groups via
// content-equality admission, and (b) subsequent ingest is bit-identical
// to the uninterrupted engine. Shared window state rides the existing
// per-query snapshot format — each member checkpoints the (identical)
// shared contents — so no format change and no cross-version risk.
func TestSharedStateCheckpointRoundTrip(t *testing.T) {
	engA := newEngine(t)
	defsA := bindShared(t, engA)
	// Mid-window capture point: 5 rows leaves the 3-row windows full and
	// the 4-row window mid-fill.
	for i := 0; i < 5; i++ {
		ingestTemps(t, engA, i)
	}

	snap, err := Capture(engA, 99, defsA)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(engB, snap2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(restored) != len(defsA) {
		t.Fatalf("restored %d queries, want %d", len(restored), len(defsA))
	}
	for _, rq := range restored {
		if err := engB.Bind(rq.ID, rq.Query); err != nil {
			t.Fatalf("bind %s: %v", rq.ID, err)
		}
	}

	// Content-equality admission must have re-merged the identical trio
	// into one group (and left the second class alone).
	if g := engB.Planner().Groups(); g != 2 {
		t.Fatalf("restored Groups() = %d, want 2", g)
	}
	if ex := restored[0].Query.Explain(); !strings.Contains(ex, "3 sharer(s)") {
		t.Fatalf("restored query did not re-merge:\n%s", ex)
	}
	if exA, exB := defsA[0].Query.Explain(), restored[0].Query.Explain(); exA != exB {
		t.Fatalf("EXPLAIN diverged across recovery:\n original: %s\n restored: %s", exA, exB)
	}

	// Both engines now consume the identical suffix bit-identically.
	for i := 5; i < 16; i++ {
		fa := batchFingerprint(ingestTemps(t, engA, i))
		fb := batchFingerprint(ingestTemps(t, engB, i))
		if fa != fb {
			t.Fatalf("ingest %d diverged after restore:\n original: %s\n restored: %s", i, fa, fb)
		}
	}
	for i, d := range defsA {
		if sa, sb := d.Query.Stats(), restored[i].Query.Stats(); sa != sb {
			t.Fatalf("query %s stats diverged: %+v vs %+v", d.ID, sa, sb)
		}
	}
}

// TestSharedStateRestoreDivergedWindows pins the admission rule itself: a
// restored query whose window contents differ from a live group's must NOT
// merge (it forks a second group under the same key), because merging
// would alias windows holding different history.
func TestSharedStateRestoreDivergedWindows(t *testing.T) {
	engA := newEngine(t)
	qa, err := engA.Compile(sharedDefs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.Bind("qa", qa); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ingestTemps(t, engA, i)
	}
	snap, err := Capture(engA, 1, []QueryDef{{ID: "qa", SQL: qa.SQL(), Query: qa}})
	if err != nil {
		t.Fatal(err)
	}

	// Advance the live engine past the capture point, then restore the
	// stale snapshot into the same engine's registry world: bind a fresh
	// query first (empty window), then the restored one (4 rows behind).
	engB, err := core.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(engB, snap)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := engB.Compile(sharedDefs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.Bind("fresh", fresh); err != nil {
		t.Fatal(err)
	}
	if err := engB.Bind("qa", restored[0].Query); err != nil {
		t.Fatal(err)
	}
	// Same key, different contents: two groups.
	if g := engB.Planner().Groups(); g != 2 {
		t.Fatalf("Groups() = %d, want 2 (diverged windows must not merge)", g)
	}
}
