// Package checkpoint implements the snapshot half of the durability
// subsystem: periodic captures of complete engine state — registered
// schemas, continuous queries (SQL text plus runtime state: window
// contents, per-group and join windows, RNG states, counters), and the
// engine sequence counter — serialized losslessly via internal/codec.
//
// A checkpoint file carries the LSN of the last write-ahead-log record it
// reflects; recovery loads the latest valid checkpoint and replays the WAL
// suffix, yielding an engine bit-identical to one that never crashed: the
// restored RNG states resume every Monte Carlo and bootstrap stream
// mid-sequence, and the restored sequence counter preserves tuple numbering
// and future evaluator seeds.
//
// # On-disk format
//
//	+---------------+----------+----------+====================+
//	| magic (8B)    | len u32  | crc u32  | JSON payload       |
//	+---------------+----------+----------+====================+
//
// magic is "ASDBCKP1"; crc is CRC-32C over the payload. Files are written
// to a temporary name, fsynced, and renamed, so a crash mid-snapshot
// leaves either the previous checkpoint set intact or a stray temp file —
// never a half-written checkpoint under a valid name. LoadLatest skips
// unreadable or corrupt files and falls back to the newest valid one.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/randvar"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Checkpoint observability: snapshot cadence, size, and write latency, plus
// recovery-side load outcomes (valid loads vs files skipped as corrupt or
// unreadable). Observation-only — never changes what gets saved or loaded.
var (
	mSaves = metrics.Default.Counter("asdb_checkpoint_saves_total",
		"checkpoints written successfully")
	mSaveBytes = metrics.Default.Counter("asdb_checkpoint_save_bytes_total",
		"bytes of encoded checkpoint payloads written")
	hSave = metrics.Default.Histogram("asdb_checkpoint_save_seconds",
		"wall time of one atomic checkpoint save", metrics.DefBuckets)
	mLoads = metrics.Default.Counter("asdb_checkpoint_loads_total",
		"checkpoints loaded successfully during recovery")
	mLoadSkips = metrics.Default.Counter("asdb_checkpoint_load_skips_total",
		"checkpoint files skipped as unreadable or corrupt during recovery")
)

const (
	magic     = "ASDBCKP1"
	headerLen = len(magic) + 8 // magic + u32 len + u32 crc
	filePref  = "ckpt-"
	fileSuf   = ".ck"
	keepFiles = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an unreadable checkpoint file.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

// ColumnState mirrors stream.Column.
type ColumnState struct {
	Name          string `json:"name"`
	Probabilistic bool   `json:"probabilistic,omitempty"`
}

// StreamState is one registered stream schema.
type StreamState struct {
	Name    string        `json:"name"`
	Columns []ColumnState `json:"columns"`
}

// tupleState is one windowed tuple; fields are codec JSON (lossless).
type tupleState struct {
	Fields []json.RawMessage `json:"fields"`
	Prob   float64           `json:"prob"`
	ProbN  int               `json:"prob_n,omitempty"`
	Seq    uint64            `json:"seq"`
	Time   int64             `json:"time,omitempty"`
}

type windowState struct {
	Tuples []tupleState `json:"tuples"`
}

// colColumnState is one column of a columnar window snapshot. Kind uses
// ints (not the in-memory uint8s) so the arrays stay human-readable JSON
// rather than base64. Other maps decimal slot index → codec JSON for the
// slots whose kind is non-Gaussian.
type colColumnState struct {
	Kind  []int                      `json:"kind"`
	Mean  []float64                  `json:"mean,omitempty"`
	Var   []float64                  `json:"var,omitempty"`
	N     []int                      `json:"n,omitempty"`
	Other map[string]json.RawMessage `json:"other,omitempty"`
}

// colWindowState is the columnar (struct-of-arrays) window snapshot form:
// linearized oldest-first, per-tuple columns plus per-schema-column arrays.
type colWindowState struct {
	Prob  []float64        `json:"prob,omitempty"`
	ProbN []int            `json:"prob_n,omitempty"`
	Seq   []uint64         `json:"seq,omitempty"`
	Time  []int64          `json:"time,omitempty"`
	Cols  []colColumnState `json:"cols,omitempty"`
}

type groupState struct {
	Key       float64         `json:"key"`
	Window    *windowState    `json:"window,omitempty"`
	ColWindow *colWindowState `json:"col_window,omitempty"`
}

// QueryState is one registered continuous query: its identity, SQL, and
// serialized runtime state.
type QueryState struct {
	ID        string          `json:"id"`
	SQL       string          `json:"sql"`
	Eval      dist.RandState  `json:"eval_rng"`
	Boot      dist.RandState  `json:"boot_rng"`
	Stats     core.QueryStats `json:"stats"`
	Window    *windowState    `json:"window,omitempty"`
	ColWindow *colWindowState `json:"col_window,omitempty"`
	Groups    []groupState    `json:"groups,omitempty"`
	JoinLeft  *windowState    `json:"join_left,omitempty"`
	JoinRight *windowState    `json:"join_right,omitempty"`
	// Sketch is the sketch-backend window, serialized directly: its state
	// is plain floats and integers (JSON float64 round-trips are exact), so
	// no codec translation layer is needed.
	Sketch *sketch.Window `json:"sketch,omitempty"`
}

// Snapshot is a complete engine checkpoint.
type Snapshot struct {
	// Version guards the format; readers reject unknown versions.
	Version int `json:"version"`
	// LSN is the last WAL record reflected in this snapshot; recovery
	// replays from LSN+1.
	LSN uint64 `json:"lsn"`
	// Seq is the engine sequence counter at capture time.
	Seq uint64 `json:"seq"`
	// Degrade is the accuracy-degradation (load-shedding) level at capture
	// time. Shed transitions change resample counts — and hence RNG
	// consumption — so recovery must resume at the captured level for replay
	// to stay bit-identical.
	Degrade int           `json:"degrade,omitempty"`
	Streams []StreamState `json:"streams,omitempty"`
	Queries []QueryState  `json:"queries,omitempty"`
	// Epoch is the replication epoch (term) at capture time and EpochHist
	// the known epoch transitions (epoch 1 starts at LSN 0 implicitly, so
	// only bumps are recorded). Post-checkpoint WAL truncation can drop
	// RecEpoch records, so the boundaries a primary needs to fence stale
	// rejoiners must also ride the snapshot. Absent in pre-failover
	// checkpoints; readers treat that as epoch 1.
	Epoch     uint64       `json:"epoch,omitempty"`
	EpochHist []EpochBound `json:"epoch_hist,omitempty"`
}

// EpochBound records one replication-epoch transition: Epoch's history
// begins at WAL record Start (the LSN of its RecEpoch record).
type EpochBound struct {
	Epoch uint64 `json:"epoch"`
	Start uint64 `json:"start"`
}

// QueryDef names one live query for Capture.
type QueryDef struct {
	ID    string
	SQL   string
	Query *core.Query
}

// Capture snapshots the engine and the given queries. The caller must
// ensure no pushes run concurrently (the server holds its command mutex).
// Pass defs in a deterministic order (e.g. sorted by ID) so checkpoint
// bytes are reproducible.
func Capture(eng *core.Engine, lsn uint64, defs []QueryDef) (*Snapshot, error) {
	snap := &Snapshot{Version: 1, LSN: lsn, Seq: eng.Seq(), Degrade: eng.DegradeLevel()}
	names := eng.Streams()
	sort.Strings(names)
	for _, name := range names {
		schema, err := eng.Schema(name)
		if err != nil {
			return nil, err
		}
		ss := StreamState{Name: schema.Name, Columns: make([]ColumnState, 0, schema.Arity())}
		for _, c := range schema.Columns {
			ss.Columns = append(ss.Columns, ColumnState{Name: c.Name, Probabilistic: c.Probabilistic})
		}
		snap.Streams = append(snap.Streams, ss)
	}
	for _, def := range defs {
		st := def.Query.State()
		qs := QueryState{
			ID:     def.ID,
			SQL:    def.SQL,
			Eval:   st.Eval,
			Boot:   st.Boot,
			Stats:  st.Stats,
			Sketch: st.Sketch,
		}
		var err error
		if qs.Window, err = encodeWindow(st.Window); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", def.ID, err)
		}
		if qs.ColWindow, err = encodeColWindow(st.ColWindow); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", def.ID, err)
		}
		for _, g := range st.Groups {
			gs := groupState{Key: g.Key}
			if g.ColWindow != nil {
				if gs.ColWindow, err = encodeColWindow(g.ColWindow); err != nil {
					return nil, fmt.Errorf("checkpoint: query %s group %g: %w", def.ID, g.Key, err)
				}
			} else {
				if gs.Window, err = encodeWindow(&g.Window); err != nil {
					return nil, fmt.Errorf("checkpoint: query %s group %g: %w", def.ID, g.Key, err)
				}
			}
			qs.Groups = append(qs.Groups, gs)
		}
		if qs.JoinLeft, err = encodeWindow(st.JoinLeft); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", def.ID, err)
		}
		if qs.JoinRight, err = encodeWindow(st.JoinRight); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", def.ID, err)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	return snap, nil
}

func encodeWindow(ws *core.WindowState) (*windowState, error) {
	if ws == nil {
		return nil, nil
	}
	out := &windowState{Tuples: make([]tupleState, len(ws.Tuples))}
	for i, t := range ws.Tuples {
		ts := tupleState{
			Fields: make([]json.RawMessage, len(t.Fields)),
			Prob:   t.Prob,
			ProbN:  t.ProbN,
			Seq:    t.Seq,
			Time:   t.Time,
		}
		for j, f := range t.Fields {
			enc, err := codec.EncodeField(f)
			if err != nil {
				return nil, err
			}
			ts.Fields[j] = enc
		}
		out.Tuples[i] = ts
	}
	return out, nil
}

func encodeColWindow(cs *stream.ColumnWindowState) (*colWindowState, error) {
	if cs == nil {
		return nil, nil
	}
	out := &colWindowState{
		Prob:  cs.Prob,
		ProbN: cs.ProbN,
		Seq:   cs.Seq,
		Time:  cs.Time,
		Cols:  make([]colColumnState, len(cs.Cols)),
	}
	for c, col := range cs.Cols {
		oc := colColumnState{
			Kind: make([]int, len(col.Kind)),
			Mean: col.Mean,
			Var:  col.Var,
			N:    col.N,
		}
		for i, k := range col.Kind {
			oc.Kind[i] = int(k)
		}
		for slot, d := range col.Other {
			enc, err := codec.EncodeDistribution(d)
			if err != nil {
				return nil, err
			}
			if oc.Other == nil {
				oc.Other = make(map[string]json.RawMessage, len(col.Other))
			}
			oc.Other[strconv.Itoa(slot)] = enc
		}
		out.Cols[c] = oc
	}
	return out, nil
}

func decodeColWindow(cw *colWindowState) (*stream.ColumnWindowState, error) {
	if cw == nil {
		return nil, nil
	}
	out := &stream.ColumnWindowState{
		Prob:  cw.Prob,
		ProbN: cw.ProbN,
		Seq:   cw.Seq,
		Time:  cw.Time,
		Cols:  make([]stream.ColumnState, len(cw.Cols)),
	}
	// JSON omitempty drops empty arrays; rebuild them so an empty window
	// round-trips to a structurally valid (zero-length) snapshot.
	if out.Prob == nil {
		out.Prob = []float64{}
	}
	n := len(out.Prob)
	if out.ProbN == nil {
		out.ProbN = make([]int, n)
	}
	if out.Seq == nil {
		out.Seq = make([]uint64, n)
	}
	if out.Time == nil {
		out.Time = make([]int64, n)
	}
	for c, col := range cw.Cols {
		oc := stream.ColumnState{
			Kind: make([]uint8, len(col.Kind)),
			Mean: col.Mean,
			Var:  col.Var,
			N:    col.N,
		}
		for i, k := range col.Kind {
			if k < 0 || k > 255 {
				return nil, fmt.Errorf("checkpoint: columnar window column %d slot %d kind %d out of range", c, i, k)
			}
			oc.Kind[i] = uint8(k)
		}
		m := len(oc.Kind)
		if oc.Mean == nil {
			oc.Mean = make([]float64, m)
		}
		if oc.Var == nil {
			oc.Var = make([]float64, m)
		}
		if oc.N == nil {
			oc.N = make([]int, m)
		}
		for key, raw := range col.Other {
			slot, err := strconv.Atoi(key)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: columnar window column %d bad slot key %q", c, key)
			}
			d, err := codec.DecodeDistribution(raw)
			if err != nil {
				return nil, err
			}
			if oc.Other == nil {
				oc.Other = make(map[int]dist.Distribution, len(col.Other))
			}
			oc.Other[slot] = d
		}
		out.Cols[c] = oc
	}
	return out, nil
}

func decodeWindow(ws *windowState) (*core.WindowState, error) {
	if ws == nil {
		return nil, nil
	}
	out := &core.WindowState{Tuples: make([]core.TupleState, len(ws.Tuples))}
	for i, t := range ws.Tuples {
		ts := core.TupleState{
			Fields: make([]randvar.Field, len(t.Fields)),
			Prob:   t.Prob,
			ProbN:  t.ProbN,
			Seq:    t.Seq,
			Time:   t.Time,
		}
		for j, raw := range t.Fields {
			f, err := codec.DecodeField(raw)
			if err != nil {
				return nil, err
			}
			ts.Fields[j] = f
		}
		out.Tuples[i] = ts
	}
	return out, nil
}

// RestoredQuery is one query rebuilt by Restore.
type RestoredQuery struct {
	ID    string
	SQL   string
	Query *core.Query
}

// Restore rebuilds snapshot state into a fresh engine: registers every
// schema, recompiles every query and loads its runtime state, and finally
// restores the engine sequence counter. The engine must be newly created
// with the same configuration (Seed in particular) as the captured one.
func Restore(eng *core.Engine, snap *Snapshot) ([]RestoredQuery, error) {
	if snap == nil {
		return nil, errors.New("checkpoint: nil snapshot")
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", snap.Version)
	}
	for _, ss := range snap.Streams {
		cols := make([]stream.Column, len(ss.Columns))
		for i, c := range ss.Columns {
			cols[i] = stream.Column{Name: c.Name, Probabilistic: c.Probabilistic}
		}
		schema, err := stream.NewSchema(ss.Name, cols...)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: stream %s: %w", ss.Name, err)
		}
		if err := eng.RegisterStream(schema); err != nil {
			return nil, fmt.Errorf("checkpoint: stream %s: %w", ss.Name, err)
		}
	}
	out := make([]RestoredQuery, 0, len(snap.Queries))
	for _, qs := range snap.Queries {
		q, err := eng.Compile(qs.SQL)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: recompiling query %s: %w", qs.ID, err)
		}
		st := &core.QueryState{Eval: qs.Eval, Boot: qs.Boot, Stats: qs.Stats, Sketch: qs.Sketch}
		if st.Window, err = decodeWindow(qs.Window); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", qs.ID, err)
		}
		if st.ColWindow, err = decodeColWindow(qs.ColWindow); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", qs.ID, err)
		}
		for _, g := range qs.Groups {
			gs := core.GroupWindowState{Key: g.Key}
			if g.ColWindow != nil {
				cw, err := decodeColWindow(g.ColWindow)
				if err != nil {
					return nil, fmt.Errorf("checkpoint: query %s group %g: %w", qs.ID, g.Key, err)
				}
				gs.ColWindow = cw
			} else {
				gw, err := decodeWindow(g.Window)
				if err != nil {
					return nil, fmt.Errorf("checkpoint: query %s group %g: %w", qs.ID, g.Key, err)
				}
				if gw == nil {
					gw = &core.WindowState{Tuples: []core.TupleState{}}
				}
				gs.Window = *gw
			}
			st.Groups = append(st.Groups, gs)
		}
		if st.JoinLeft, err = decodeWindow(qs.JoinLeft); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", qs.ID, err)
		}
		if st.JoinRight, err = decodeWindow(qs.JoinRight); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", qs.ID, err)
		}
		if err := q.SetState(st); err != nil {
			return nil, fmt.Errorf("checkpoint: query %s: %w", qs.ID, err)
		}
		out = append(out, RestoredQuery{ID: qs.ID, SQL: qs.SQL, Query: q})
	}
	eng.RestoreSeq(snap.Seq)
	eng.SetDegradeLevel(snap.Degrade)
	return out, nil
}

// Encode renders the snapshot in the framed on-disk format.
func (s *Snapshot) Encode() ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[len(magic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[len(magic)+4:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerLen:], payload)
	return buf, nil
}

// Decode parses and validates a framed snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint32(data[len(magic):])
	crc := binary.LittleEndian.Uint32(data[len(magic)+4:])
	payload := data[headerLen:]
	if uint32(len(payload)) != length {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), length)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("%w: bad crc", ErrCorrupt)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &snap, nil
}

// Manager stores checkpoints in a directory, keeping the newest few.
type Manager struct {
	dir string
	fs  fault.FS
}

// NewManager opens (creating if needed) a checkpoint directory.
func NewManager(dir string) (*Manager, error) {
	return NewManagerFS(dir, nil)
}

// NewManagerFS is NewManager over an injectable filesystem (fault injection
// in the chaos suite); nil fs uses the real one.
func NewManagerFS(dir string, fs fault.FS) (*Manager, error) {
	if fs == nil {
		fs = fault.OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Manager{dir: dir, fs: fs}, nil
}

// Save writes the snapshot atomically (temp file + fsync + rename + dir
// fsync) and prunes all but the newest checkpoints.
func (m *Manager) Save(s *Snapshot) error {
	t0 := time.Now()
	data, err := s.Encode()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := m.fs.CreateTemp(m.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		m.fs.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		m.fs.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		m.fs.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	final := filepath.Join(m.dir, fmt.Sprintf("%s%016x%s", filePref, s.LSN, fileSuf))
	if err := m.fs.Rename(tmpName, final); err != nil {
		m.fs.Remove(tmpName)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := m.syncDir(); err != nil {
		return err
	}
	m.prune()
	mSaves.Inc()
	mSaveBytes.Add(uint64(len(data)))
	hSave.ObserveSince(t0)
	return nil
}

// LoadLatest returns the newest valid checkpoint, skipping corrupt or
// unreadable files (a crash mid-snapshot must never block recovery). It
// returns (nil, nil) when no valid checkpoint exists.
func (m *Manager) LoadLatest() (*Snapshot, error) {
	files, err := m.list()
	if err != nil {
		return nil, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		data, err := m.fs.ReadFile(files[i])
		if err != nil {
			mLoadSkips.Inc()
			continue
		}
		snap, err := Decode(data)
		if err != nil {
			mLoadSkips.Inc()
			continue
		}
		mLoads.Inc()
		return snap, nil
	}
	return nil, nil
}

// LatestRaw returns the newest valid checkpoint still in its framed on-disk
// encoding, plus the LSN it covers, skipping corrupt files exactly like
// LoadLatest. The replication handshake ships these bytes verbatim so the
// follower can verify and decode them itself. (nil, 0, nil) when no valid
// checkpoint exists.
func (m *Manager) LatestRaw() ([]byte, uint64, error) {
	files, err := m.list()
	if err != nil {
		return nil, 0, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		data, err := m.fs.ReadFile(files[i])
		if err != nil {
			mLoadSkips.Inc()
			continue
		}
		snap, err := Decode(data)
		if err != nil {
			mLoadSkips.Inc()
			continue
		}
		return data, snap.LSN, nil
	}
	return nil, 0, nil
}

// list returns checkpoint paths sorted oldest-first (names embed the LSN
// in fixed-width hex, so lexical order is LSN order).
func (m *Manager) list() ([]string, error) {
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePref) || !strings.HasSuffix(name, fileSuf) {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, filePref), fileSuf), 16, 64); err != nil {
			continue
		}
		out = append(out, filepath.Join(m.dir, name))
	}
	sort.Strings(out)
	return out, nil
}

func (m *Manager) prune() {
	files, err := m.list()
	if err != nil {
		return
	}
	for len(files) > keepFiles {
		m.fs.Remove(files[0])
		files = files[1:]
	}
}

// DropAfter removes every checkpoint covering an LSN greater than lsn. A
// fenced old primary calls it alongside wal.TruncateSuffix when rejoining:
// checkpoints taken past the epoch boundary capture diverged state and must
// not be offered to recovery. File names embed the covered LSN, so no file
// needs to be decoded.
func (m *Manager) DropAfter(lsn uint64) error {
	files, err := m.list()
	if err != nil {
		return err
	}
	dropped := false
	for _, path := range files {
		name := filepath.Base(path)
		at, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, filePref), fileSuf), 16, 64)
		if err != nil {
			continue
		}
		if at <= lsn {
			continue
		}
		if err := m.fs.Remove(path); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		dropped = true
	}
	if !dropped {
		return nil
	}
	return m.syncDir()
}

func (m *Manager) syncDir() error {
	d, err := m.fs.Open(m.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}
