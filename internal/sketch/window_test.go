package sketch

import (
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dist"
)

func push(t *testing.T, w *Window, mean, variance, p float64) bool {
	t.Helper()
	sealed, err := w.Push([]Obs{{Mean: mean, Variance: variance, N: 10}}, p)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

func TestWindowGeometry(t *testing.T) {
	w, err := NewWindow(100, 16, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.BlockRows != 7 { // ⌈100/16⌉
		t.Fatalf("block rows %d, want 7", w.BlockRows)
	}
	seals := 0
	for i := 0; i < 300; i++ {
		if push(t, w, float64(i), 0, 1) {
			seals++
			if w.Active.Rows != 0 {
				t.Fatal("sealing did not reset the active block")
			}
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if w.Full() {
			// The eviction invariant: sealed rows cover at least W but less
			// than W plus one block.
			if w.LiveRows < 100 || w.LiveRows >= 100+w.BlockRows {
				t.Fatalf("push %d: live rows %d outside [100, %d)", i, w.LiveRows, 100+w.BlockRows)
			}
		}
	}
	if want := 300 / 7; seals != want {
		t.Errorf("%d seals over 300 pushes, want %d", seals, want)
	}
	if uint64(seals) != w.Seals {
		t.Errorf("Seals counter %d, want %d", w.Seals, seals)
	}
}

// TestWindowMergedColCoversSuffix: the merged summary is exactly the summary
// of the rows the sealed blocks cover — the most recent LiveRows pushes that
// have been sealed.
func TestWindowMergedColCoversSuffix(t *testing.T) {
	w, err := NewWindow(60, 6, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRand(31)
	var history []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		history = append(history, x)
		sealed := push(t, w, x, 1, 1)
		if !sealed || !w.Full() {
			continue
		}
		s, err := w.MergedCol(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("push %d: merged summary invalid: %v", i, err)
		}
		// The sealed blocks cover the last LiveRows pushes, excluding any
		// rows sitting in the (empty, just reset) active block.
		covered := history[len(history)-w.LiveRows:]
		wantMean, wantM2 := exactMoments(covered)
		if s.Mom.N != uint64(len(covered)) {
			t.Fatalf("push %d: merged count %d, want %d", i, s.Mom.N, len(covered))
		}
		approx(t, "merged mean", s.Mom.Mean, wantMean, 1e-9*math.Max(1, math.Abs(wantMean)))
		approx(t, "merged m2", s.Mom.M2, wantM2, 1e-6*math.Max(1, wantM2))
		approx(t, "merged sumvar", s.SumVar, float64(len(covered)), 1e-9*float64(len(covered)))
		if s.MinN != 10 {
			t.Fatalf("merged MinN %d", s.MinN)
		}
		if s.Quant.N != uint64(len(covered)) {
			t.Fatalf("quantile count %d", s.Quant.N)
		}
	}
}

// TestWindowDeterminism: identical push sequences yield deeply equal windows
// (the bit-identity the replication and recovery paths rely on).
func TestWindowDeterminism(t *testing.T) {
	build := func() *Window {
		w, err := NewWindow(200, 16, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := dist.NewRand(32)
		for i := 0; i < 2000; i++ {
			obs := []Obs{
				{Mean: rng.NormFloat64(), Variance: rng.Float64(), N: 5},
				{Mean: rng.Float64() * 10, Variance: 0, N: 3},
			}
			if _, err := w.Push(obs, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Fatal("identical push sequences produced different window states")
	}
}

func TestWindowCloneIsolation(t *testing.T) {
	w, err := NewWindow(50, 5, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		push(t, w, float64(i), 0.5, 0.9)
	}
	snap := w.Clone()
	frozen := w.Clone()
	for i := 0; i < 75; i++ {
		push(t, w, float64(-i), 2, 0.5)
	}
	if !reflect.DeepEqual(snap, frozen) {
		t.Fatal("pushes into the original mutated a clone")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowJSONRoundTrip(t *testing.T) {
	w, err := NewWindow(90, 9, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRand(33)
	pushRand := func(dst *Window, n int, r *dist.Rand) {
		for i := 0; i < n; i++ {
			obs := []Obs{
				{Mean: r.NormFloat64() * 5, Variance: r.Float64(), N: 7},
				{Mean: r.Float64(), Variance: 0, N: 2},
			}
			if _, err := dst.Push(obs, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pushRand(w, 400, rng)

	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Window
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("deserialized window invalid: %v", err)
	}
	// Go's float64 JSON encoding round-trips exactly, so the restored window
	// must continue bit-identically to the original.
	contA, contB := dist.NewRand(34), dist.NewRand(34)
	pushRand(w, 300, contA)
	pushRand(&back, 300, contB)
	rawA, _ := json.Marshal(w)
	rawB, _ := json.Marshal(&back)
	if string(rawA) != string(rawB) {
		t.Fatal("restored window diverged from original after identical pushes")
	}
}

func TestWindowPushErrors(t *testing.T) {
	w, err := NewWindow(10, 2, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push([]Obs{{}}, 1); err == nil {
		t.Error("column count mismatch accepted")
	}
	for _, p := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := w.Push([]Obs{{}, {}}, p); err == nil {
			t.Errorf("probability %v accepted", p)
		}
	}
	if _, err := w.Push([]Obs{{Mean: math.Inf(1)}, {}}, 1); err == nil {
		t.Error("non-finite observation accepted")
	}
	if _, err := w.MergedCol(5); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := w.MergedCol(0); err == nil {
		t.Error("merged summary of an empty window accepted")
	}
}

func TestWindowConstruction(t *testing.T) {
	if _, err := NewWindow(0, 4, 16, 1); err == nil {
		t.Error("zero-row window accepted")
	}
	if _, err := NewWindow(10, 0, 16, 1); err == nil {
		t.Error("zero-block window accepted")
	}
	if _, err := NewWindow(10, 4, 16, -1); err == nil {
		t.Error("negative column count accepted")
	}
	// More blocks than rows clamps: every push seals.
	w, err := NewWindow(3, 16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.B != 3 || w.BlockRows != 1 {
		t.Fatalf("clamped geometry b=%d rows=%d", w.B, w.BlockRows)
	}
	for i := 0; i < 5; i++ {
		if !push(t, w, float64(i), 0, 1) {
			t.Fatal("single-row blocks must seal on every push")
		}
	}
}

// TestWindowBoundedMemory pins the tentpole resource claim: a 1M-row sketch
// window stays under 64 MiB resident where the exact backends would hold a
// million tuples. The retained quantile items are the dominant term —
// O(B·K·log(W/(B·K))) values — a few thousand floats, not a million.
func TestWindowBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row window push in -short mode")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	const n = 1_200_000
	w, err := NewWindow(1_000_000, DefaultBlocks, DefaultQuantileK, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRand(35)
	obs := make([]Obs, 1)
	for i := 0; i < n; i++ {
		obs[0] = Obs{Mean: rng.NormFloat64(), Variance: 1, N: 4}
		if _, err := w.Push(obs, 1); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	resident := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if resident > 64<<20 {
		t.Errorf("1M-row sketch window holds %d bytes live, budget 64 MiB", resident)
	}
	if items := w.ItemCount(); items > 200_000 {
		t.Errorf("%d retained quantile items — not polylogarithmic", items)
	}
	if !w.Full() {
		t.Fatal("window should be full after 1.2M pushes")
	}
	s, err := w.MergedCol(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mom.N < 1_000_000 {
		t.Fatalf("merged summary covers %d rows", s.Mom.N)
	}
	// Sanity on the estimates at scale: mean near 0, median interval tight.
	if math.Abs(s.Mom.Mean) > 0.01 {
		t.Errorf("merged mean %v far from 0", s.Mom.Mean)
	}
	med, err := s.Quant.Interval(0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !med.Contains(0) {
		t.Errorf("median interval %v misses the true median 0", med)
	}
	if med.Length() > 0.2 {
		t.Errorf("median interval %v too wide at n=1M", med)
	}
	runtime.KeepAlive(w)
}

func TestColSummaryMergeNilQuantile(t *testing.T) {
	// A zero-value ColSummary (no quantile sketch yet) adopts the other
	// side's sketch on merge — the path MergedCol exercises via Clone.
	var s ColSummary
	o := newColSummary(16)
	if err := o.Add(Obs{Mean: 3, Variance: 1, N: 2}, 0.5); err != nil {
		t.Fatal(err)
	}
	s.Merge(&o)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Quant == o.Quant {
		t.Fatal("merge aliased the source quantile sketch")
	}
	if s.Mom.N != 1 || s.Quant.N != 1 {
		t.Fatalf("merged counts %d/%d", s.Mom.N, s.Quant.N)
	}
}
