package sketch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/accuracy"
	"repro/internal/stat"
)

// DefaultQuantileK is the per-level buffer capacity of a Quantile sketch: a
// window of n rows keeps O(K·log(n/K)) items and guarantees a deterministic
// rank error of at most n·⌈log₂(n/K)⌉/(2K) (tracked exactly, not just
// bounded, in ErrW).
const DefaultQuantileK = 256

// Quantile is a mergeable, bounded-memory quantile sketch in the KLL/MRL
// multi-level compaction style, with two deliberate deviations from the
// randomized original:
//
//   - the compactor is deterministic: a per-level parity bit alternates
//     which half of the sorted buffer survives, so Add/Merge sequences are
//     bit-reproducible across replays, replicas, and worker counts — no RNG
//     is consumed anywhere;
//   - the rank error is tracked explicitly: compacting a level whose items
//     have weight w = 2^l can shift any value's estimated rank by at most
//     w, so the sketch accumulates ErrW = Σ 2^l over every compaction it
//     (or any sketch merged into it) performed. Intervals widen their
//     order-statistic ranks by ErrW — the deterministic analogue of the
//     KLL error guarantee, conservative rather than probabilistic.
//
// Compactions only ever fold an even number of items (an odd buffer leaves
// its largest item in place), so the total item weight always equals the
// observation count N exactly and rank queries need no renormalization.
//
// All fields are exported for lossless JSON round-trips through checkpoints
// and replication; mutate only through the methods.
type Quantile struct {
	K      int         `json:"k"`
	N      uint64      `json:"count"`
	Min    float64     `json:"min,omitempty"`
	Max    float64     `json:"max,omitempty"`
	Levels [][]float64 `json:"levels,omitempty"`
	Parity []uint8     `json:"parity,omitempty"`
	ErrW   uint64      `json:"err,omitempty"`
}

// NewQuantile returns an empty sketch with per-level capacity k (minimum 8,
// rounded up to even so compactions stay weight-preserving).
func NewQuantile(k int) *Quantile {
	if k < 8 {
		k = 8
	}
	if k%2 == 1 {
		k++
	}
	return &Quantile{K: k}
}

// Add absorbs one observation. Non-finite values are rejected so sketch
// state stays JSON-serializable.
func (q *Quantile) Add(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("sketch: non-finite observation %v", x)
	}
	if q.N == 0 || x < q.Min {
		q.Min = x
	}
	if q.N == 0 || x > q.Max {
		q.Max = x
	}
	q.N++
	if len(q.Levels) == 0 {
		q.Levels = append(q.Levels, make([]float64, 0, q.K))
		q.Parity = append(q.Parity, 0)
	}
	q.Levels[0] = append(q.Levels[0], x)
	q.compactFrom(0)
	return nil
}

// compactFrom cascades compactions upward from level l while any level is
// at or over capacity.
func (q *Quantile) compactFrom(l int) {
	for ; l < len(q.Levels); l++ {
		if len(q.Levels[l]) < q.K {
			continue
		}
		buf := q.Levels[l]
		sort.Float64s(buf)
		m := len(buf) &^ 1 // fold an even count; an odd buffer keeps its max
		keepFrom := int(q.Parity[l])
		q.Parity[l] ^= 1
		q.ErrW += 1 << uint(l)
		if l+1 >= len(q.Levels) {
			q.Levels = append(q.Levels, make([]float64, 0, q.K))
			q.Parity = append(q.Parity, 0)
		}
		for i := keepFrom; i < m; i += 2 {
			q.Levels[l+1] = append(q.Levels[l+1], buf[i])
		}
		rest := buf[:0]
		rest = append(rest, buf[m:]...)
		q.Levels[l] = rest
	}
}

// Merge combines o into q: per-level item union, error bounds add, then a
// compaction cascade restores the capacity invariant. Merge order is the
// caller's to keep deterministic (the window merges blocks oldest-first,
// cross-shard merges go in shard order).
func (q *Quantile) Merge(o *Quantile) {
	if o == nil || o.N == 0 {
		return
	}
	if q.N == 0 || o.Min < q.Min {
		q.Min = o.Min
	}
	if q.N == 0 || o.Max > q.Max {
		q.Max = o.Max
	}
	q.N += o.N
	q.ErrW += o.ErrW
	for l := range o.Levels {
		for l >= len(q.Levels) {
			q.Levels = append(q.Levels, make([]float64, 0, q.K))
			q.Parity = append(q.Parity, 0)
		}
		q.Levels[l] = append(q.Levels[l], o.Levels[l]...)
	}
	q.compactFrom(0)
}

// Count returns the number of observations absorbed.
func (q *Quantile) Count() uint64 { return q.N }

// ErrorBound returns the accumulated deterministic rank error bound: for
// any value x, |EstRank(x) − true rank of x| ≤ ErrorBound().
func (q *Quantile) ErrorBound() uint64 { return q.ErrW }

// ItemCount returns the number of retained items across all levels — the
// sketch's memory footprint in values.
func (q *Quantile) ItemCount() int {
	n := 0
	for _, lvl := range q.Levels {
		n += len(lvl)
	}
	return n
}

// EstRank estimates the rank of x: the weighted count of retained items
// ≤ x, within ErrorBound of the true count of observations ≤ x.
func (q *Quantile) EstRank(x float64) uint64 {
	var r uint64
	for l, lvl := range q.Levels {
		w := uint64(1) << uint(l)
		for _, v := range lvl {
			if v <= x {
				r += w
			}
		}
	}
	return r
}

// ValueAtRank returns the estimated value of the rank-th smallest
// observation (1-based). Ranks at or below 1 return the exact minimum,
// ranks at or above N the exact maximum.
func (q *Quantile) ValueAtRank(rank int64) float64 {
	if q.N == 0 {
		return math.NaN()
	}
	if rank <= 1 {
		return q.Min
	}
	if rank >= int64(q.N) {
		return q.Max
	}
	type wv struct {
		v float64
		w uint64
	}
	items := make([]wv, 0, q.ItemCount())
	for l, lvl := range q.Levels {
		w := uint64(1) << uint(l)
		for _, v := range lvl {
			items = append(items, wv{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	var cum uint64
	for _, it := range items {
		cum += it.w
		if cum >= uint64(rank) {
			return it.v
		}
	}
	return q.Max
}

// Query returns the estimated p-quantile (0 ≤ p ≤ 1).
func (q *Quantile) Query(p float64) float64 {
	if q.N == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(p * float64(q.N)))
	return q.ValueAtRank(rank)
}

// Interval returns a distribution-free confidence interval for the
// population p-quantile at level c, derived from the same order-statistic
// rank rule as accuracy.QuantileInterval and widened by the sketch's
// deterministic rank error bound: the exact interval's ranks (l, u) become
// (l − ErrW, u + ErrW), so coverage is at least the exact construction's
// achieved level — honestly wider, never less covered.
func (q *Quantile) Interval(p, c float64) (accuracy.Interval, error) {
	if q.N > math.MaxInt32 {
		return accuracy.Interval{}, fmt.Errorf("sketch: %d observations too many for a quantile interval", q.N)
	}
	n := int(q.N)
	if n < 2 {
		return accuracy.Interval{}, fmt.Errorf("%w: quantile interval needs n ≥ 2, have %d", accuracy.ErrSampleSize, n)
	}
	l, u, achieved, err := accuracy.QuantileRanks(n, p, c)
	if err != nil {
		return accuracy.Interval{}, err
	}
	lo := q.ValueAtRank(int64(l) - int64(q.ErrW))
	hi := q.ValueAtRank(int64(u) + int64(q.ErrW))
	return accuracy.Interval{Lo: lo, Hi: hi, Level: achieved}, nil
}

// Validate checks structural consistency of (possibly deserialized) state.
func (q *Quantile) Validate() error {
	if q.K < 8 || q.K%2 == 1 {
		return fmt.Errorf("sketch: quantile capacity %d invalid", q.K)
	}
	if len(q.Parity) != len(q.Levels) {
		return fmt.Errorf("sketch: %d parity bits for %d levels", len(q.Parity), len(q.Levels))
	}
	var weight uint64
	for l, lvl := range q.Levels {
		if l >= 63 {
			return fmt.Errorf("sketch: quantile level %d out of range", l)
		}
		for _, v := range lvl {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("sketch: non-finite retained value at level %d", l)
			}
			if q.N > 0 && (v < q.Min || v > q.Max) {
				return fmt.Errorf("sketch: retained value %v outside [min, max] = [%v, %v]", v, q.Min, q.Max)
			}
		}
		weight += uint64(len(lvl)) << uint(l)
	}
	if weight != q.N {
		return fmt.Errorf("sketch: retained weight %d does not equal count %d", weight, q.N)
	}
	if q.N > 0 && (math.IsNaN(q.Min) || math.IsInf(q.Min, 0) || math.IsNaN(q.Max) || math.IsInf(q.Max, 0) || q.Min > q.Max) {
		return fmt.Errorf("sketch: invalid extremes [%v, %v]", q.Min, q.Max)
	}
	return nil
}

// clone returns a deep copy (used by merge-order property tests and the
// window's merged-summary construction).
func (q *Quantile) clone() *Quantile {
	out := &Quantile{K: q.K, N: q.N, Min: q.Min, Max: q.Max, ErrW: q.ErrW}
	out.Levels = make([][]float64, len(q.Levels))
	for i, lvl := range q.Levels {
		out.Levels[i] = append(make([]float64, 0, len(lvl)), lvl...)
	}
	out.Parity = append([]uint8(nil), q.Parity...)
	return out
}

// zUpperLevel validates a confidence level and returns the matching upper
// normal quantile z with (1−c)/2 mass above it.
func zUpperLevel(c float64) (float64, error) {
	if err := stat.CheckLevel(c); err != nil {
		return 0, fmt.Errorf("sketch: confidence level %v: %w", c, err)
	}
	return stat.ZUpper((1 - c) / 2), nil
}
