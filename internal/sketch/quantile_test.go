package sketch

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dist"
)

// trueRank returns the number of observations ≤ x.
func trueRank(sorted []float64, x float64) uint64 {
	return uint64(sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1))))
}

func addAll(t *testing.T, q *Quantile, xs []float64) {
	t.Helper()
	for _, x := range xs {
		if err := q.Add(x); err != nil {
			t.Fatal(err)
		}
	}
}

// checkRankError asserts the sketch's central guarantee on a data set: for
// every probe value, |EstRank(x) − true rank| ≤ ErrorBound().
func checkRankError(t *testing.T, q *Quantile, xs []float64, label string) {
	t.Helper()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	bound := q.ErrorBound()
	worst := uint64(0)
	for i := 0; i < len(sorted); i += 1 + len(sorted)/512 {
		x := sorted[i]
		est, truth := q.EstRank(x), trueRank(sorted, x)
		var d uint64
		if est > truth {
			d = est - truth
		} else {
			d = truth - est
		}
		if d > worst {
			worst = d
		}
	}
	if worst > bound {
		t.Errorf("%s: worst rank error %d exceeds tracked bound %d (n=%d)", label, worst, bound, len(xs))
	}
}

func TestQuantileSmallExact(t *testing.T) {
	// Fewer than K observations: nothing compacts, every rank is exact.
	q := NewQuantile(64)
	xs := []float64{5, 1, 9, 3, 7}
	addAll(t, q, xs)
	if q.ErrorBound() != 0 {
		t.Fatalf("uncompacted sketch has error bound %d", q.ErrorBound())
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		if got := q.ValueAtRank(int64(i + 1)); got != v {
			t.Errorf("ValueAtRank(%d) = %v, want %v", i+1, got, v)
		}
		if got := q.EstRank(v); got != uint64(i+1) {
			t.Errorf("EstRank(%v) = %d, want %d", v, got, i+1)
		}
	}
	if q.Query(0.5) != 5 {
		t.Errorf("median %v, want 5", q.Query(0.5))
	}
	if q.Min != 1 || q.Max != 9 {
		t.Errorf("extremes [%v, %v]", q.Min, q.Max)
	}
}

func TestQuantileRankErrorProperty(t *testing.T) {
	rng := dist.NewRand(21)
	for _, n := range []int{100, 5000, 60000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		q := NewQuantile(DefaultQuantileK)
		addAll(t, q, xs)
		if err := q.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkRankError(t, q, xs, "gaussian")
		// The tracked bound itself must stay sublinear: each pass over the
		// data triggers ~n/(K/2) compactions per level across ~log₂(n/K)+2
		// levels, each contributing its item weight.
		if n > q.K {
			levels := math.Log2(float64(n)/float64(q.K)) + 2
			cap := uint64(float64(2*n) / float64(q.K) * levels * 2)
			if q.ErrorBound() > cap {
				t.Errorf("n=%d: error bound %d exceeds O((n/K)·log(n/K)) cap %d", n, q.ErrorBound(), cap)
			}
		}
		// Memory must stay polylogarithmic: ~K items per level.
		maxItems := q.K * (int(math.Log2(math.Max(float64(n)/float64(q.K), 1))) + 3)
		if q.ItemCount() > maxItems {
			t.Errorf("n=%d: %d retained items exceed budget %d", n, q.ItemCount(), maxItems)
		}
	}
}

// TestQuantileSortedAndAdversarial: sorted, reverse-sorted, and all-equal
// inputs (the classic compactor stress patterns) all respect the bound.
func TestQuantileSortedAndAdversarial(t *testing.T) {
	const n = 20000
	patterns := map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(n - i) },
		"constant":   func(i int) float64 { return 42 },
		"sawtooth":   func(i int) float64 { return float64(i % 97) },
	}
	for name, gen := range patterns {
		q := NewQuantile(128)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen(i)
		}
		addAll(t, q, xs)
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkRankError(t, q, xs, name)
	}
}

func TestQuantileDeterminism(t *testing.T) {
	rng := dist.NewRand(22)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	a, b := NewQuantile(64), NewQuantile(64)
	addAll(t, a, xs)
	addAll(t, b, xs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical Add sequences produced different sketch states")
	}
}

func TestQuantileMergeWithinBound(t *testing.T) {
	rng := dist.NewRand(23)
	mk := func(n int, scale float64) ([]float64, *Quantile) {
		xs := make([]float64, n)
		q := NewQuantile(DefaultQuantileK)
		for i := range xs {
			xs[i] = rng.NormFloat64() * scale
		}
		addAll(t, q, xs)
		return xs, q
	}
	xsA, qa := mk(12000, 1)
	xsB, qb := mk(7000, 10)
	all := append(append([]float64(nil), xsA...), xsB...)

	merged := qa.clone()
	merged.Merge(qb)
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.N != uint64(len(all)) {
		t.Fatalf("merged count %d, want %d", merged.N, len(all))
	}
	if merged.ErrorBound() < qa.ErrorBound()+qb.ErrorBound() {
		t.Errorf("merged bound %d below the sum of parts %d + %d",
			merged.ErrorBound(), qa.ErrorBound(), qb.ErrorBound())
	}
	checkRankError(t, merged, all, "A+B")

	// Commutativity in the bound sense: B+A is a different (still valid)
	// state whose estimates obey its own tracked bound on the same data.
	flipped := qb.clone()
	flipped.Merge(qa)
	if err := flipped.Validate(); err != nil {
		t.Fatal(err)
	}
	checkRankError(t, flipped, all, "B+A")

	// Merging an empty or nil sketch is the identity.
	before := qa.clone()
	qa.Merge(NewQuantile(DefaultQuantileK))
	qa.Merge(nil)
	if !reflect.DeepEqual(before, qa) {
		t.Error("merging empty changed state")
	}
}

func TestQuantileMergeAssociativeWithinBound(t *testing.T) {
	rng := dist.NewRand(24)
	var all []float64
	sketches := make([]*Quantile, 3)
	for s := range sketches {
		sketches[s] = NewQuantile(128)
		for i := 0; i < 4000+s*1000; i++ {
			x := rng.Float64()*float64(s+1)*100 - 50
			all = append(all, x)
			if err := sketches[s].Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	left := sketches[0].clone()
	left.Merge(sketches[1])
	left.Merge(sketches[2])
	bc := sketches[1].clone()
	bc.Merge(sketches[2])
	right := sketches[0].clone()
	right.Merge(bc)
	for name, q := range map[string]*Quantile{"(A+B)+C": left, "A+(B+C)": right} {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if q.N != uint64(len(all)) {
			t.Fatalf("%s: count %d, want %d", name, q.N, len(all))
		}
		checkRankError(t, q, all, name)
	}
}

func TestQuantileJSONRoundTrip(t *testing.T) {
	rng := dist.NewRand(25)
	q := NewQuantile(32)
	for i := 0; i < 5000; i++ {
		if err := q.Add(rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back Quantile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("deserialized sketch invalid: %v", err)
	}
	// Buffer capacities differ but the logical state must be identical…
	if back.N != q.N || back.ErrW != q.ErrW || back.Min != q.Min || back.Max != q.Max ||
		!reflect.DeepEqual(back.Levels, q.Levels) || !reflect.DeepEqual(back.Parity, q.Parity) {
		t.Fatal("JSON round trip changed sketch state")
	}
	// …and future behavior bit-identical: the same continuation produces the
	// same states.
	cont := make([]float64, 3000)
	for i := range cont {
		cont[i] = rng.Float64() * 4
	}
	addAll(t, q, cont)
	addAll(t, &back, cont)
	if back.N != q.N || back.ErrW != q.ErrW ||
		!reflect.DeepEqual(back.Levels, q.Levels) || !reflect.DeepEqual(back.Parity, q.Parity) {
		t.Fatal("restored sketch diverged from original after identical pushes")
	}
}

func TestQuantileRejectsNonFinite(t *testing.T) {
	q := NewQuantile(8)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := q.Add(x); err == nil {
			t.Errorf("Add(%v) accepted", x)
		}
	}
	if q.N != 0 {
		t.Error("rejected values mutated the sketch")
	}
}

func TestQuantileClamps(t *testing.T) {
	q := NewQuantile(16)
	for i := 1; i <= 100; i++ {
		if err := q.Add(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if q.ValueAtRank(0) != 1 || q.ValueAtRank(-5) != 1 || q.ValueAtRank(1) != 1 {
		t.Error("low ranks must clamp to the exact minimum")
	}
	if q.ValueAtRank(100) != 100 || q.ValueAtRank(1000) != 100 {
		t.Error("high ranks must clamp to the exact maximum")
	}
	if q.Query(0) != 1 || q.Query(1) != 100 {
		t.Errorf("Query extremes: q0=%v q1=%v", q.Query(0), q.Query(1))
	}
	empty := NewQuantile(16)
	if !math.IsNaN(empty.Query(0.5)) || !math.IsNaN(empty.ValueAtRank(1)) {
		t.Error("empty sketch queries must be NaN")
	}
}

func TestQuantileIntervalBracketsTruth(t *testing.T) {
	rng := dist.NewRand(26)
	nd, _ := dist.NewNormal(10, 3)
	q := NewQuantile(DefaultQuantileK)
	const n = 50000
	for i := 0; i < n; i++ {
		if err := q.Add(nd.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		iv, err := q.Interval(p, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		truth := nd.Quantile(p)
		if !iv.Contains(truth) {
			t.Errorf("p=%g: interval %v misses the true quantile %v", p, iv, truth)
		}
		if iv.Lo < q.Min || iv.Hi > q.Max {
			t.Errorf("p=%g: interval %v escapes the observed range [%v, %v]", p, iv, q.Min, q.Max)
		}
		if iv.Level <= 0 || iv.Level > 1 {
			t.Errorf("p=%g: achieved level %v", p, iv.Level)
		}
	}
}

func TestQuantileIntervalErrors(t *testing.T) {
	q := NewQuantile(16)
	if _, err := q.Interval(0.5, 0.95); err == nil {
		t.Error("n=0: want error")
	}
	if err := q.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Interval(0.5, 0.95); err == nil {
		t.Error("n=1: want error")
	}
}

func TestQuantileValidateRejectsCorruption(t *testing.T) {
	mk := func() *Quantile {
		q := NewQuantile(16)
		for i := 0; i < 200; i++ {
			_ = q.Add(float64(i))
		}
		return q
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid sketch rejected: %v", err)
	}
	corrupt := []func(*Quantile){
		func(q *Quantile) { q.K = 7 },                               // under minimum
		func(q *Quantile) { q.K = 17 },                              // odd
		func(q *Quantile) { q.N++ },                                 // weight mismatch
		func(q *Quantile) { q.Parity = q.Parity[:len(q.Parity)-1] }, // parity/level mismatch
		func(q *Quantile) { q.Levels[0][0] = math.NaN() },           // non-finite item
		func(q *Quantile) { q.Min = q.Max + 1 },                     // inverted extremes
		func(q *Quantile) { q.Levels[0][0] = q.Max + 100 },          // item outside range
		func(q *Quantile) { // level index out of range
			for len(q.Levels) < 64 {
				q.Levels = append(q.Levels, []float64{})
				q.Parity = append(q.Parity, 0)
			}
		},
	}
	for i, mut := range corrupt {
		q := mk()
		mut(q)
		if err := q.Validate(); err == nil {
			t.Errorf("corruption %d accepted", i)
		}
	}
}
