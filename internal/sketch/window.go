package sketch

import (
	"fmt"
	"math"
)

// DefaultBlocks is the default block count of a sketch window: enough
// granularity that the window over-covers by at most ~6% of its size, few
// enough that merged summaries stay cheap.
const DefaultBlocks = 16

// Obs is one tuple's contribution to one tracked column: the field's
// distribution mean and variance and its d.f. sample size.
type Obs struct {
	Mean     float64
	Variance float64
	N        int
}

// ColSummary is the mergeable per-column summary a sketch window maintains
// per block: moments and a quantile sketch over the per-tuple field means,
// probability-weighted estimator moments for membership uncertainty, the
// summed field variance (value uncertainty), and the Lemma 3 d.f. sample
// size (minimum N over non-deterministic fields).
type ColSummary struct {
	Mom    Moments     `json:"mom"`
	Prob   ProbMoments `json:"prob"`
	Quant  *Quantile   `json:"quant,omitempty"`
	SumVar float64     `json:"sum_var,omitempty"`
	MinN   int         `json:"min_n,omitempty"`
}

// newColSummary returns an empty summary with quantile capacity k.
func newColSummary(k int) ColSummary {
	return ColSummary{Quant: NewQuantile(k)}
}

// Add absorbs one tuple's field observation with membership probability p.
func (s *ColSummary) Add(o Obs, p float64) error {
	if err := s.Quant.Add(o.Mean); err != nil {
		return err
	}
	s.Mom.Add(o.Mean)
	s.Prob.Add(o.Mean, o.Variance, p)
	s.SumVar += o.Variance
	if o.N > 0 && (s.MinN == 0 || o.N < s.MinN) {
		s.MinN = o.N
	}
	return nil
}

// Merge combines o into s. All components are mergeable: moments via Chan,
// probabilistic moments by addition, quantile sketches by compaction with
// additive error, SumVar by addition, MinN by the Lemma 3 minimum rule.
func (s *ColSummary) Merge(o *ColSummary) {
	s.Mom.Merge(o.Mom)
	s.Prob.Merge(o.Prob)
	if s.Quant == nil {
		s.Quant = o.Quant.clone()
	} else {
		s.Quant.Merge(o.Quant)
	}
	s.SumVar += o.SumVar
	if o.MinN > 0 && (s.MinN == 0 || o.MinN < s.MinN) {
		s.MinN = o.MinN
	}
}

// Clone returns a deep copy.
func (s *ColSummary) Clone() ColSummary {
	out := *s
	if s.Quant != nil {
		out.Quant = s.Quant.clone()
	}
	return out
}

// Validate checks structural consistency of (possibly deserialized) state.
func (s *ColSummary) Validate() error {
	if err := s.Mom.validate(); err != nil {
		return err
	}
	if err := s.Prob.validate(); err != nil {
		return err
	}
	if s.Quant == nil {
		return fmt.Errorf("sketch: column summary without quantile sketch")
	}
	if err := s.Quant.Validate(); err != nil {
		return err
	}
	if s.Mom.N != s.Quant.N || s.Mom.N != s.Prob.N {
		return fmt.Errorf("sketch: summary counts disagree: moments %d, quantile %d, prob %d",
			s.Mom.N, s.Quant.N, s.Prob.N)
	}
	if s.SumVar < 0 || math.IsNaN(s.SumVar) || math.IsInf(s.SumVar, 0) {
		return fmt.Errorf("sketch: invalid summed variance %v", s.SumVar)
	}
	if s.MinN < 0 {
		return fmt.Errorf("sketch: negative d.f. sample size %d", s.MinN)
	}
	return nil
}

// Block is one sealed (or the active) span of window rows, summarized per
// tracked column.
type Block struct {
	Rows int          `json:"rows"`
	Cols []ColSummary `json:"cols"`
}

// Window is a bounded-memory sliding window over per-tuple column
// observations: a ring of sealed immutable blocks plus one active block
// absorbing pushes. Sealing happens every BlockRows pushes; eviction keeps
// the sealed row total in [W, W+BlockRows). The merged summary therefore
// covers the most recent W..W+BlockRows−1 rows — a block-granular slide,
// the documented semantic difference from the exact backends — and results
// are emitted once per sealed block rather than once per push.
//
// All fields are exported for lossless JSON round-trips through checkpoints
// and replication; mutate only through the methods.
type Window struct {
	W         int     `json:"w"`
	B         int     `json:"b"`
	BlockRows int     `json:"block_rows"`
	K         int     `json:"k"`
	NCols     int     `json:"ncols"`
	Active    Block   `json:"active"`
	Sealed    []Block `json:"sealed,omitempty"`
	LiveRows  int     `json:"live_rows,omitempty"` // rows across sealed blocks
	Seals     uint64  `json:"seals,omitempty"`     // blocks sealed over the window's lifetime
}

// NewWindow builds a window of w rows split into blocks blocks (quantile
// capacity k per column per block), tracking ncols columns.
func NewWindow(w, blocks, k, ncols int) (*Window, error) {
	if w < 1 {
		return nil, fmt.Errorf("sketch: window of %d rows", w)
	}
	if blocks < 1 {
		return nil, fmt.Errorf("sketch: window with %d blocks", blocks)
	}
	if ncols < 0 {
		return nil, fmt.Errorf("sketch: window over %d columns", ncols)
	}
	if blocks > w {
		blocks = w
	}
	win := &Window{
		W:         w,
		B:         blocks,
		BlockRows: (w + blocks - 1) / blocks,
		K:         k,
		NCols:     ncols,
	}
	win.Active = win.newBlock()
	return win, nil
}

func (w *Window) newBlock() Block {
	cols := make([]ColSummary, w.NCols)
	for i := range cols {
		cols[i] = newColSummary(w.K)
	}
	return Block{Cols: cols}
}

// Push absorbs one tuple: obs holds the tracked columns' observations in
// column order, p is the tuple's membership probability. It returns true
// when the push sealed a block — the once-per-block emission point.
func (w *Window) Push(obs []Obs, p float64) (bool, error) {
	if len(obs) != w.NCols {
		return false, fmt.Errorf("sketch: push of %d observations into a %d-column window", len(obs), w.NCols)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return false, fmt.Errorf("sketch: membership probability %v outside [0,1]", p)
	}
	for i := range obs {
		if err := w.Active.Cols[i].Add(obs[i], p); err != nil {
			return false, err
		}
	}
	w.Active.Rows++
	if w.Active.Rows < w.BlockRows {
		return false, nil
	}
	// Seal: the active block becomes the newest sealed block, then the
	// oldest sealed blocks are evicted while the remainder still covers W.
	w.Sealed = append(w.Sealed, w.Active)
	w.LiveRows += w.Active.Rows
	w.Seals++
	w.Active = w.newBlock()
	for len(w.Sealed) > 1 && w.LiveRows-w.Sealed[0].Rows >= w.W {
		w.LiveRows -= w.Sealed[0].Rows
		w.Sealed = w.Sealed[1:]
	}
	return true, nil
}

// Full reports whether the sealed blocks cover at least W rows — the point
// from which sealing a block also emits a result.
func (w *Window) Full() bool { return w.LiveRows >= w.W }

// Rows returns the number of rows covered by the sealed blocks (what a
// merged summary summarizes).
func (w *Window) Rows() int { return w.LiveRows }

// Pushes returns the total number of observations the window has absorbed
// over its lifetime (evicted blocks included). Two windows with the same
// geometry fed the same deterministic observation sequence hold identical
// state exactly when their push counts agree — the content-equality
// admission test the multi-query planner uses before sharing a sketch
// window across queries.
func (w *Window) Pushes() uint64 {
	return w.Seals*uint64(w.BlockRows) + uint64(w.Active.Rows)
}

// MergedCol returns the summary of column i merged across the sealed
// blocks, oldest first — the fixed merge order that keeps float rounding
// deterministic at any worker count. The result is detached from window
// state.
func (w *Window) MergedCol(i int) (ColSummary, error) {
	if i < 0 || i >= w.NCols {
		return ColSummary{}, fmt.Errorf("sketch: column %d of %d", i, w.NCols)
	}
	if len(w.Sealed) == 0 {
		return ColSummary{}, fmt.Errorf("sketch: merged summary of an empty window")
	}
	out := w.Sealed[0].Cols[i].Clone()
	for _, b := range w.Sealed[1:] {
		out.Merge(&b.Cols[i])
	}
	return out, nil
}

// ItemCount returns the total retained quantile items across all blocks and
// columns — the window's dominant memory term.
func (w *Window) ItemCount() int {
	n := 0
	for i := range w.Active.Cols {
		n += w.Active.Cols[i].Quant.ItemCount()
	}
	for _, b := range w.Sealed {
		for i := range b.Cols {
			n += b.Cols[i].Quant.ItemCount()
		}
	}
	return n
}

// Clone returns a deep copy (checkpoints capture it while the live window
// keeps mutating).
func (w *Window) Clone() *Window {
	out := *w
	out.Active = cloneBlock(w.Active)
	out.Sealed = make([]Block, len(w.Sealed))
	for i := range w.Sealed {
		out.Sealed[i] = cloneBlock(w.Sealed[i])
	}
	return &out
}

func cloneBlock(b Block) Block {
	out := Block{Rows: b.Rows, Cols: make([]ColSummary, len(b.Cols))}
	for i := range b.Cols {
		out.Cols[i] = b.Cols[i].Clone()
	}
	return out
}

// Validate checks structural consistency of (possibly deserialized) state;
// restored checkpoints and replicated snapshots run through it before use.
func (w *Window) Validate() error {
	if w.W < 1 || w.B < 1 || w.BlockRows < 1 || w.NCols < 0 {
		return fmt.Errorf("sketch: window geometry w=%d b=%d blockRows=%d ncols=%d", w.W, w.B, w.BlockRows, w.NCols)
	}
	if w.BlockRows != (w.W+w.B-1)/w.B {
		return fmt.Errorf("sketch: block size %d does not match ⌈%d/%d⌉", w.BlockRows, w.W, w.B)
	}
	if err := w.validateBlock(&w.Active, true); err != nil {
		return err
	}
	live := 0
	for i := range w.Sealed {
		if err := w.validateBlock(&w.Sealed[i], false); err != nil {
			return fmt.Errorf("sketch: sealed block %d: %w", i, err)
		}
		live += w.Sealed[i].Rows
	}
	if live != w.LiveRows {
		return fmt.Errorf("sketch: sealed rows %d do not sum to live count %d", live, w.LiveRows)
	}
	if w.LiveRows >= w.W+w.BlockRows {
		return fmt.Errorf("sketch: %d live rows exceed window bound %d", w.LiveRows, w.W+w.BlockRows-1)
	}
	return nil
}

func (w *Window) validateBlock(b *Block, active bool) error {
	if len(b.Cols) != w.NCols {
		return fmt.Errorf("sketch: block with %d columns, window tracks %d", len(b.Cols), w.NCols)
	}
	max := w.BlockRows
	if active {
		max-- // a full active block would have been sealed
	}
	if b.Rows < 0 || b.Rows > max {
		return fmt.Errorf("sketch: block of %d rows outside [0,%d]", b.Rows, max)
	}
	for i := range b.Cols {
		if err := b.Cols[i].Validate(); err != nil {
			return fmt.Errorf("column %d: %w", i, err)
		}
		if b.Cols[i].Mom.N != uint64(b.Rows) {
			return fmt.Errorf("column %d summarizes %d rows, block holds %d", i, b.Cols[i].Mom.N, b.Rows)
		}
	}
	return nil
}
