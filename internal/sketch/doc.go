// Package sketch implements bounded-memory, mergeable, one-pass summaries
// for the accuracy backend BACKEND SKETCH: windows of millions of tuples in
// O(polylog) memory with honest — wider, but calibrated — accuracy
// intervals derived from documented sketch error bounds.
//
// Three summary families compose the backend:
//
//   - Moments: single-pass mean/variance in the numerically stable Welford
//     update form, merged with Chan et al.'s pairwise combination (the
//     "blocked Welford/Chan" form already used inside the bootstrap
//     kernel). Moment merges are algebraically exact; only float rounding
//     differs from a sequential pass, and the summation order is fixed by
//     the block structure, so results are deterministic at any worker
//     count.
//
//   - ProbMoments: probability-weighted estimator moments for tuples with
//     membership probabilities, after McGregor & Muthukrishnan's one-pass
//     estimators for aggregates over probabilistic streams: expected
//     count Σpᵢ with predictive variance Σpᵢ(1−pᵢ), expected sum Σpᵢ·x̄ᵢ
//     with variance Σpᵢ·vᵢ + Σpᵢ(1−pᵢ)·x̄ᵢ², all mergeable by addition.
//
//   - Quantile: a KLL-style multi-level compacting quantile sketch with a
//     deterministic alternating compactor (no RNG — replicas and replays
//     are bit-identical by construction) and an explicitly tracked rank
//     error bound: each compaction of a level holding items of weight
//     w = 2^l perturbs the rank of any value by at most w, so the sketch
//     carries ErrorBound = Σ 2^l over its compactions. Intervals widen
//     their order-statistic ranks by that bound — distribution-free
//     coverage is preserved, the interval is honestly wider.
//
// A Window arranges per-column summaries into a ring of fixed-row blocks:
// the active block absorbs pushes, sealed blocks are immutable, and the
// oldest block is evicted when the live row count would exceed the window
// size by a full block. The merged summary therefore covers the most
// recent W..W+blockRows−1 rows (sliding at block granularity), which is
// the documented semantic difference from the exact backends' row-granular
// slide. Emission happens once per sealed block, not once per push.
//
// Mergeability is the point: per-block summaries compose across PR-4
// ingest shards and PR-7 cluster nodes by the same Merge operations used
// inside a single window, with error bounds combining additively. The
// merge-property suite pins sketch(A)+sketch(B) ≡ sketch(A∥B) within the
// documented bounds.
//
// Nothing in this package consumes randomness, allocates per push on the
// steady-state path, or depends on GOMAXPROCS; all state round-trips
// losslessly through JSON (float64 shortest-form encoding is exact), which
// is how checkpoints and WAL-shipped replicas stay bit-identical.
package sketch
