package sketch

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dist"
)

func approx(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

// exactMoments computes mean and Σ(x−x̄)² directly (two-pass) as the
// reference the streaming updates must match.
func exactMoments(xs []float64) (mean, m2 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		m2 += d * d
	}
	return mean, m2
}

func sampleUniform(rng *dist.Rand, n int, lo, hi float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*rng.Float64()
	}
	return xs
}

func TestMomentsMatchesExact(t *testing.T) {
	rng := dist.NewRand(11)
	for _, n := range []int{1, 2, 17, 1000} {
		xs := sampleUniform(rng, n, -50, 150)
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		wantMean, wantM2 := exactMoments(xs)
		if m.N != uint64(n) {
			t.Fatalf("n=%d: count %d", n, m.N)
		}
		approx(t, "mean", m.Mean, wantMean, 1e-9*math.Max(1, math.Abs(wantMean)))
		approx(t, "m2", m.M2, wantM2, 1e-7*math.Max(1, wantM2))
		approx(t, "sum", m.Sum(), wantMean*float64(n), 1e-7*math.Max(1, math.Abs(wantMean*float64(n))))
		approx(t, "variance", m.Variance(), wantM2/float64(n), 1e-7*math.Max(1, wantM2))
		if n >= 2 {
			approx(t, "sample variance", m.SampleVariance(), wantM2/float64(n-1), 1e-7*math.Max(1, wantM2))
		}
	}
}

// TestMomentsMergeEquivalence: merging the summaries of any split of a
// sequence agrees with summarizing the whole sequence (Chan's combination is
// algebraically exact; only float rounding differs).
func TestMomentsMergeEquivalence(t *testing.T) {
	rng := dist.NewRand(12)
	xs := sampleUniform(rng, 500, -10, 10)
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 250, 499, 500} {
		var a, b Moments
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N != whole.N {
			t.Fatalf("cut %d: count %d vs %d", cut, a.N, whole.N)
		}
		approx(t, "merged mean", a.Mean, whole.Mean, 1e-10)
		approx(t, "merged m2", a.M2, whole.M2, 1e-7*math.Max(1, whole.M2))
	}
}

// TestMomentsMergeAssociative: ((A+B)+C) and (A+(B+C)) agree within float
// tolerance, and merging empties is the identity.
func TestMomentsMergeAssociative(t *testing.T) {
	rng := dist.NewRand(13)
	parts := [][]float64{
		sampleUniform(rng, 100, 0, 1),
		sampleUniform(rng, 37, 100, 200),
		sampleUniform(rng, 211, -5, 5),
	}
	summ := func(xs []float64) Moments {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		return m
	}
	a, b, c := summ(parts[0]), summ(parts[1]), summ(parts[2])
	left := a
	left.Merge(b)
	left.Merge(c)
	bc := b
	bc.Merge(c)
	right := a
	right.Merge(bc)
	approx(t, "assoc mean", left.Mean, right.Mean, 1e-10)
	approx(t, "assoc m2", left.M2, right.M2, 1e-6*math.Max(1, left.M2))

	var empty Moments
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merging an empty summary changed state")
	}
	empty.Merge(a)
	if empty != a {
		t.Error("merging into an empty summary did not copy")
	}
}

// TestMomentsIntervalsMatchAccuracy: the sketch's interval constructors are
// exactly the Lemma 2 intervals over the sketch's running statistics.
func TestMomentsIntervalsMatchAccuracy(t *testing.T) {
	rng := dist.NewRand(14)
	xs := sampleUniform(rng, 40, 0, 100)
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	sd := math.Sqrt(m.SampleVariance())
	wantMean, err := accuracy.MeanInterval(m.Mean, sd, 40, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	gotMean, err := m.MeanInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if gotMean != wantMean {
		t.Errorf("MeanInterval %v, want %v", gotMean, wantMean)
	}
	wantVar, err := accuracy.VarianceInterval(m.SampleVariance(), 40, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	gotVar, err := m.VarianceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if gotVar != wantVar {
		t.Errorf("VarianceInterval %v, want %v", gotVar, wantVar)
	}
}

func TestMomentsValidate(t *testing.T) {
	good := Moments{N: 3, Mean: 1, M2: 2}
	if err := good.validate(); err != nil {
		t.Errorf("valid moments rejected: %v", err)
	}
	bad := []Moments{
		{N: 1, Mean: math.NaN()},
		{N: 1, M2: math.Inf(1)},
		{N: 2, Mean: 0, M2: -1},
		{N: 0, Mean: 5},
	}
	for i, m := range bad {
		if err := m.validate(); err == nil {
			t.Errorf("bad moments %d accepted", i)
		}
	}
}

// TestProbMomentsEstimators pins the McGregor–Muthukrishnan identities: the
// accumulators are exactly the partial sums of the per-tuple contributions.
func TestProbMomentsEstimators(t *testing.T) {
	type tuple struct{ x, v, p float64 }
	tuples := []tuple{
		{10, 4, 1}, {20, 0, 0.5}, {-3, 1, 0.25}, {7, 9, 0.9}, {0, 0, 0},
	}
	var pm ProbMoments
	var sumP, sumP1P, sumPX, sumPV, sumP1PX2 float64
	for _, tp := range tuples {
		pm.Add(tp.x, tp.v, tp.p)
		sumP += tp.p
		sumP1P += tp.p * (1 - tp.p)
		sumPX += tp.p * tp.x
		sumPV += tp.p * tp.v
		sumP1PX2 += tp.p * (1 - tp.p) * tp.x * tp.x
	}
	if pm.N != uint64(len(tuples)) {
		t.Fatalf("count %d", pm.N)
	}
	// Same accumulation order, so the sums are bit-identical.
	if pm.SumP != sumP || pm.SumP1P != sumP1P || pm.SumPX != sumPX ||
		pm.SumPV != sumPV || pm.SumP1PX2 != sumP1PX2 {
		t.Errorf("accumulators diverge from direct sums: %+v", pm)
	}
	approx(t, "expected count", pm.ExpectedCount(), sumP, 0)
	approx(t, "expected sum", pm.ExpectedSum(), sumPX, 0)
	approx(t, "sum variance", pm.SumVariance(), sumPV+sumP1PX2, 0)
}

// TestProbMomentsMergeIsAddition: merge is field-wise addition, so any
// split-merge agrees with the sequential accumulation within rounding.
func TestProbMomentsMergeIsAddition(t *testing.T) {
	rng := dist.NewRand(15)
	var whole, a, b ProbMoments
	for i := 0; i < 400; i++ {
		x, v, p := rng.Float64()*100-50, rng.Float64()*10, rng.Float64()
		whole.Add(x, v, p)
		if i < 123 {
			a.Add(x, v, p)
		} else {
			b.Add(x, v, p)
		}
	}
	a.Merge(b)
	if a.N != whole.N {
		t.Fatalf("count %d vs %d", a.N, whole.N)
	}
	approx(t, "SumP", a.SumP, whole.SumP, 1e-9)
	approx(t, "SumP1P", a.SumP1P, whole.SumP1P, 1e-9)
	approx(t, "SumPX", a.SumPX, whole.SumPX, 1e-7)
	approx(t, "SumPV", a.SumPV, whole.SumPV, 1e-8)
	approx(t, "SumP1PX2", a.SumP1PX2, whole.SumP1PX2, 1e-6)
}

// TestProbMomentsCertainStream: with every p = 1 the membership variance
// vanishes — intervals collapse to the exact point and the AVG/SUM widening
// term is zero, so certain streams pay nothing for the probabilistic model.
func TestProbMomentsCertainStream(t *testing.T) {
	var pm ProbMoments
	for i := 0; i < 10; i++ {
		pm.Add(float64(i), 2, 1)
	}
	if pm.SumP1P != 0 || pm.SumP1PX2 != 0 {
		t.Fatalf("certain stream accumulated membership variance: %+v", pm)
	}
	iv, err := pm.CountInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 10 || iv.Hi != 10 {
		t.Errorf("certain count interval %v, want the exact point 10", iv)
	}
	half, err := pm.MembershipHalfWidth(1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if half != 0 {
		t.Errorf("certain membership half-width %v, want 0", half)
	}
}

// TestProbMomentsCountIntervalCoverage: the CLT predictive interval for the
// realized count covers the simulated count at its nominal rate.
func TestProbMomentsCountIntervalCoverage(t *testing.T) {
	rng := dist.NewRand(16)
	const n, level, trials = 200, 0.95, 2000
	ps := make([]float64, n)
	var pm ProbMoments
	for i := range ps {
		ps[i] = 0.1 + 0.8*rng.Float64()
		pm.Add(1, 0, ps[i])
	}
	iv, err := pm.CountInterval(level)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < trials; trial++ {
		count := 0.0
		for _, p := range ps {
			if rng.Float64() < p {
				count++
			}
		}
		if iv.Contains(count) {
			hits++
		}
	}
	cov := float64(hits) / trials
	if d := math.Abs(cov - level); d > 3*math.Sqrt(level*(1-level)/trials)+0.01 {
		t.Errorf("count interval coverage %.4f, want ≈ %.2f", cov, level)
	}
}

func TestProbMomentsErrors(t *testing.T) {
	var pm ProbMoments
	if _, err := pm.CountInterval(0.95); err == nil {
		t.Error("empty summary: want error")
	}
	pm.Add(1, 0, 0.5)
	if _, err := pm.SumInterval(1.5); err == nil {
		t.Error("bad level: want error")
	}
	if _, err := pm.MembershipHalfWidth(1, -1); err == nil {
		t.Error("bad level: want error")
	}
}

func TestProbMomentsValidate(t *testing.T) {
	var pm ProbMoments
	pm.Add(3, 1, 0.5)
	if err := pm.validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	bad := []ProbMoments{
		{N: 1, SumP: math.NaN()},
		{N: 1, SumP: -0.5},
		{N: 1, SumP: 2}, // Σp > N
		{N: 1, SumPV: -1},
	}
	for i, b := range bad {
		if err := b.validate(); err == nil {
			t.Errorf("bad state %d accepted", i)
		}
	}
}
