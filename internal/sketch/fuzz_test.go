package sketch

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// fuzzValues decodes a fuzz payload as little-endian float64 observations,
// dropping the non-finite ones Add rejects. The cap bounds fuzz-run cost.
func fuzzValues(data []byte, max int) []float64 {
	var out []float64
	for len(data) >= 8 && len(out) < max {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, x)
	}
	return out
}

// FuzzSketchRoundTrip feeds arbitrary observations into a quantile sketch and
// asserts the serialization contract: the JSON round trip validates, preserves
// the logical state exactly, and re-marshals to the identical bytes — the
// property checkpoint recovery and WAL-shipped replica state rely on.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	seed := make([]byte, 0, 32*8)
	for i := 0; i < 32; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(float64(i)*1.5-7))
	}
	f.Add(seed, uint8(16))
	f.Add(seed[:64], uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		q := NewQuantile(int(kRaw)) // NewQuantile clamps and evens out k
		for _, x := range fuzzValues(data, 4096) {
			if err := q.Add(x); err != nil {
				t.Fatalf("Add(%v) rejected a finite value: %v", x, err)
			}
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("freshly built sketch invalid: %v", err)
		}
		raw, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		var back Quantile
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v", err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("deserialized sketch invalid: %v", err)
		}
		raw2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(raw2) {
			t.Fatal("re-marshaled bytes differ — serialization is not canonical")
		}
		if back.N != q.N || back.ErrW != q.ErrW ||
			!reflect.DeepEqual(back.Levels, q.Levels) || !reflect.DeepEqual(back.Parity, q.Parity) {
			t.Fatal("round trip changed the logical sketch state")
		}
	})
}

// FuzzSketchMerge splits arbitrary observations at an arbitrary point,
// sketches the halves separately, merges, and asserts the mergeability
// contract: the result validates, conserves the observation count and
// extremes, accumulates at least the parts' error bounds, and answers every
// retained-value rank query within its tracked bound of the truth.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	seed := make([]byte, 0, 64*8)
	for i := 0; i < 64; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(float64(i%13)))
	}
	f.Add(seed, uint16(20))
	f.Fuzz(func(t *testing.T, data []byte, cutRaw uint16) {
		xs := fuzzValues(data, 2048)
		cut := 0
		if len(xs) > 0 {
			cut = int(cutRaw) % (len(xs) + 1)
		}
		a, b := NewQuantile(16), NewQuantile(16)
		for _, x := range xs[:cut] {
			if err := a.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		for _, x := range xs[cut:] {
			if err := b.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		boundA, boundB := a.ErrorBound(), b.ErrorBound()
		a.Merge(b)
		if err := a.Validate(); err != nil {
			t.Fatalf("merged sketch invalid: %v", err)
		}
		if a.N != uint64(len(xs)) {
			t.Fatalf("merged count %d, want %d", a.N, len(xs))
		}
		if a.ErrorBound() < boundA+boundB {
			t.Fatalf("merged bound %d below parts %d+%d", a.ErrorBound(), boundA, boundB)
		}
		if len(xs) == 0 {
			return
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if a.Min != lo || a.Max != hi {
			t.Fatalf("merged extremes [%v, %v], want [%v, %v]", a.Min, a.Max, lo, hi)
		}
		// Rank guarantee against the exact multiset.
		for _, x := range []float64{lo, hi, xs[len(xs)/2]} {
			truth := uint64(0)
			for _, v := range xs {
				if v <= x {
					truth++
				}
			}
			est := a.EstRank(x)
			d := est - truth
			if truth > est {
				d = truth - est
			}
			if d > a.ErrorBound() {
				t.Fatalf("rank(%v): estimate %d vs truth %d exceeds bound %d", x, est, truth, d)
			}
		}
	})
}
