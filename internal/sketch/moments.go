package sketch

import (
	"fmt"
	"math"

	"repro/internal/accuracy"
)

// Moments is a single-pass, mergeable mean/variance summary: Welford's
// update for Add, Chan et al.'s pairwise combination for Merge. The three
// fields are exported (and JSON-tagged) so the summary serializes losslessly
// through checkpoints and the replication stream.
type Moments struct {
	// N is the number of observations.
	N uint64 `json:"n"`
	// Mean is the running mean.
	Mean float64 `json:"mean,omitempty"`
	// M2 is the sum of squared deviations from the running mean, Σ(x−x̄)².
	M2 float64 `json:"m2,omitempty"`
}

// Add absorbs one observation.
func (m *Moments) Add(x float64) {
	m.N++
	delta := x - m.Mean
	m.Mean += delta / float64(m.N)
	m.M2 += delta * (x - m.Mean)
}

// Merge combines o into m (Chan et al. parallel variance). Merging is
// algebraically exact; float rounding depends only on the merge order,
// which callers keep deterministic (oldest block first).
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.N), float64(o.N)
	delta := o.Mean - m.Mean
	total := n1 + n2
	m.Mean += delta * n2 / total
	m.M2 += o.M2 + delta*delta*n1*n2/total
	m.N += o.N
}

// Count returns the number of observations.
func (m Moments) Count() uint64 { return m.N }

// Sum returns the observation total (Mean·N — exact up to float rounding).
func (m Moments) Sum() float64 { return m.Mean * float64(m.N) }

// Variance returns the population variance M2/N (0 when N == 0).
func (m Moments) Variance() float64 {
	if m.N == 0 {
		return 0
	}
	v := m.M2 / float64(m.N)
	if v < 0 { // float rounding can push M2 a hair below zero
		return 0
	}
	return v
}

// SampleVariance returns the unbiased sample variance M2/(N−1) (0 when
// N < 2).
func (m Moments) SampleVariance() float64 {
	if m.N < 2 {
		return 0
	}
	v := m.M2 / float64(m.N-1)
	if v < 0 {
		return 0
	}
	return v
}

// MeanInterval returns the Lemma 2 confidence interval for the population
// mean computed from the sketch's running statistics.
func (m Moments) MeanInterval(c float64) (accuracy.Interval, error) {
	if m.N > math.MaxInt32 {
		return accuracy.Interval{}, fmt.Errorf("sketch: moment count %d too large for an interval", m.N)
	}
	return accuracy.MeanInterval(m.Mean, math.Sqrt(m.SampleVariance()), int(m.N), c)
}

// VarianceInterval returns the Lemma 2 chi-square interval for the
// population variance computed from the sketch's running statistics.
func (m Moments) VarianceInterval(c float64) (accuracy.Interval, error) {
	if m.N > math.MaxInt32 {
		return accuracy.Interval{}, fmt.Errorf("sketch: moment count %d too large for an interval", m.N)
	}
	return accuracy.VarianceInterval(m.SampleVariance(), int(m.N), c)
}

// validate rejects non-finite or inconsistent serialized state.
func (m Moments) validate() error {
	if math.IsNaN(m.Mean) || math.IsInf(m.Mean, 0) || math.IsNaN(m.M2) || math.IsInf(m.M2, 0) {
		return fmt.Errorf("sketch: non-finite moment state mean=%v m2=%v", m.Mean, m.M2)
	}
	if m.M2 < 0 {
		return fmt.Errorf("sketch: negative M2 %v", m.M2)
	}
	if m.N == 0 && (m.Mean != 0 || m.M2 != 0) {
		return fmt.Errorf("sketch: empty moments with nonzero statistics")
	}
	return nil
}

// ProbMoments accumulates the McGregor–Muthukrishnan one-pass estimator
// moments for a probabilistic stream: tuple i contributes its field mean
// x̄ᵢ, field variance vᵢ, and membership probability pᵢ. All fields merge
// by addition, so the summary is mergeable across blocks, shards, and
// cluster nodes.
type ProbMoments struct {
	// N is the number of tuples observed (including p = 1 tuples).
	N uint64 `json:"n"`
	// SumP is Σpᵢ — the expected number of existing tuples.
	SumP float64 `json:"sum_p,omitempty"`
	// SumP1P is Σpᵢ(1−pᵢ) — the variance of the realized tuple count.
	SumP1P float64 `json:"sum_p1p,omitempty"`
	// SumPX is Σpᵢ·x̄ᵢ — the expected sum.
	SumPX float64 `json:"sum_px,omitempty"`
	// SumPV is Σpᵢ·vᵢ — the value-uncertainty component of the sum
	// estimator's variance.
	SumPV float64 `json:"sum_pv,omitempty"`
	// SumP1PX2 is Σpᵢ(1−pᵢ)·x̄ᵢ² — the membership-uncertainty component of
	// the sum estimator's variance.
	SumP1PX2 float64 `json:"sum_p1px2,omitempty"`
}

// Add absorbs one tuple with field mean x, field variance v ≥ 0, and
// membership probability p ∈ [0, 1].
func (pm *ProbMoments) Add(x, v, p float64) {
	pm.N++
	pm.SumP += p
	pm.SumP1P += p * (1 - p)
	pm.SumPX += p * x
	pm.SumPV += p * v
	pm.SumP1PX2 += p * (1 - p) * x * x
}

// Merge combines o into pm by field-wise addition.
func (pm *ProbMoments) Merge(o ProbMoments) {
	pm.N += o.N
	pm.SumP += o.SumP
	pm.SumP1P += o.SumP1P
	pm.SumPX += o.SumPX
	pm.SumPV += o.SumPV
	pm.SumP1PX2 += o.SumP1PX2
}

// ExpectedCount returns Σpᵢ, the expected number of existing tuples under
// possible-world semantics.
func (pm ProbMoments) ExpectedCount() float64 { return pm.SumP }

// ExpectedSum returns Σpᵢ·x̄ᵢ, the expectation of the possible-world sum.
func (pm ProbMoments) ExpectedSum() float64 { return pm.SumPX }

// SumVariance returns the variance of the possible-world sum: value
// uncertainty Σpᵢvᵢ plus membership uncertainty Σpᵢ(1−pᵢ)x̄ᵢ².
func (pm ProbMoments) SumVariance() float64 {
	v := pm.SumPV + pm.SumP1PX2
	if v < 0 {
		return 0
	}
	return v
}

// CountInterval returns a level-c normal-approximation predictive interval
// for the realized tuple count C = ΣBᵢ, Bᵢ ~ Bernoulli(pᵢ): the realized
// count lands inside it with probability ≈ c (Lindeberg CLT over the
// independent Bernoullis). Degenerate streams (every p ∈ {0, 1}) collapse
// to the exact point.
func (pm ProbMoments) CountInterval(c float64) (accuracy.Interval, error) {
	return pm.normalPredictive(pm.SumP, pm.SumP1P, c)
}

// SumInterval returns a level-c normal-approximation predictive interval
// for the possible-world sum ΣBᵢXᵢ.
func (pm ProbMoments) SumInterval(c float64) (accuracy.Interval, error) {
	return pm.normalPredictive(pm.SumPX, pm.SumVariance(), c)
}

// MembershipHalfWidth returns z(c)·scale·√(Σpᵢ(1−pᵢ)x̄ᵢ²) — the level-c
// half-width of the membership-uncertainty component of a scaled sum of the
// tuples' values (scale = 1 for SUM, 1/m for AVG). Zero when every tuple
// exists with certainty, so certain streams pay no interval widening.
func (pm ProbMoments) MembershipHalfWidth(scale, c float64) (float64, error) {
	z, err := zUpperLevel(c)
	if err != nil {
		return 0, err
	}
	return z * scale * math.Sqrt(pm.SumP1PX2), nil
}

func (pm ProbMoments) normalPredictive(center, variance, c float64) (accuracy.Interval, error) {
	if pm.N == 0 {
		return accuracy.Interval{}, fmt.Errorf("%w: probabilistic interval over zero tuples", accuracy.ErrSampleSize)
	}
	if variance < 0 || math.IsNaN(variance) || math.IsNaN(center) {
		return accuracy.Interval{}, fmt.Errorf("sketch: invalid estimator moments center=%v var=%v", center, variance)
	}
	z, err := zUpperLevel(c)
	if err != nil {
		return accuracy.Interval{}, err
	}
	half := z * math.Sqrt(variance)
	return accuracy.Interval{Lo: center - half, Hi: center + half, Level: c}, nil
}

// validate rejects non-finite or inconsistent serialized state.
func (pm ProbMoments) validate() error {
	for _, v := range []float64{pm.SumP, pm.SumP1P, pm.SumPX, pm.SumPV, pm.SumP1PX2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sketch: non-finite probabilistic moment state")
		}
	}
	if pm.SumP < 0 || pm.SumP1P < 0 || pm.SumPV < 0 || pm.SumP1PX2 < 0 {
		return fmt.Errorf("sketch: negative probabilistic moment accumulator")
	}
	if pm.SumP > float64(pm.N) {
		return fmt.Errorf("sketch: Σp %v exceeds tuple count %d", pm.SumP, pm.N)
	}
	return nil
}
