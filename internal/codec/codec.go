// Package codec serializes distributions and fields losslessly to JSON, so
// that learned state can cross process boundaries (the network protocol,
// checkpoints, logs) without degrading to moment approximations.
//
// Every dist type round-trips: point, normal, exponential, gamma, uniform,
// weibull, lognormal, beta, studentt, histogram (with retained counts),
// discrete, and mixture (recursively).
package codec

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// wire is the tagged union carrying any distribution.
type wire struct {
	Type string `json:"type"`

	// Scalar parameters (meaning depends on Type).
	A float64 `json:"a,omitempty"`
	B float64 `json:"b,omitempty"`
	C float64 `json:"c,omitempty"`

	// Histogram / discrete payloads.
	Edges  []float64 `json:"edges,omitempty"`
	Probs  []float64 `json:"probs,omitempty"`
	Counts []int     `json:"counts,omitempty"`
	Xs     []float64 `json:"xs,omitempty"`
	Ps     []float64 `json:"ps,omitempty"`

	// Mixture payload.
	Components []json.RawMessage `json:"components,omitempty"`
	Weights    []float64         `json:"weights,omitempty"`
}

// ErrUnsupported reports a distribution type the codec cannot encode.
var ErrUnsupported = errors.New("codec: unsupported distribution type")

// EncodeDistribution renders d as compact JSON.
func EncodeDistribution(d dist.Distribution) ([]byte, error) {
	w, err := toWire(d)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

func toWire(d dist.Distribution) (*wire, error) {
	switch v := d.(type) {
	case dist.Point:
		return &wire{Type: "point", A: v.V}, nil
	case dist.Normal:
		return &wire{Type: "normal", A: v.Mu, B: v.Sigma2}, nil
	case dist.Exponential:
		return &wire{Type: "exponential", A: v.Lambda}, nil
	case dist.Gamma:
		return &wire{Type: "gamma", A: v.K, B: v.Theta}, nil
	case dist.Uniform:
		return &wire{Type: "uniform", A: v.A, B: v.B}, nil
	case dist.Weibull:
		return &wire{Type: "weibull", A: v.Lambda, B: v.K}, nil
	case dist.Lognormal:
		return &wire{Type: "lognormal", A: v.MuLog, B: v.Sigma2Log}, nil
	case dist.Beta:
		return &wire{Type: "beta", A: v.Alpha, B: v.BetaP}, nil
	case dist.StudentT:
		return &wire{Type: "studentt", A: v.Nu, B: v.Loc, C: v.Scale}, nil
	case *dist.Histogram:
		return &wire{
			Type:   "histogram",
			Edges:  v.Edges,
			Probs:  v.Probs,
			Counts: v.Counts,
		}, nil
	case *dist.Discrete:
		xs := v.Support()
		ps := make([]float64, len(xs))
		for i, x := range xs {
			ps[i] = v.Prob(x)
		}
		return &wire{Type: "discrete", Xs: xs, Ps: ps}, nil
	case *dist.Mixture:
		comps := make([]json.RawMessage, len(v.Components))
		for i, c := range v.Components {
			enc, err := EncodeDistribution(c)
			if err != nil {
				return nil, err
			}
			comps[i] = enc
		}
		return &wire{Type: "mixture", Components: comps, Weights: v.Weights}, nil
	}
	return nil, fmt.Errorf("%w: %T", ErrUnsupported, d)
}

// DecodeDistribution parses codec JSON back into a distribution,
// re-validating every parameter through the dist constructors.
func DecodeDistribution(data []byte) (dist.Distribution, error) {
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return fromWire(&w)
}

func fromWire(w *wire) (dist.Distribution, error) {
	switch w.Type {
	case "point":
		return dist.Point{V: w.A}, nil
	case "normal":
		return dist.NewNormal(w.A, w.B)
	case "exponential":
		return dist.NewExponential(w.A)
	case "gamma":
		return dist.NewGamma(w.A, w.B)
	case "uniform":
		return dist.NewUniform(w.A, w.B)
	case "weibull":
		return dist.NewWeibull(w.A, w.B)
	case "lognormal":
		return dist.NewLognormal(w.A, w.B)
	case "beta":
		return dist.NewBeta(w.A, w.B)
	case "studentt":
		return dist.NewStudentT(w.A, w.B, w.C)
	case "histogram":
		if w.Counts != nil {
			return dist.HistogramFromCounts(w.Edges, w.Counts)
		}
		// Restore* constructors keep the encoded (already-normalized)
		// probabilities bit-for-bit; the New* constructors would
		// renormalize and perturb them by an ulp, so a decoded
		// distribution would not be the one that was encoded.
		return dist.RestoreHistogram(w.Edges, w.Probs)
	case "discrete":
		return dist.RestoreDiscrete(w.Xs, w.Ps)
	case "mixture":
		comps := make([]dist.Distribution, len(w.Components))
		for i, raw := range w.Components {
			c, err := DecodeDistribution(raw)
			if err != nil {
				return nil, err
			}
			comps[i] = c
		}
		return dist.RestoreMixture(comps, w.Weights)
	}
	return nil, fmt.Errorf("codec: unknown distribution type %q", w.Type)
}

// fieldWire carries a field: its distribution plus sample size.
type fieldWire struct {
	Dist json.RawMessage `json:"dist"`
	N    int             `json:"n,omitempty"`
}

// EncodeField renders a field (distribution + sample size) as compact JSON.
func EncodeField(f randvar.Field) ([]byte, error) {
	d, err := EncodeDistribution(f.Dist)
	if err != nil {
		return nil, err
	}
	return json.Marshal(fieldWire{Dist: d, N: f.N})
}

// DecodeField parses field JSON.
func DecodeField(data []byte) (randvar.Field, error) {
	var w fieldWire
	if err := json.Unmarshal(data, &w); err != nil {
		return randvar.Field{}, fmt.Errorf("codec: %w", err)
	}
	if w.N < 0 {
		return randvar.Field{}, errors.New("codec: negative sample size")
	}
	d, err := DecodeDistribution(w.Dist)
	if err != nil {
		return randvar.Field{}, err
	}
	return randvar.Field{Dist: d, N: w.N}, nil
}
