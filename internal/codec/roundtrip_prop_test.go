package codec

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// genDist builds a random valid distribution. depth bounds mixture
// nesting; rng drives every choice, so the generator is deterministic for
// a fixed seed.
func genDist(rng *dist.Rand, depth int) dist.Distribution {
	kind := rng.Intn(12)
	if depth <= 0 && kind >= 10 {
		kind = rng.Intn(10) // no containers at the recursion floor
	}
	pos := func() float64 { return 0.1 + 5*rng.Float64() }
	switch kind {
	case 0:
		return dist.Point{V: 20*rng.Float64() - 10}
	case 1:
		d, err := dist.NewNormal(20*rng.Float64()-10, pos())
		must(err)
		return d
	case 2:
		d, err := dist.NewExponential(pos())
		must(err)
		return d
	case 3:
		d, err := dist.NewGamma(pos(), pos())
		must(err)
		return d
	case 4:
		a := 20*rng.Float64() - 10
		d, err := dist.NewUniform(a, a+pos())
		must(err)
		return d
	case 5:
		d, err := dist.NewWeibull(pos(), pos())
		must(err)
		return d
	case 6:
		d, err := dist.NewLognormal(rng.Float64(), 0.1+rng.Float64())
		must(err)
		return d
	case 7:
		d, err := dist.NewBeta(pos(), pos())
		must(err)
		return d
	case 8:
		d, err := dist.NewStudentT(2.5+10*rng.Float64(), 20*rng.Float64()-10, pos())
		must(err)
		return d
	case 9:
		n := 2 + rng.Intn(5)
		edges := make([]float64, n+1)
		edges[0] = 10*rng.Float64() - 5
		for i := 1; i <= n; i++ {
			edges[i] = edges[i-1] + pos()
		}
		if rng.Intn(2) == 0 {
			counts := make([]int, n)
			for i := range counts {
				counts[i] = 1 + rng.Intn(50)
			}
			d, err := dist.HistogramFromCounts(edges, counts)
			must(err)
			return d
		}
		probs := make([]float64, n)
		total := 0.0
		for i := range probs {
			probs[i] = pos()
			total += probs[i]
		}
		for i := range probs {
			probs[i] /= total
		}
		d, err := dist.NewHistogram(edges, probs)
		must(err)
		return d
	case 10:
		n := 2 + rng.Intn(4)
		vals := make([]float64, n)
		probs := make([]float64, n)
		v, total := -5.0, 0.0
		for i := range vals {
			v += pos()
			vals[i] = v
			probs[i] = pos()
			total += probs[i]
		}
		for i := range probs {
			probs[i] /= total
		}
		d, err := dist.NewDiscrete(vals, probs)
		must(err)
		return d
	default: // mixture, possibly of mixtures
		n := 2 + rng.Intn(3)
		comps := make([]dist.Distribution, n)
		weights := make([]float64, n)
		total := 0.0
		for i := range comps {
			comps[i] = genDist(rng, depth-1)
			weights[i] = pos()
			total += weights[i]
		}
		for i := range weights {
			weights[i] /= total
		}
		d, err := dist.NewMixture(comps, weights)
		must(err)
		return d
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// TestRoundTripProperty generates hundreds of random distributions —
// including mixtures nested three deep — and checks the codec is a
// lossless bijection on them: decode(encode(d)) matches d bit-for-bit on
// moments, CDF probes, and identically-seeded sampling, and re-encoding
// reproduces the exact bytes (the encoding is canonical).
func TestRoundTripProperty(t *testing.T) {
	rng := dist.NewRand(20240805)
	for i := 0; i < 500; i++ {
		d := genDist(rng, 3)
		label := fmt.Sprintf("case %d: %s", i, d)

		enc, err := EncodeDistribution(d)
		if err != nil {
			t.Fatalf("%s: encode: %v", label, err)
		}
		back, err := DecodeDistribution(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v (json %s)", label, err, enc)
		}
		enc2, err := EncodeDistribution(back)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", label, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: encoding not canonical:\n%s\n%s", label, enc, enc2)
		}
		if math.Float64bits(back.Mean()) != math.Float64bits(d.Mean()) {
			t.Fatalf("%s: mean %v != %v", label, back.Mean(), d.Mean())
		}
		if math.Float64bits(back.Variance()) != math.Float64bits(d.Variance()) {
			t.Fatalf("%s: variance %v != %v", label, back.Variance(), d.Variance())
		}
		for _, p := range []float64{0.05, 0.5, 0.95} {
			x := d.Quantile(p)
			if math.Float64bits(back.CDF(x)) != math.Float64bits(d.CDF(x)) {
				t.Fatalf("%s: CDF(%v) %v != %v", label, x, back.CDF(x), d.CDF(x))
			}
		}
		// Identically-seeded sampling must be bit-identical — the decoded
		// distribution is a drop-in replacement inside the deterministic
		// replay path.
		ra, rb := dist.NewRand(uint64(i)+1), dist.NewRand(uint64(i)+1)
		for k := 0; k < 8; k++ {
			a, b := d.Sample(ra), back.Sample(rb)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: sample %d diverged: %v vs %v", label, k, a, b)
			}
		}
	}
}

// TestFieldRoundTripProperty runs the same property through the Field
// wrappers, which carry the d.f. sample size.
func TestFieldRoundTripProperty(t *testing.T) {
	rng := dist.NewRand(99)
	for i := 0; i < 100; i++ {
		f := randvar.Field{Dist: genDist(rng, 2), N: rng.Intn(1000)}
		enc, err := EncodeField(f)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := DecodeField(enc)
		if err != nil {
			t.Fatalf("case %d: %v (json %s)", i, err, enc)
		}
		if back.N != f.N {
			t.Fatalf("case %d: N %d != %d", i, back.N, f.N)
		}
		if math.Float64bits(back.Dist.Mean()) != math.Float64bits(f.Dist.Mean()) {
			t.Fatalf("case %d: mean %v != %v", i, back.Dist.Mean(), f.Dist.Mean())
		}
	}
}

// FuzzDecodeDistribution feeds arbitrary bytes to the decoder: it must
// never panic, and anything it accepts must re-encode/decode cleanly.
// Under plain `go test` the seed corpus below runs as a unit test.
func FuzzDecodeDistribution(f *testing.F) {
	rng := dist.NewRand(7)
	for i := 0; i < 20; i++ {
		enc, err := EncodeDistribution(genDist(rng, 2))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"type":"normal"}`))
	f.Add([]byte(`{"type":"mixture","components":[]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDistribution(data)
		if err != nil {
			return
		}
		enc, err := EncodeDistribution(d)
		if err != nil {
			t.Fatalf("decoded %q but cannot re-encode: %v", data, err)
		}
		if _, err := DecodeDistribution(enc); err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", enc, err)
		}
	})
}
