package codec

import (
	"errors"
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// Allocation-free JSON appenders for the server's render-once DATA path.
// Every function here is byte-identical to encoding/json's output for the
// same value — the golden-transcript and property tests pin that — so the
// hot path can build wire lines with strconv.Append* into reused buffers
// while replay, dedup, and clients observe exactly the bytes json.Marshal
// would have produced.

const hexDigits = "0123456789abcdef"

// jsonSafe[b] reports whether ASCII byte b needs no escaping under
// encoding/json's default (HTML-escaping) encoder.
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		jsonSafe[b] = true
	}
	for _, b := range []byte{'"', '\\', '<', '>', '&'} {
		jsonSafe[b] = false
	}
}

// AppendFloat appends the JSON encoding of f — byte-identical to
// json.Marshal(f), including the exponent normalization json applies —
// and errors on non-finite values with json.Marshal's message.
func AppendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, errors.New("json: unsupported value: " + strconv.FormatFloat(f, 'g', -1, 64))
	}
	// Like encoding/json: shortest 'f' form, switching to 'e' for very
	// large/small magnitudes, with a one-digit exponent de-padded.
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// AppendString appends the JSON encoding of s, byte-identical to
// json.Marshal(s) (HTML escaping included).
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// appendFloatField appends `,"<name>":<v>` honoring omitempty (v == 0
// drops the field, matching json's struct-tag behavior for float64).
func appendFloatField(dst []byte, name string, v float64) ([]byte, error) {
	if v == 0 {
		return dst, nil
	}
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return AppendFloat(dst, v)
}

// appendFloats appends `,"<name>":[...]` honoring slice omitempty.
func appendFloats(dst []byte, name string, vs []float64) ([]byte, error) {
	if len(vs) == 0 {
		return dst, nil
	}
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':', '[')
	var err error
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = AppendFloat(dst, v); err != nil {
			return dst, err
		}
	}
	return append(dst, ']'), nil
}

// AppendDistribution appends codec JSON for d, byte-identical to
// EncodeDistribution. Point, Normal, and Histogram — the distributions the
// serving hot path actually emits — are encoded natively with zero
// allocations; everything else falls back to EncodeDistribution.
func AppendDistribution(dst []byte, d dist.Distribution) ([]byte, error) {
	var err error
	switch v := d.(type) {
	case dist.Point:
		dst = append(dst, `{"type":"point"`...)
		if dst, err = appendFloatField(dst, "a", v.V); err != nil {
			return dst, err
		}
		return append(dst, '}'), nil
	case dist.Normal:
		dst = append(dst, `{"type":"normal"`...)
		if dst, err = appendFloatField(dst, "a", v.Mu); err != nil {
			return dst, err
		}
		if dst, err = appendFloatField(dst, "b", v.Sigma2); err != nil {
			return dst, err
		}
		return append(dst, '}'), nil
	case *dist.Histogram:
		dst = append(dst, `{"type":"histogram"`...)
		if dst, err = appendFloats(dst, "edges", v.Edges); err != nil {
			return dst, err
		}
		if dst, err = appendFloats(dst, "probs", v.Probs); err != nil {
			return dst, err
		}
		if len(v.Counts) > 0 {
			dst = append(dst, `,"counts":[`...)
			for i, c := range v.Counts {
				if i > 0 {
					dst = append(dst, ',')
				}
				dst = strconv.AppendInt(dst, int64(c), 10)
			}
			dst = append(dst, ']')
		}
		return append(dst, '}'), nil
	}
	enc, err := EncodeDistribution(d)
	if err != nil {
		return dst, err
	}
	return append(dst, enc...), nil
}

// AppendField appends codec JSON for field f, byte-identical to
// EncodeField.
func AppendField(dst []byte, f randvar.Field) ([]byte, error) {
	dst = append(dst, `{"dist":`...)
	dst, err := AppendDistribution(dst, f.Dist)
	if err != nil {
		return dst, err
	}
	if f.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, int64(f.N), 10)
	}
	return append(dst, '}'), nil
}
