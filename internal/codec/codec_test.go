package codec

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
)

// allEncodable returns one instance of every supported distribution type.
func allEncodable(t *testing.T) []dist.Distribution {
	t.Helper()
	n, _ := dist.NewNormal(1, 2)
	e, _ := dist.NewExponential(0.5)
	g, _ := dist.NewGamma(2, 3)
	u, _ := dist.NewUniform(-1, 4)
	w, _ := dist.NewWeibull(2, 1.5)
	ln, _ := dist.NewLognormal(0.3, 0.7)
	b, _ := dist.NewBeta(2, 5)
	st, _ := dist.NewStudentT(9, 71.1, 2.8)
	h, err := dist.HistogramFromCounts([]float64{0, 10, 20, 30}, []int{2, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := dist.NewHistogram([]float64{0, 1, 2}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.NewDiscrete([]float64{1, 2, 5}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dist.NewMixture([]dist.Distribution{n, e}, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return []dist.Distribution{
		dist.Point{V: 3.5}, n, e, g, u, w, ln, b, st, h, hp, d, m,
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, d := range allEncodable(t) {
		data, err := EncodeDistribution(d)
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		back, err := DecodeDistribution(data)
		if err != nil {
			t.Fatalf("%T: decode: %v (json %s)", d, err, data)
		}
		// Moments and a few CDF probes must match exactly.
		if math.Abs(back.Mean()-d.Mean()) > 1e-12*(1+math.Abs(d.Mean())) {
			t.Errorf("%T: mean %g vs %g", d, back.Mean(), d.Mean())
		}
		if math.Abs(back.Variance()-d.Variance()) > 1e-9*(1+d.Variance()) {
			t.Errorf("%T: variance %g vs %g", d, back.Variance(), d.Variance())
		}
		for _, p := range []float64{0.2, 0.5, 0.8} {
			x := d.Quantile(p)
			if math.Abs(back.CDF(x)-d.CDF(x)) > 1e-9 {
				t.Errorf("%T: CDF(%g) %g vs %g", d, x, back.CDF(x), d.CDF(x))
			}
		}
	}
}

func TestHistogramCountsSurvive(t *testing.T) {
	h, _ := dist.HistogramFromCounts([]float64{0, 1, 2}, []int{3, 7})
	data, err := EncodeDistribution(h)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDistribution(data)
	if err != nil {
		t.Fatal(err)
	}
	bh, ok := back.(*dist.Histogram)
	if !ok || bh.SampleSize() != 10 {
		t.Errorf("counts lost: %T sample size %d", back, bh.SampleSize())
	}
}

func TestStudentTUndefinedMean(t *testing.T) {
	// StudentT with ν=1 has NaN mean; the moment comparison in the
	// round-trip test would trip on NaN, so check it separately.
	st, _ := dist.NewStudentT(1, 0, 1)
	data, err := EncodeDistribution(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDistribution(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Mean()) {
		t.Error("ν=1 mean should stay NaN")
	}
}

func TestFieldRoundTrip(t *testing.T) {
	n, _ := dist.NewNormal(60, 100)
	f := randvar.Field{Dist: n, N: 20}
	data, err := EncodeField(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeField(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 20 || back.Dist.Mean() != 60 {
		t.Errorf("field = %+v", back)
	}
	// Deterministic fields keep N = 0.
	det := randvar.Det(5)
	data, _ = EncodeField(det)
	back, err = DecodeField(data)
	if err != nil || !back.IsDet() {
		t.Errorf("det round trip: %+v, %v", back, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"type":"martian"}`,
		`{"type":"normal","a":0,"b":-1}`,     // invalid variance
		`{"type":"histogram","edges":[0,1]}`, // no probs/counts
		`{"type":"discrete"}`,                // empty support
		`{"type":"mixture","components":[{"type":"martian"}],"weights":[1]}`,
	}
	for _, s := range bad {
		if _, err := DecodeDistribution([]byte(s)); err == nil {
			t.Errorf("DecodeDistribution(%q): want error", s)
		}
	}
	if _, err := DecodeField([]byte(`{"dist":{"type":"normal","a":0,"b":1},"n":-1}`)); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := DecodeField([]byte(`nonsense`)); err == nil {
		t.Error("bad field json: want error")
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := EncodeDistribution(fakeDist{}); err == nil {
		t.Error("unsupported type: want error")
	}
	if _, err := EncodeField(randvar.Field{Dist: fakeDist{}}); err == nil {
		t.Error("unsupported field: want error")
	}
}

type fakeDist struct{}

func (fakeDist) Mean() float64             { return 0 }
func (fakeDist) Variance() float64         { return 1 }
func (fakeDist) CDF(float64) float64       { return 0.5 }
func (fakeDist) Quantile(float64) float64  { return 0 }
func (fakeDist) Sample(*dist.Rand) float64 { return 0 }
func (fakeDist) String() string            { return "fake" }

func TestCompactJSON(t *testing.T) {
	n, _ := dist.NewNormal(1, 2)
	data, _ := EncodeDistribution(n)
	if strings.ContainsAny(string(data), " \n") {
		t.Errorf("encoding not compact: %s", data)
	}
}
