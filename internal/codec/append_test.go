package codec

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/randvar"
)

func TestAppendFloatMatchesJSON(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3, 3.25e-7, -3.25e-7,
		1e-6, 9.999e-7, 1e21, 9.999e20, -2.5e21, 1e-300, 1e300, 123456789.123456789,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 42, -17.25, 6.02e23, 1.5e-9,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("marshal %v: %v", f, err)
		}
		got, err := AppendFloat(nil, f)
		if err != nil {
			t.Fatalf("AppendFloat(%v): %v", f, err)
		}
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, json.Marshal = %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, jerr := json.Marshal(f)
		_, aerr := AppendFloat(nil, f)
		if jerr == nil || aerr == nil {
			t.Fatalf("expected errors for %v, got json=%v append=%v", f, jerr, aerr)
		}
		if jerr.Error() != aerr.Error() {
			t.Errorf("error mismatch for %v: json %q vs append %q", f, jerr, aerr)
		}
	}
}

func TestAppendStringMatchesJSON(t *testing.T) {
	cases := []string{
		"", "plain", "with space", `quote " and \ backslash`,
		"tab\tnewline\ncr\rbell\bformfeed\f", "ctrl\x01\x1f",
		"html <tag> & entity", "unicode μ σ² → λ", "line para sep",
		"invalid \xff utf8 \xc3\x28", "emoji 🎲 dice",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %q: %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, json.Marshal = %s", s, got, want)
		}
	}
}

func TestAppendDistributionMatchesEncode(t *testing.T) {
	hist, err := dist.NewHistogram(
		[]float64{-1, 0, 0.5, 2}, []float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	counted, err := dist.HistogramFromCounts([]float64{0, 1, 2}, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	normal, err := dist.NewNormal(1.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	zeroNormal, err := dist.NewNormal(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds := []dist.Distribution{
		dist.Point{V: 0}, dist.Point{V: -3.5}, normal, zeroNormal,
		hist, counted, dist.Exponential{Lambda: 2}, dist.Uniform{A: -1, B: 1},
	}
	for _, d := range ds {
		want, err := EncodeDistribution(d)
		if err != nil {
			t.Fatalf("encode %v: %v", d, err)
		}
		got, err := AppendDistribution(nil, d)
		if err != nil {
			t.Fatalf("AppendDistribution(%v): %v", d, err)
		}
		if string(got) != string(want) {
			t.Errorf("AppendDistribution(%v) = %s, EncodeDistribution = %s", d, got, want)
		}
	}
}

func TestAppendFieldMatchesEncode(t *testing.T) {
	normal, err := dist.NewNormal(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	fields := []randvar.Field{
		{Dist: dist.Point{V: 7}},
		{Dist: normal, N: 20},
		{Dist: dist.Point{V: 0}, N: 5},
	}
	for _, f := range fields {
		want, err := EncodeField(f)
		if err != nil {
			t.Fatalf("encode %v: %v", f, err)
		}
		got, err := AppendField(nil, f)
		if err != nil {
			t.Fatalf("AppendField(%v): %v", f, err)
		}
		if string(got) != string(want) {
			t.Errorf("AppendField(%v) = %s, EncodeField = %s", f, got, want)
		}
	}
}
