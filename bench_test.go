// Benchmarks regenerating each figure of the paper's evaluation (§V), plus
// micro-benchmarks of the primitives whose cost the paper discusses. The
// figure benches run the quick configuration of internal/experiments; run
// cmd/experiments for the full-size figures.
//
//	go test -bench=. -benchmem
package asdb

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/hypothesis"
	"repro/internal/learn"
	"repro/internal/randvar"
	"repro/internal/stream"
)

// benchCfg is the reduced experiment configuration used by the figure
// benchmarks.
var benchCfg = experiments.Config{Quick: true, Seed: 7, Segments: 150}

// benchFigure wraps one figure regeneration as a benchmark.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper figure.

func BenchmarkFig4a(b *testing.B) { benchFigure(b, "4a") }
func BenchmarkFig4b(b *testing.B) { benchFigure(b, "4b") }
func BenchmarkFig4c(b *testing.B) { benchFigure(b, "4c") }
func BenchmarkFig4d(b *testing.B) { benchFigure(b, "4d") }
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "5a") }
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "5b") }
func BenchmarkFig5d(b *testing.B) { benchFigure(b, "5d") }
func BenchmarkFig5e(b *testing.B) { benchFigure(b, "5e") }
func BenchmarkFig5g(b *testing.B) { benchFigure(b, "5g") }
func BenchmarkFig5h(b *testing.B) { benchFigure(b, "5h") }

// Figures 5(c) and 5(f) are themselves throughput measurements; the benches
// below expose the same pipelines as testing.B benchmarks so `go test
// -bench` reports the tuples/op cost directly. One bench per bar.

// benchWindowAvg measures the §V-C pipeline — learn a Gaussian from 20 raw
// points, push through a sliding-window AVG — under one accuracy method.
func benchWindowAvg(b *testing.B, method core.AccuracyMethod) {
	b.Helper()
	benchWindowAvgCfg(b, core.Config{Method: method})
}

// benchWindowAvgCfg is benchWindowAvg parameterized over the full engine
// config, so the columnar window layout (the default) can be benchmarked
// against the legacy row layout (RowWindows: true).
func benchWindowAvgCfg(b *testing.B, cfg core.Config) {
	b.Helper()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	schema, err := stream.NewSchema("sensor", stream.Column{Name: "val", Probabilistic: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	q, err := eng.Compile("SELECT AVG(val) FROM sensor WINDOW 1000 ROWS")
	if err != nil {
		b.Fatal(err)
	}
	rng := dist.NewRand(11)
	obs := make([]float64, 20)
	learner := learn.GaussianLearner{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range obs {
			obs[j] = 50 + 3*rng.NormFloat64()
		}
		f, err := core.LearnField(learner, learn.NewSample(obs))
		if err != nil {
			b.Fatal(err)
		}
		t, err := stream.NewTuple(schema, []randvar.Field{f})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Push(t); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 5(c): the three bars.

func BenchmarkFig5cQPOnly(b *testing.B)     { benchWindowAvg(b, core.AccuracyNone) }
func BenchmarkFig5cAnalytical(b *testing.B) { benchWindowAvg(b, core.AccuracyAnalytical) }
func BenchmarkFig5cBootstrap(b *testing.B)  { benchWindowAvg(b, core.AccuracyBootstrap) }

// Row-layout comparators for the same three bars: identical pipeline and
// results, legacy *Tuple ring storage. The delta against the benches above
// is the columnar-window win on the full §V-C pipeline.

func BenchmarkFig5cQPOnlyRow(b *testing.B) {
	benchWindowAvgCfg(b, core.Config{Method: core.AccuracyNone, RowWindows: true})
}
func BenchmarkFig5cAnalyticalRow(b *testing.B) {
	benchWindowAvgCfg(b, core.Config{Method: core.AccuracyAnalytical, RowWindows: true})
}
func BenchmarkFig5cBootstrapRow(b *testing.B) {
	benchWindowAvgCfg(b, core.Config{Method: core.AccuracyBootstrap, RowWindows: true})
}

// benchWindowAvgWithPredicate layers a significance predicate over each
// window aggregate (Fig 5(f)).
func benchWindowAvgWithPredicate(b *testing.B, pred func(core.Result) error) {
	b.Helper()
	eng, err := core.NewEngine(core.Config{Method: core.AccuracyNone})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := stream.NewSchema("sensor", stream.Column{Name: "val", Probabilistic: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	q, err := eng.Compile("SELECT AVG(val) FROM sensor WINDOW 1000 ROWS")
	if err != nil {
		b.Fatal(err)
	}
	rng := dist.NewRand(13)
	obs := make([]float64, 20)
	learner := learn.GaussianLearner{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range obs {
			obs[j] = 50 + 3*rng.NormFloat64()
		}
		f, err := core.LearnField(learner, learn.NewSample(obs))
		if err != nil {
			b.Fatal(err)
		}
		t, err := stream.NewTuple(schema, []randvar.Field{f})
		if err != nil {
			b.Fatal(err)
		}
		results, err := q.Push(t)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if err := pred(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Fig 5(f): the four bars.

func BenchmarkFig5fNoPred(b *testing.B) {
	benchWindowAvgWithPredicate(b, func(core.Result) error { return nil })
}

func BenchmarkFig5fMTest(b *testing.B) {
	benchWindowAvgWithPredicate(b, func(r core.Result) error {
		f := r.Tuple.Fields[0]
		s, err := hypothesis.StatsFromDistribution(f.Dist, f.N)
		if err != nil {
			return err
		}
		_, err = hypothesis.CoupledMTest(s, hypothesis.Greater, 50, 0.05, 0.05)
		return err
	})
}

func BenchmarkFig5fMDTest(b *testing.B) {
	var prev *hypothesis.Stats
	benchWindowAvgWithPredicate(b, func(r core.Result) error {
		f := r.Tuple.Fields[0]
		s, err := hypothesis.StatsFromDistribution(f.Dist, f.N)
		if err != nil {
			return err
		}
		if prev != nil {
			if _, err := hypothesis.CoupledMDTest(s, *prev, hypothesis.Greater, 0, 0.05, 0.05); err != nil {
				return err
			}
		}
		prev = &s
		return nil
	})
}

func BenchmarkFig5fPTest(b *testing.B) {
	benchWindowAvgWithPredicate(b, func(r core.Result) error {
		f := r.Tuple.Fields[0]
		phat := 1 - f.Dist.CDF(50)
		_, err := hypothesis.CoupledPTest(phat, f.N, hypothesis.Greater, 0.8, 0.05, 0.05)
		return err
	})
}

// --- Micro-benchmarks of the primitives the paper's costs decompose into ---

func BenchmarkBinHeightIntervalWald(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BinHeightInterval(0.4, 50, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinHeightIntervalWilson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BinHeightInterval(0.02, 50, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeanIntervalT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MeanInterval(50, 10, 20, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeanIntervalZ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MeanInterval(50, 10, 100, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVarianceInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := VarianceInterval(100, 20, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapAccuracyInfo(b *testing.B) {
	rng := NewRand(3)
	nd, err := NewNormal(50, 25)
	if err != nil {
		b.Fatal(err)
	}
	values := make([]float64, 400) // n=20, r=20 (Example 7 scale)
	for i := range values {
		values[i] = nd.Sample(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BootstrapAccuracyInfo(values, 20, 0.9, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoupledMTest(b *testing.B) {
	s := TestStats{Mean: 52, SD: 10, N: 20}
	for i := 0; i < b.N; i++ {
		if _, err := CoupledMTest(s, OpGreater, 50, 0.05, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussianLearn(b *testing.B) {
	rng := NewRand(5)
	obs := make([]float64, 20)
	for i := range obs {
		obs[i] = 50 + 3*rng.NormFloat64()
	}
	s := NewSample(obs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(GaussianLearner{}, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryFilterPush measures the scalar filter path end to end.
func BenchmarkQueryFilterPush(b *testing.B) {
	eng, err := NewEngine(Config{Method: AccuracyAnalytical})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := NewSchema("s",
		Column{Name: "id"},
		Column{Name: "x", Probabilistic: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	q, err := eng.Compile("SELECT id FROM s WHERE x > 50")
	if err != nil {
		b.Fatal(err)
	}
	nd, err := NewNormal(55, 25)
	if err != nil {
		b.Fatal(err)
	}
	t, err := NewTuple(schema, []Field{Det(1), {Dist: nd, N: 20}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Push(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures SQL parsing of a predicate-heavy statement.
func BenchmarkParse(b *testing.B) {
	eng, err := NewEngine(Config{})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := NewSchema("s",
		Column{Name: "a", Probabilistic: true},
		Column{Name: "b", Probabilistic: true},
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	stmt := "SELECT SQRT(ABS(a - b)) AS d FROM s WHERE MTEST(a, '>', 50, 0.05, 0.05) AND PROB(b > 10) >= 0.8"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compile(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrapResamples is the ablation bench DESIGN.md calls out:
// bootstrap cost as a function of the d.f. resample count r.
func BenchmarkBootstrapResamples(b *testing.B) {
	rng := NewRand(9)
	nd, err := NewNormal(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{5, 20, 80} {
		values := make([]float64, 20*r)
		for i := range values {
			values[i] = nd.Sample(rng)
		}
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BootstrapAccuracyInfo(values, 20, 0.9, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigX1(b *testing.B) { benchFigure(b, "x1") }

// BenchmarkQueryJoinPush measures the symmetric window equi-join path.
func BenchmarkQueryJoinPush(b *testing.B) {
	eng, err := NewEngine(Config{})
	if err != nil {
		b.Fatal(err)
	}
	roads, err := NewSchema("roads", Column{Name: "rid"}, Column{Name: "delay", Probabilistic: true})
	if err != nil {
		b.Fatal(err)
	}
	weather, err := NewSchema("weather", Column{Name: "rid"}, Column{Name: "rain", Probabilistic: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(roads); err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(weather); err != nil {
		b.Fatal(err)
	}
	q, err := eng.Compile("SELECT roads.delay FROM roads JOIN weather ON rid = rid WINDOW 64 ROWS")
	if err != nil {
		b.Fatal(err)
	}
	nd, err := NewNormal(60, 100)
	if err != nil {
		b.Fatal(err)
	}
	// Preload the weather side so every roads push probes a full window.
	for k := 0; k < 64; k++ {
		t, err := eng.NewTuple("weather", []Field{Det(float64(k % 16)), {Dist: nd, N: 20}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Push(t); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := eng.NewTuple("roads", []Field{Det(float64(i % 16)), {Dist: nd, N: 20}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Push(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryGroupByPush measures the grouped sliding-window aggregate.
func BenchmarkQueryGroupByPush(b *testing.B) {
	eng, err := NewEngine(Config{})
	if err != nil {
		b.Fatal(err)
	}
	schema, err := NewSchema("s", Column{Name: "k"}, Column{Name: "x", Probabilistic: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterStream(schema); err != nil {
		b.Fatal(err)
	}
	q, err := eng.Compile("SELECT k, AVG(x) FROM s GROUP BY k WINDOW 32 ROWS")
	if err != nil {
		b.Fatal(err)
	}
	nd, err := NewNormal(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := eng.NewTuple("s", []Field{Det(float64(i % 8)), {Dist: nd, N: 20}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Push(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantileInterval measures the order-statistic quantile CI.
func BenchmarkQuantileInterval(b *testing.B) {
	rng := NewRand(4)
	nd, err := NewNormal(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]float64, 100)
	for i := range obs {
		obs[i] = nd.Sample(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MedianInterval(obs, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaldVsWilson is the Lemma 1 ablation: the cost of the two bin
// interval constructions (the Wilson branch adds a handful of operations).
func BenchmarkWaldVsWilson(b *testing.B) {
	b.Run("wald", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BinHeightInterval(0.5, 100, 0.9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wilson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BinHeightInterval(0.01, 100, 0.9); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFigX2(b *testing.B) { benchFigure(b, "x2") }
func BenchmarkFigX3(b *testing.B) { benchFigure(b, "x3") }
